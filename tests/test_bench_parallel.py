"""Campaign sharding/merging for the process-parallel runners.

The mergers are pure functions over shard payloads, so the edge cases
(overlapping cells, crashed workers, empty sweeps, determinism drift)
are tested with synthetic shards; one small real campaign exercises the
actual pool end to end.
"""

import pytest

from repro.bench.faultexp import FaultTrialResult
from repro.bench.parallel import (
    DETERMINISTIC_KEYS,
    CampaignError,
    merge_bench_shards,
    merge_inject_shards,
    run_bench_campaign,
)


def _row(wall_s=1.0, **overrides):
    row = {"config": "small", "nodes": 4, "cells": 4, "cpus_per_node": 4,
           "seed": 1995, "sim_ms": 150, "events": 100, "accesses": 5000,
           "driver_accesses": 4800, "writable_page_samples": 10,
           "samples": 3, "recovery_detected": True, "discarded_pages": 2,
           "wall_s": wall_s, "boot_wall_s": 0.1,
           "events_per_sec": 100 / wall_s,
           "accesses_per_sec": 5000 / wall_s}
    row.update(overrides)
    return row


def _bench_shard(repeat=0, config="small", status="ok", **row_overrides):
    shard = {"status": status, "config": config, "seed": 1995,
             "repeat": repeat}
    if status == "ok":
        shard["row"] = _row(config=config, **row_overrides)
    else:
        shard["error"] = "Traceback: boom"
    return shard


class TestMergeBenchShards:
    def test_empty_campaign_raises(self):
        with pytest.raises(CampaignError, match="empty campaign"):
            merge_bench_shards([], seed=1995, repeats=1)

    def test_overlapping_cells_raise(self):
        shards = [_bench_shard(repeat=0), _bench_shard(repeat=0)]
        with pytest.raises(CampaignError, match="overlapping shards"):
            merge_bench_shards(shards, seed=1995, repeats=2)

    def test_failed_shard_reported_not_raised(self):
        shards = [_bench_shard(repeat=0),
                  _bench_shard(repeat=1, status="error")]
        payload = merge_bench_shards(shards, seed=1995, repeats=2)
        assert "small" in payload["results"]
        assert payload["failures"] == [
            {"config": "small", "seed": 1995, "repeat": 1,
             "error": "Traceback: boom"}]

    def test_determinism_drift_raises(self):
        shards = [_bench_shard(repeat=0),
                  _bench_shard(repeat=1, accesses=5001)]
        with pytest.raises(CampaignError, match="non-deterministic"):
            merge_bench_shards(shards, seed=1995, repeats=2)

    def test_best_of_and_wall_spread(self):
        shards = [_bench_shard(repeat=0, wall_s=2.0),
                  _bench_shard(repeat=1, wall_s=1.0),
                  _bench_shard(repeat=2, wall_s=3.0)]
        payload = merge_bench_shards(shards, seed=1995, repeats=3)
        row = payload["results"]["small"]
        assert row["wall_s"] == 1.0          # best-of
        assert row["wall_s_min"] == 1.0
        assert row["wall_s_max"] == 3.0
        assert row["wall_s_mean"] == 2.0
        assert row["repeats"] == 3
        assert "failures" not in payload


def _trial_dict(scenario="hw_random", seed=1995, contained=True):
    return FaultTrialResult(
        scenario=scenario, seed=seed, injected_at_ns=50_000_000,
        detected=True, last_entry_latency_ns=2_000_000,
        contained=contained, survivors_alive=True, outputs_ok=True,
        check_ok=True, recovery_duration_ns=9_000_000).to_dict()


def _inject_shard(scenario="hw_random", seed=1995, status="ok"):
    shard = {"status": status, "scenario": scenario, "seed": seed}
    if status == "ok":
        shard["trial"] = _trial_dict(scenario=scenario, seed=seed)
    else:
        shard["error"] = "Traceback: boom"
    return shard


class TestMergeInjectShards:
    def test_empty_campaign_raises(self):
        with pytest.raises(CampaignError, match="empty campaign"):
            merge_inject_shards([])

    def test_overlapping_trials_raise(self):
        shards = [_inject_shard(seed=1995), _inject_shard(seed=1995)]
        with pytest.raises(CampaignError, match="overlapping shards"):
            merge_inject_shards(shards)

    def test_failed_shard_reported_not_raised(self):
        shards = [_inject_shard(seed=1995),
                  _inject_shard(seed=1996, status="error")]
        payload = merge_inject_shards(shards)
        stats = payload["scenarios"]["hw_random"]
        assert stats["trials"] == 1
        assert stats["contained"] == 1
        assert payload["failures"] == [
            {"scenario": "hw_random", "seed": 1996,
             "error": "Traceback: boom"}]

    def test_scenario_stats_aggregate_across_seeds(self):
        shards = [_inject_shard(seed=1995),
                  _inject_shard(seed=1996),
                  _inject_shard(scenario="hw_cow_search", seed=1995)]
        payload = merge_inject_shards(shards)
        assert payload["scenarios"]["hw_random"]["trials"] == 2
        assert payload["scenarios"]["hw_random"]["contained"] == 2
        assert payload["scenarios"]["hw_cow_search"]["trials"] == 1
        # Detection latencies present and compared against the paper.
        stats = payload["scenarios"]["hw_random"]
        assert stats["detection_avg_ms"] == pytest.approx(2.0)
        assert stats["paper_avg_ms"] is not None
        # Trials come back sorted by seed regardless of shard order.
        summary = payload["summaries"]["hw_random"]
        assert [t.seed for t in summary.trials] == [1995, 1996]


class TestTrialRoundTrip:
    def test_to_from_dict(self):
        trial = FaultTrialResult.from_dict(_trial_dict())
        assert trial == FaultTrialResult.from_dict(trial.to_dict())
        assert trial.scenario == "hw_random"
        assert trial.contained


class TestRealCampaign:
    """End-to-end pool run on the smallest config (seconds, not minutes)."""

    def test_bench_campaign_pool_matches_serial(self):
        parallel = run_bench_campaign(["small"], seed=7, repeats=2,
                                      workers=2)
        serial = run_bench_campaign(["small"], seed=7, repeats=1,
                                    workers=1)
        assert "failures" not in parallel
        assert parallel["parallel"]["workers"] == 2
        assert parallel["parallel"]["shards"] == 2
        prow = parallel["results"]["small"]
        srow = serial["results"]["small"]
        for key in DETERMINISTIC_KEYS:
            assert prow[key] == srow[key], key
