"""Shared fixtures: small machines and booted systems for fast tests."""

import pytest

from repro.core.hive import boot_hive, boot_irix
from repro.hardware.machine import Machine, MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def machine(sim):
    return Machine(sim, MachineConfig())


@pytest.fixture
def small_machine(sim):
    return Machine(sim, MachineConfig(params=HardwareParams(num_nodes=2)))


@pytest.fixture
def hive2(sim):
    """Two cells on two nodes (the paper's microbenchmark config)."""
    return boot_hive(sim, num_cells=2,
                     machine_config=MachineConfig(
                         params=HardwareParams(num_nodes=2)))


@pytest.fixture
def hive4(sim):
    """Four cells on four nodes (the paper's main config)."""
    return boot_hive(sim, num_cells=4)


@pytest.fixture
def irix(sim):
    return boot_irix(sim)
