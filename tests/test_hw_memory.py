"""Unit and property tests for physical memory and the fault model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.errors import BusError, FirewallViolation, InvalidPhysicalAddress
from repro.hardware.memory import PhysicalMemory
from repro.hardware.params import HardwareParams


@pytest.fixture
def params():
    return HardwareParams(num_nodes=4)


@pytest.fixture
def mem(params):
    return PhysicalMemory(params)


class TestDataAccess:
    def test_untouched_pages_read_zero(self, mem, params):
        assert mem.read_page(0) == b"\x00" * params.page_size

    def test_write_read_roundtrip(self, mem, params):
        data = bytes(range(256)) * (params.page_size // 256)
        mem.write_page(5, data, cpu=0)
        assert mem.read_page(5) == data

    def test_subpage_write(self, mem):
        mem.write_bytes(5, 100, b"hello", cpu=0)
        assert mem.read_bytes(5, 100, 5) == b"hello"
        assert mem.read_bytes(5, 99, 1) == b"\x00"

    def test_zero_page_frees_storage(self, mem):
        mem.write_bytes(5, 0, b"x", cpu=0)
        mem.zero_page(5, cpu=0)
        assert 5 not in mem._pages

    def test_wrong_size_page_write(self, mem):
        with pytest.raises(ValueError):
            mem.write_page(0, b"short", cpu=0)

    def test_out_of_range_frame(self, mem, params):
        with pytest.raises(InvalidPhysicalAddress):
            mem.read_page(params.total_pages)

    def test_subpage_bounds(self, mem, params):
        with pytest.raises(ValueError):
            mem.write_bytes(0, params.page_size - 2, b"xyz", cpu=0)

    @given(offset=st.integers(0, 4000), data=st.binary(min_size=1, max_size=96))
    @settings(max_examples=50, deadline=None)
    def test_subpage_roundtrip_property(self, offset, data):
        params = HardwareParams(num_nodes=2)
        mem = PhysicalMemory(params)
        mem.write_bytes(3, offset, data, cpu=0)
        assert mem.read_bytes(3, offset, len(data)) == data


class TestFirewallIntegration:
    def test_remote_write_rejected(self, mem, params):
        frame = params.pages_per_node  # node 1's first frame
        with pytest.raises(FirewallViolation):
            mem.write_page(frame, b"\x00" * params.page_size, cpu=0)

    def test_harness_writes_bypass_permissions(self, mem, params):
        frame = params.pages_per_node
        mem.write_bytes(frame, 0, b"ok", cpu=None)  # no exception

    def test_firewall_disabled_mode(self, params):
        mem = PhysicalMemory(params, firewall_enabled=False)
        frame = params.pages_per_node
        mem.write_bytes(frame, 0, b"ok", cpu=0)  # SMP OS mode: no check

    def test_write_allowed_probe(self, mem, params):
        frame = params.pages_per_node
        assert not mem.write_allowed(frame, 0)
        mem.firewalls[1].grant_node(frame, 1, 0)
        assert mem.write_allowed(frame, 0)

    def test_frames_writable_by_node(self, mem, params):
        frame = params.pages_per_node
        mem.firewalls[1].grant_node(frame, 1, 0)
        assert mem.frames_writable_by_node(0) == [frame]
        assert mem.frames_writable_by_node(2) == []


class TestFaultModel:
    def test_failed_node_read_bus_errors(self, mem, params):
        mem.fail_node(1)
        with pytest.raises(BusError):
            mem.read_page(params.pages_per_node)

    def test_failed_node_write_bus_errors(self, mem, params):
        mem.fail_node(1)
        with pytest.raises(BusError):
            mem.write_bytes(params.pages_per_node, 0, b"x", cpu=1)

    def test_unaffected_ranges_keep_working(self, mem, params):
        """Fault model: accesses to unaffected memory must continue."""
        mem.fail_node(1)
        mem.write_bytes(0, 0, b"ok", cpu=0)
        assert mem.read_bytes(0, 0, 2) == b"ok"

    def test_writes_by_failed_node_cpu_rejected(self, mem):
        mem.fail_node(0)
        with pytest.raises(BusError):
            mem.write_bytes(0, 0, b"x", cpu=0)

    def test_cutoff_blocks_remote_readers_only(self, mem, params):
        """The panic-path memory cutoff (Table 8.1): remote reads bounce,
        local ones still work."""
        mem.engage_cutoff(1)
        frame = params.pages_per_node
        mem.read_page(frame, cpu=1)  # local: fine
        with pytest.raises(BusError):
            mem.read_page(frame, cpu=0)

    def test_revive_clears_contents_and_firewall(self, mem, params):
        frame = params.pages_per_node
        mem.firewalls[1].grant_node(frame, 1, 0)
        mem.write_bytes(frame, 0, b"secret", cpu=0)
        mem.fail_node(1)
        mem.revive_node(1)
        assert mem.read_page(frame) == b"\x00" * params.page_size
        assert not mem.write_allowed(frame, 0)


class TestBulkPageAccess:
    """read_pages/write_pages must match the per-page loop exactly,
    including raise positions and partial-completion semantics."""

    def test_read_pages_matches_per_page(self, mem, params):
        data = bytes(range(256)) * (params.page_size // 256)
        mem.write_page(3, data, cpu=0)
        frames = [0, 3, 5]
        assert mem.read_pages(frames) == [mem.read_page(f) for f in frames]

    def test_read_pages_empty(self, mem):
        assert mem.read_pages([]) == []

    def test_read_pages_out_of_range_raises(self, mem, params):
        with pytest.raises(InvalidPhysicalAddress):
            mem.read_pages([0, params.total_pages, 1])

    def test_read_pages_failed_node_raises(self, mem, params):
        mem.fail_node(1)
        with pytest.raises(BusError):
            mem.read_pages([0, params.pages_per_node, 1])
        # Healthy frames still readable in bulk during the fault window.
        assert mem.read_pages([0, 1]) == [mem.read_page(0),
                                          mem.read_page(1)]

    def test_write_pages_roundtrip(self, mem, params):
        page = params.page_size
        datas = [bytes([i]) * page for i in (1, 2, 3)]
        mem.write_pages([0, 1, 2], datas, cpu=0)
        assert mem.read_pages([0, 1, 2]) == datas

    def test_write_pages_length_mismatch(self, mem, params):
        with pytest.raises(ValueError):
            mem.write_pages([0, 1], [b"\x00" * params.page_size])

    def test_write_pages_wrong_size_raises(self, mem):
        with pytest.raises(ValueError):
            mem.write_pages([0], [b"short"], cpu=0)

    def test_write_pages_firewall_partial_completion(self, mem, params):
        """A rejected frame mid-batch leaves earlier writes applied,
        exactly like the scalar loop."""
        page = params.page_size
        remote = params.pages_per_node  # node 1: cpu 0 may not write
        datas = [b"\x01" * page, b"\x02" * page, b"\x03" * page]
        with pytest.raises(FirewallViolation):
            mem.write_pages([0, remote, 1], datas, cpu=0)
        assert mem.read_page(0) == b"\x01" * page
        assert mem.read_page(1) == b"\x00" * page  # never reached

    def test_write_pages_harness_mode_skips_firewall(self, mem, params):
        page = params.page_size
        remote = params.pages_per_node
        mem.write_pages([remote], [b"\x07" * page], cpu=None)
        assert mem.read_page(remote) == b"\x07" * page
