"""End-to-end fault-containment integration tests (Section 7.4 method)."""

import pytest

from repro.bench.faultexp import (
    ALL_SCENARIOS,
    HW_DURING_PROCESS_CREATION,
    HW_RANDOM_TIME,
    SW_ADDRESS_MAP,
    SW_COW_TREE,
    FaultExperimentRunner,
)
from repro.core.hive import boot_hive
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE

from tests.helpers import run_program


class TestScenarioTrials:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_single_trial_contained(self, scenario):
        runner = FaultExperimentRunner()
        result = runner.run_trial(scenario, seed=1)
        assert result.detected, result.notes
        assert result.survivors_alive
        assert result.outputs_ok
        assert result.check_ok, result.notes
        assert result.contained

    def test_detection_latency_orders_match_paper(self):
        """COW-tree corruption takes far longer to detect than node
        failures (Table 7.4's dominant qualitative result)."""
        runner = FaultExperimentRunner()
        hw = runner.run_trial(HW_DURING_PROCESS_CREATION, seed=2)
        sw = runner.run_trial(SW_COW_TREE, seed=2)
        assert hw.latency_ms is not None and sw.latency_ms is not None
        assert sw.latency_ms > hw.latency_ms

    def test_node_failure_latency_in_paper_band(self):
        """Node-failure detection is clock-monitor bound: one tick plus
        quiesce — tens of milliseconds, never seconds."""
        runner = FaultExperimentRunner()
        r = runner.run_trial(HW_RANDOM_TIME, seed=3)
        assert r.latency_ms is not None
        assert 2 <= r.latency_ms <= 60

    def test_address_map_detection_under_voting_agreement(self):
        """The real agreement protocol (not the oracle) also confirms a
        panicked cell."""
        runner = FaultExperimentRunner(agreement="voting")
        r = runner.run_trial(SW_ADDRESS_MAP, seed=4)
        assert r.contained, r.notes


class TestFileServerFailure:
    def test_clients_get_errors_not_crashes(self):
        """Killing the file-server cell gives surviving clients I/O
        errors; the cells themselves survive (the paper's reliability
        definition: failure probability proportional to resources used)."""
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=9))
        hive.namespace.mount("/srv", 3)
        out = {}

        def writer(ctx):
            fd = yield from ctx.open("/srv/d", "w", create=True)
            yield from ctx.write(fd, b"x" * PAGE)
            yield from ctx.close(fd)

        run_program(hive, 3, writer)

        def client(ctx):
            fd = yield from ctx.open("/srv/d", "r")
            out["first"] = yield from ctx.read(fd, 16)
            yield from ctx.compute(300_000_000)  # server dies meanwhile
            from repro.unix.errors import FileError, RpcTimeout
            try:
                fd2 = yield from ctx.open("/srv/d", "r")
                yield from ctx.read(fd2, PAGE)
                out["second"] = "ok"
            except (FileError, RpcTimeout):
                out["second"] = "io-error"

        c0 = hive.cell(0)
        proc = c0.create_process("client")
        c0.start_thread(proc, client)
        sim.schedule(100_000_000, hive.machine.halt_node, 3)
        sim.run(until=sim.now + 3_000_000_000)
        assert out["first"] == b"x" * 16
        assert out["second"] == "io-error"
        assert c0.alive

    def test_stale_descriptor_semantics_after_discard(self):
        """Section 4.2: only processes that opened the file *before* the
        failure get errors; a fresh open reads stale disk data."""
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=11))
        hive.namespace.mount("/srv", 1)
        out = {}

        def setup(ctx):
            fd = yield from ctx.open("/srv/f", "w", create=True)
            yield from ctx.write(fd, b"A" * PAGE)
            yield from ctx.close(fd)

        run_program(hive, 1, setup)
        # Push v1 to disk, then dirty the page via a remote writer on
        # cell 3 (which will fail).
        proc = sim.process(hive.cell(1).sync_all())
        sim.run_until_event(proc, deadline=sim.now + 10**11)

        def dirty_writer(ctx):
            fd = yield from ctx.open("/srv/f", "w")
            yield from ctx.write(fd, b"B" * PAGE)
            yield from ctx.compute(10_000_000_000)  # hold the fd open

        c3 = hive.cell(3)
        p3 = c3.create_process("dirtier")
        c3.start_thread(p3, dirty_writer)
        sim.run(until=sim.now + 100_000_000)

        # An old reader on cell 0 opens before the failure.
        from repro.unix.errors import FileError

        def old_reader(ctx):
            fd = yield from ctx.open("/srv/f", "r")
            yield from ctx.compute(600_000_000)
            try:
                yield from ctx.read(fd, 4)
                out["old"] = "ok"
            except FileError:
                out["old"] = "io-error"

        c0 = hive.cell(0)
        p0 = c0.create_process("old-reader")
        c0.start_thread(p0, old_reader)
        sim.run(until=sim.now + 50_000_000)
        hive.machine.halt_node(3)
        sim.run(until=sim.now + 2_000_000_000)

        # A fresh open after recovery reads the stale on-disk copy.
        def fresh_reader(ctx):
            fd = yield from ctx.open("/srv/f", "r")
            out["fresh"] = yield from ctx.read(fd, 4)

        run_program(hive, 0, fresh_reader, deadline_ns=120_000_000_000)
        assert out["old"] == "io-error"
        assert out["fresh"] == b"AAAA"


class TestCumulativeFailures:
    def test_two_sequential_cell_failures(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=13))
        hive.machine.halt_node(3)
        sim.run(until=sim.now + 1_000_000_000)
        assert hive.registry.live_cell_ids() == [0, 1, 2]
        hive.machine.halt_node(2)
        sim.run(until=sim.now + 1_000_000_000)
        assert hive.registry.live_cell_ids() == [0, 1]
        for c in (0, 1):
            assert hive.cell(c).alive

    def test_work_continues_after_failures(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=17))
        hive.namespace.mount("/tmp", 0)
        hive.machine.halt_node(3)
        sim.run(until=sim.now + 1_000_000_000)
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/after", "w", create=True)
            yield from ctx.write(fd, b"still works")
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/after", "r")
            out["data"] = yield from ctx.read(fd, 64)

        run_program(hive, 1, prog)
        assert out["data"] == b"still works"
