"""Unit tests for the benchmark harness itself (report + fault runner)."""

import pytest

from repro.bench.faultexp import (
    HW_DURING_PROCESS_CREATION,
    PAPER_TABLE_7_4,
    FaultExperimentRunner,
    FaultTrialResult,
    ScenarioSummary,
)
from repro.bench.report import ComparisonRow, ComparisonTable


class TestComparisonTable:
    def test_ratio(self):
        assert ComparisonRow("x", 10, 12).ratio == pytest.approx(1.2)
        assert ComparisonRow("x", None, 12).ratio is None
        assert ComparisonRow("x", 10, None).ratio is None
        assert ComparisonRow("x", 10, "4/4").ratio is None
        assert ComparisonRow("x", 0, 5).ratio is None

    def test_render_contains_rows(self):
        table = ComparisonTable("T")
        table.add("alpha", 1.0, 2.0, "us")
        table.add("beta", None, "3/3", "trials")
        text = table.render()
        assert "alpha" in text and "2" in text and "us" in text
        assert "3/3" in text

    def test_large_number_formatting(self):
        table = ComparisonTable("T")
        table.add("big", 10_000, 12_345.6)
        assert "12,346" in table.render()


class TestScenarioSummary:
    def _trial(self, latency_ms, contained=True):
        return FaultTrialResult(
            scenario="s", seed=0, injected_at_ns=0, detected=True,
            last_entry_latency_ns=(None if latency_ms is None
                                   else int(latency_ms * 1e6)),
            contained=contained, survivors_alive=True, outputs_ok=True,
            check_ok=True)

    def test_latency_aggregation(self):
        summary = ScenarioSummary("s", trials=[
            self._trial(10), self._trial(20), self._trial(None)])
        assert summary.avg_latency_ms == pytest.approx(15)
        assert summary.max_latency_ms == pytest.approx(20)

    def test_contained_count(self):
        summary = ScenarioSummary("s", trials=[
            self._trial(1), self._trial(2, contained=False)])
        assert summary.contained_count == 1


class TestRunnerConfig:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            FaultExperimentRunner().run_trial("nonsense")

    def test_paper_table_shape(self):
        # Guard against accidental edits: the paper's counts total 69.
        assert sum(n for _w, n, _a, _m in PAPER_TABLE_7_4.values()) == 69

    def test_scale_controls_trial_counts(self):
        runner = FaultExperimentRunner()
        # 0 scale still runs at least one trial per scenario.
        counts = {s: max(1, int(round(n * 0.0)))
                  for s, (_w, n, _a, _m) in PAPER_TABLE_7_4.items()}
        assert all(c == 1 for c in counts.values())

    def test_trial_result_latency_property(self):
        trial = FaultTrialResult(
            scenario=HW_DURING_PROCESS_CREATION, seed=0,
            injected_at_ns=0, detected=True,
            last_entry_latency_ns=5_000_000, contained=True,
            survivors_alive=True, outputs_ok=True, check_ok=True)
        assert trial.latency_ms == pytest.approx(5.0)
