"""Tests for the intercell RPC subsystem."""

import pytest

from repro.core.rpc import (
    MUST_QUEUE,
    QUEUED,
    RpcHandlerError,
    RpcRemoteError,
)
from repro.unix.errors import RpcTimeout


def drive(system, gen, deadline=60_000_000_000):
    proc = system.sim.process(gen, name="rpctest")
    system.sim.run_until_event(proc, deadline=system.sim.now + deadline)
    assert proc.triggered
    if not proc.ok:
        raise proc._value
    return proc.value


class TestBasicRpc:
    def test_null_rpc_latency_is_paper_value(self, hive2):
        c0 = hive2.cell(0)

        def bench():
            t0 = c0.sim.now
            result = yield from c0.rpc.call(1, "ping", {})
            return result, c0.sim.now - t0

        result, latency = drive(hive2, bench())
        assert result == "alive"
        assert latency == 7_200  # Section 6: 7.2 us

    def test_queued_rpc_latency_is_paper_value(self, hive2):
        c0 = hive2.cell(0)

        def bench():
            t0 = c0.sim.now
            yield from c0.rpc.call(1, "ping_queued", {})
            return c0.sim.now - t0

        assert drive(hive2, bench()) == 34_000  # Section 6: 34 us

    def test_rpc_to_self_rejected(self, hive2):
        c0 = hive2.cell(0)
        with pytest.raises(ValueError):
            next(c0.rpc.call(0, "ping", {}))

    def test_unknown_op_returns_error(self, hive2):
        c0 = hive2.cell(0)

        def bench():
            try:
                yield from c0.rpc.call(1, "no_such_op", {})
            except RpcRemoteError as exc:
                return exc.errno

        assert drive(hive2, bench()) == "EOPNOTSUPP"

    def test_handler_error_propagates_errno(self, hive2):
        c0, c1 = hive2.cell(0), hive2.cell(1)

        def failing(src, args):
            raise RpcHandlerError("EPERM", "nope")
            yield  # pragma: no cover

        c1.rpc.register("always_fails", failing)

        def bench():
            try:
                yield from c0.rpc.call(1, "always_fails", {})
            except RpcRemoteError as exc:
                return exc.errno

        assert drive(hive2, bench()) == "EPERM"

    def test_oversize_args_charge_copy_costs(self, hive2):
        c0 = hive2.cell(0)

        def bench():
            t0 = c0.sim.now
            yield from c0.rpc.call(1, "ping", {}, arg_bytes=512)
            return c0.sim.now - t0

        latency = drive(hive2, bench())
        # stubs 4.9 + copy 3.9 + alloc 3.4 + hw 2.0 + dispatch 3.1 us
        assert latency == 17_300

    def test_must_queue_fallback(self, hive2):
        c0, c1 = hive2.cell(0), hive2.cell(1)
        calls = []

        def picky(src, args):
            calls.append("attempt")
            if len(calls) == 1:
                yield c1.sim.timeout(0)
                return MUST_QUEUE
            yield c1.sim.timeout(0)
            return "served-queued"

        c1.rpc.register("picky", picky)

        def bench():
            return (yield from c0.rpc.call(1, "picky", {}))

        assert drive(hive2, bench()) == "served-queued"
        assert len(calls) == 2
        assert c1.rpc.metrics.counter("queued_fallback").value == 1


class TestFailureBehaviour:
    def test_rpc_to_halted_cell_times_out_with_hint(self, hive2):
        c0 = hive2.cell(0)
        hive2.machine.halt_node(1)

        def bench():
            try:
                yield from c0.rpc.call(1, "ping", {},
                                       timeout_ns=5_000_000)
            except RpcTimeout:
                return "timeout"

        assert drive(hive2, bench()) == "timeout"
        assert any(h.suspect == 1 for h in c0.detector.hints)

    def test_flow_control_retries_until_delivered(self, hive2):
        """A burst larger than the SIPS queue depth must still deliver
        every message (hardware flow control, never drops)."""
        c0 = hive2.cell(0)
        n = hive2.params.sips_queue_depth * 3

        def one():
            return (yield from c0.rpc.call(1, "ping", {}))

        procs = [hive2.sim.process(one()) for _ in range(n)]
        hive2.sim.run_until_event(hive2.sim.all_of(procs),
                                  deadline=hive2.sim.now + 60_000_000_000)
        assert all(p.ok and p.value == "alive" for p in procs)

    def test_concurrent_queued_requests_all_served(self, hive2):
        c0 = hive2.cell(0)

        def one():
            return (yield from c0.rpc.call(1, "ping_queued", {}))

        procs = [hive2.sim.process(one()) for _ in range(12)]
        hive2.sim.run_until_event(hive2.sim.all_of(procs),
                                  deadline=hive2.sim.now + 60_000_000_000)
        assert all(p.value == "alive" for p in procs)

    def test_server_steals_cpu_from_user_threads(self, hive2):
        """RPC service time on the server cell stretches its user work."""
        c1 = hive2.cell(1)
        before = c1._stolen_ns
        c0 = hive2.cell(0)

        def storm():
            for _ in range(50):
                yield from c0.rpc.call(1, "ping", {})

        drive(hive2, storm())
        assert c1._stolen_ns > before

    def test_shutdown_fails_pending_calls(self, hive2):
        c0, c1 = hive2.cell(0), hive2.cell(1)

        def never(src, args):
            yield c1.sim.timeout(10_000_000_000)
            return "too late"

        c1.rpc.register("slow", never, QUEUED)

        def bench():
            try:
                yield from c0.rpc.call(1, "slow", {}, timeout_ns=2_000_000)
            except RpcTimeout:
                return "timed out"

        assert drive(hive2, bench()) == "timed out"


class TestFlowControlBackoff:
    """The SipsQueueFull stall-and-retry path (hardware flow control)."""

    def _stuff_queue(self, system, dst_cell):
        """Fill the destination's request queue with inert messages that
        no delivery will ever drain, so every send flow-controls."""
        from repro.hardware.sips import REQUEST, SipsMessage

        fabric = system.machine.sips
        dst_node = system.registry.first_node_of(dst_cell)
        queue = fabric._queues[(dst_node, REQUEST)]
        while len(queue) < system.params.sips_queue_depth:
            queue.append(SipsMessage(src_cpu=0, dst_node=dst_node,
                                     kind=REQUEST, payload=None,
                                     payload_size=0, send_time=0))
        return queue

    def test_send_retries_counter_counts_backoff_rounds(self, hive2):
        c0 = hive2.cell(0)
        queue = self._stuff_queue(hive2, 1)

        def unclog():
            # Drain the inert clog after a few backoff rounds so the
            # call eventually goes through.
            yield hive2.sim.timeout(30_000)
            queue.clear()

        hive2.sim.process(unclog())

        def bench():
            return (yield from c0.rpc.call(1, "ping", {}))

        assert drive(hive2, bench()) == "alive"
        retries = c0.rpc.metrics.counter("send_retries").value
        assert retries >= 3  # 2.1 + 4.2 + 8.4 us of doubling backoff
        assert c0.rpc.metrics.counter("timeouts").value == 0

    def test_flow_control_past_deadline_hints_and_raises(self, hive2):
        """A peer that stays unreceptive past the call deadline becomes
        a failure hint, exactly like a silent timeout."""
        c0 = hive2.cell(0)
        self._stuff_queue(hive2, 1)

        def bench():
            try:
                yield from c0.rpc.call(1, "ping", {},
                                       timeout_ns=2_000_000)
            except RpcTimeout:
                return "timeout"

        assert drive(hive2, bench()) == "timeout"
        assert c0.rpc.metrics.counter("send_retries").value > 0
        assert c0.rpc.metrics.counter("timeouts").value == 1
        assert c0.rpc.metrics.counter("calls").value == 0
        assert any(h.suspect == 1 for h in c0.detector.hints)

    def test_flow_control_burst_is_deterministic(self):
        """Two identically-seeded bursts through queue-full backoff must
        retry the same number of times and finish at the same instant."""
        from repro.core.hive import boot_hive
        from repro.hardware.machine import MachineConfig
        from repro.hardware.params import HardwareParams
        from repro.sim.engine import Simulator

        def run_burst():
            sim = Simulator()
            system = boot_hive(sim, num_cells=2,
                               machine_config=MachineConfig(
                                   params=HardwareParams(num_nodes=2)))
            c0 = system.cell(0)
            n = system.params.sips_queue_depth * 3

            def one():
                return (yield from c0.rpc.call(1, "ping", {}))

            procs = [sim.process(one()) for _ in range(n)]
            sim.run_until_event(sim.all_of(procs),
                                deadline=sim.now + 60_000_000_000)
            assert all(p.ok and p.value == "alive" for p in procs)
            return (sim.now,
                    c0.rpc.metrics.counter("send_retries").value,
                    c0.rpc.metrics.counter("calls").value,
                    system.machine.sips.flow_control_rejections)

        first = run_burst()
        assert first[1] > 0, "burst never hit flow control"
        assert first == run_burst()
