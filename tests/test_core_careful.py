"""Tests for the careful reference protocol (Section 4.1)."""

import pytest

from repro.unix.cow import COW_NODE_TAG
from repro.unix.errors import CarefulReferenceFault
from repro.unix.kheap import KOBJ_ALIGN


def drive(system, gen, deadline=60_000_000_000):
    proc = system.sim.process(gen, name="careful-test")
    system.sim.run_until_event(proc, deadline=system.sim.now + deadline)
    assert proc.triggered
    if not proc.ok:
        raise proc._value
    return proc.value


def make_remote_cow_node(cell):
    node = cell.cow.new_root()
    node.pages.add(3)
    return node


class TestSuccessfulReads:
    def test_read_valid_remote_object(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)

        def prog():
            obj = yield from reader.careful.read_object(
                1, node.kaddr, COW_NODE_TAG)
            return obj

        assert drive(hive2, prog()) is node
        assert reader.careful.reads == 1

    def test_clock_read_latency_matches_paper(self, hive2):
        """careful_on..careful_off = 1.16 us with the 0.7 us miss.

        The dirty clock line additionally charges the firewall check the
        owner's writeback passes (Section 4.2), on top of the paper's
        1.16 us careful-reference figure.
        """
        reader, watched = hive2.cell(0), hive2.cell(1)
        params = hive2.machine.params

        def prog():
            # Watched cell dirties its clock line (a tick).
            watched.machine.coherence.write(watched.cpu_ids[0],
                                            watched.heartbeat_addr)
            t0 = reader.sim.now
            yield from reader.careful.read_word(1, watched.heartbeat_addr)
            return reader.sim.now - t0

        assert drive(hive2, prog()) == 1_160 + params.firewall_check_ns

    def test_sections_can_nest_across_threads(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)

        def one():
            return (yield from reader.careful.read_object(
                1, node.kaddr, COW_NODE_TAG))

        procs = [hive2.sim.process(one()) for _ in range(3)]
        hive2.sim.run_until_event(hive2.sim.all_of(procs),
                                  deadline=hive2.sim.now + 1_000_000_000)
        assert all(p.ok for p in procs)
        assert reader.careful.active_target is None


class TestChecks:
    def test_misaligned_address_fails_alignment_check(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)

        def prog():
            try:
                yield from reader.careful.read_object(
                    1, node.kaddr + 8, COW_NODE_TAG)
            except CarefulReferenceFault as exc:
                return exc.check

        assert drive(hive2, prog()) == "alignment"

    def test_wrong_cell_range_fails_range_check(self, hive2):
        """A pointer into the *reader's own* kernel range, read as if it
        belonged to the remote cell, trips the range check."""
        reader = hive2.cell(0)
        local_node = make_remote_cow_node(reader)

        def prog():
            try:
                yield from reader.careful.read_object(
                    1, local_node.kaddr, COW_NODE_TAG)
            except CarefulReferenceFault as exc:
                return exc.check

        assert drive(hive2, prog()) == "range"

    def test_freed_object_fails_type_tag_check(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)
        addr = node.kaddr
        owner.heap.free(node)

        def prog():
            try:
                yield from reader.careful.read_object(1, addr, COW_NODE_TAG)
            except CarefulReferenceFault as exc:
                return exc.check

        assert drive(hive2, prog()) == "type_tag"

    def test_wrong_type_fails_type_tag_check(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)

        def prog():
            try:
                yield from reader.careful.read_object(1, node.kaddr,
                                                      "region")
            except CarefulReferenceFault as exc:
                return exc.check

        assert drive(hive2, prog()) == "type_tag"

    def test_unallocated_address_fails(self, hive2):
        reader = hive2.cell(0)
        lo, hi = hive2.registry.heap_range_of(1)
        addr = lo + 10 * KOBJ_ALIGN

        def prog():
            try:
                yield from reader.careful.read_object(1, addr, COW_NODE_TAG)
            except CarefulReferenceFault as exc:
                return exc.check

        assert drive(hive2, prog()) == "type_tag"

    def test_bus_error_captured_not_panicking(self, hive2):
        """Reading a failed cell's memory inside a careful section is a
        fault, never a panic of the reader."""
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)
        hive2.machine.halt_node(1)

        def prog():
            try:
                yield from reader.careful.read_object(
                    1, node.kaddr, COW_NODE_TAG)
            except CarefulReferenceFault as exc:
                return exc.check

        assert drive(hive2, prog()) == "bus_error"
        assert reader.alive

    def test_failed_check_produces_failure_hint(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)
        addr = node.kaddr
        owner.heap.free(node)

        def prog():
            try:
                yield from reader.careful.read_object(1, addr, COW_NODE_TAG)
            except CarefulReferenceFault:
                pass

        drive(hive2, prog())
        assert any(h.suspect == 1 and "careful" in h.reason
                   for h in reader.detector.hints)

    def test_section_closed_after_fault(self, hive2):
        reader, owner = hive2.cell(0), hive2.cell(1)
        node = make_remote_cow_node(owner)

        def prog():
            try:
                yield from reader.careful.read_object(
                    1, node.kaddr + 8, COW_NODE_TAG)
            except CarefulReferenceFault:
                pass

        drive(hive2, prog())
        assert reader.careful.active_target is None
        assert not reader.careful.handle_kernel_bus_error(None)
