"""Shared test helpers."""


def run_program(system_or_kernel, cell_id, program,
                deadline_ns=60_000_000_000):
    """Run one init program to completion; returns (kernel, thread)."""
    from repro.core.hive import HiveSystem

    if isinstance(system_or_kernel, HiveSystem):
        kernel = system_or_kernel.cell(cell_id)
    else:
        kernel = system_or_kernel
    proc = kernel.create_process("test-init")
    thread = kernel.start_thread(proc, program)
    kernel.sim.run_until_event(thread.sim_process,
                               deadline=kernel.sim.now + deadline_ns)
    assert thread.sim_process.triggered, "test program did not finish"
    return kernel, thread
