"""Integration tests for the single-kernel UNIX (IRIX baseline)."""

import pytest

from repro.core.hive import boot_irix
from repro.hardware.machine import Machine, MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.errors import BadAddressError, FileError, StaleGenerationError
from repro.unix.fs import PAGE
from repro.unix.kernel import GlobalNamespace, LocalKernel

from tests.helpers import run_program


@pytest.fixture
def kernel():
    sim = Simulator()
    k = boot_irix(sim)
    k.namespace.mount("/tmp", 0)
    k.namespace.mount("/data", 1)
    return k


class TestNamespaceRouting:
    def test_mounts_override_hash(self, kernel):
        assert kernel.fs_node_for("/tmp/x") == 0
        assert kernel.fs_node_for("/data/x") == 1

    def test_longest_prefix_wins(self, kernel):
        kernel.namespace.mount("/data/special", 2)
        assert kernel.fs_node_for("/data/special/f") == 2
        assert kernel.fs_node_for("/data/other") == 1

    def test_hash_routing_is_stable(self, kernel):
        a = kernel.fs_node_for("/unmounted/file")
        b = kernel.fs_node_for("/unmounted/file")
        assert a == b

    def test_bad_mount_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.namespace.mount("relative", 0)
        with pytest.raises(ValueError):
            kernel.namespace.mount("/x", 99)


class TestFileSyscalls:
    def test_create_write_read(self, kernel):
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/f", "w", create=True)
            n = yield from ctx.write(fd, b"hello world")
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/f", "r")
            out["data"] = yield from ctx.read(fd, 100)
            out["written"] = n
            yield from ctx.close(fd)

        run_program(kernel, 0, prog)
        assert out["written"] == 11
        assert out["data"] == b"hello world"

    def test_open_missing_enoent(self, kernel):
        out = {}

        def prog(ctx):
            try:
                yield from ctx.open("/tmp/nope", "r")
            except FileError as exc:
                out["errno"] = exc.errno

        run_program(kernel, 0, prog)
        assert out["errno"] == "ENOENT"

    def test_read_past_eof_truncates(self, kernel):
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/s", "w", create=True)
            yield from ctx.write(fd, b"abc")
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/s", "r")
            out["data"] = yield from ctx.read(fd, 1000)

        run_program(kernel, 0, prog)
        assert out["data"] == b"abc"

    def test_sequential_offsets(self, kernel):
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/seq", "w", create=True)
            yield from ctx.write(fd, b"aaaa")
            yield from ctx.write(fd, b"bbbb")
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/seq", "r")
            out["first"] = yield from ctx.read(fd, 4)
            out["second"] = yield from ctx.read(fd, 4)

        run_program(kernel, 0, prog)
        assert out["first"] == b"aaaa"
        assert out["second"] == b"bbbb"

    def test_write_on_readonly_fd_rejected(self, kernel):
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/ro", "w", create=True)
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/ro", "r")
            try:
                yield from ctx.write(fd, b"x")
            except FileError as exc:
                out["errno"] = exc.errno

        run_program(kernel, 0, prog)
        assert out["errno"] == "EBADF"

    def test_multi_page_write_spans_pages(self, kernel):
        payload = bytes(range(256)) * 48  # 3 pages
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/big", "w", create=True)
            yield from ctx.write(fd, payload)
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/big", "r")
            out["data"] = yield from ctx.read(fd, len(payload))

        run_program(kernel, 0, prog)
        assert out["data"] == payload

    def test_unlink_then_open_fails(self, kernel):
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/gone", "w", create=True)
            yield from ctx.close(fd)
            yield from ctx.unlink("/tmp/gone")
            try:
                yield from ctx.open("/tmp/gone", "r")
            except FileError as exc:
                out["errno"] = exc.errno

        run_program(kernel, 0, prog)
        assert out["errno"] == "ENOENT"

    def test_generation_mismatch_gives_eio(self, kernel):
        """Stale descriptors after a discard see I/O errors."""
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/gen", "w", create=True)
            yield from ctx.write(fd, b"v1")
            fs = kernel.local_fs_for("/tmp/gen")
            fs.bump_generation(fs.lookup("/tmp/gen"))
            try:
                yield from ctx.write(fd, b"v2")
            except StaleGenerationError as exc:
                out["errno"] = exc.errno

        run_program(kernel, 0, prog)
        assert out["errno"] == "EIO"


class TestProcessSyscalls:
    def test_spawn_and_wait(self, kernel):
        out = {}

        def child(ctx):
            yield from ctx.compute(1000)
            out["child_ran"] = True

        def parent(ctx):
            pid = yield from ctx.spawn(child, "kid")
            out["status"] = yield from ctx.waitpid(pid)

        run_program(kernel, 0, parent)
        assert out["child_ran"]
        assert out["status"] == 0

    def test_explicit_exit_status_minus_one_semantics(self, kernel):
        out = {}

        def child(ctx):
            yield from ctx.exit(3)

        def parent(ctx):
            pid = yield from ctx.spawn(child, "kid")
            out["status"] = yield from ctx.waitpid(pid)

        run_program(kernel, 0, parent)
        # exit() tears the thread down via ProcessKilled: nonzero status.
        assert out["status"] != 0

    def test_wait_unknown_pid_echild(self, kernel):
        out = {}

        def prog(ctx):
            try:
                yield from ctx.waitpid(424242)
            except FileError as exc:
                out["errno"] = exc.errno

        run_program(kernel, 0, prog)
        assert out["errno"] == "ECHILD"

    def test_signal_kill(self, kernel):
        out = {"child_done": False}

        def child(ctx):
            yield from ctx.compute(10_000_000_000)
            out["child_done"] = True

        def parent(ctx):
            pid = yield from ctx.spawn(child, "victim")
            yield from ctx.compute(1_000_000)
            yield from ctx.signal(pid, 9)
            out["status"] = yield from ctx.waitpid(pid)

        run_program(kernel, 0, parent)
        assert not out["child_done"]
        assert out["status"] == -1

    def test_exit_releases_resources(self, kernel):
        before_heap = kernel.heap.live_objects
        before_free = kernel.pfdats.free_count

        def child(ctx):
            region = yield from ctx.map_anon(8)
            for i in range(8):
                yield from ctx.touch(region, i, write=True)

        def parent(ctx):
            pid = yield from ctx.spawn(child, "kid")
            yield from ctx.waitpid(pid)

        run_program(kernel, 0, parent)
        assert kernel.pfdats.free_count == before_free
        assert kernel.heap.live_objects <= before_heap + 2

    def test_cpu_contention_round_robin(self, kernel):
        """More runnable threads than CPUs still all make progress."""
        out = {}

        def worker(i):
            def prog(ctx):
                yield from ctx.compute(30_000_000)
                out[i] = ctx.sim.now
            return prog

        def parent(ctx):
            pids = []
            for i in range(8):  # 8 jobs on 4 CPUs
                pids.append((yield from ctx.spawn(worker(i), f"w{i}")))
            for pid in pids:
                yield from ctx.waitpid(pid)

        run_program(kernel, 0, parent)
        assert len(out) == 8


class TestVmSyscalls:
    def test_anon_zero_fill(self, kernel):
        out = {}

        def prog(ctx):
            region = yield from ctx.map_anon(4)
            pte = yield from ctx.touch(region, 0, write=True)
            out["frame_zero"] = kernel.machine.memory.read_bytes(
                pte.frame, 0, 4)

        run_program(kernel, 0, prog)
        assert out["frame_zero"] == b"\x00\x00\x00\x00"

    def test_touch_out_of_region_faults(self, kernel):
        out = {}

        def prog(ctx):
            region = yield from ctx.map_anon(2)
            try:
                yield from ctx.touch(region, 5)
            except BadAddressError:
                out["segv"] = True

        run_program(kernel, 0, prog)
        assert out["segv"]

    def test_write_to_readonly_region_faults(self, kernel):
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/m", "w", create=True)
            yield from ctx.write(fd, b"x" * PAGE)
            yield from ctx.close(fd)
            region = yield from ctx.map_file("/tmp/m", writable=False)
            try:
                yield from ctx.touch(region, 0, write=True)
            except BadAddressError:
                out["denied"] = True

        run_program(kernel, 0, prog)
        assert out["denied"]

    def test_mapped_file_page_cache_shared(self, kernel):
        """Two mappings of the same file see one physical page."""
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/shared", "w", create=True)
            yield from ctx.write(fd, b"z" * PAGE)
            yield from ctx.close(fd)
            r1 = yield from ctx.map_file("/tmp/shared")
            r2 = yield from ctx.map_file("/tmp/shared")
            pte1 = yield from ctx.touch(r1, 0)
            pte2 = yield from ctx.touch(r2, 0)
            out["same_frame"] = pte1.frame == pte2.frame

        run_program(kernel, 0, prog)
        assert out["same_frame"]

    def test_fork_cow_sharing_and_privacy(self, kernel):
        out = {}

        def child(ctx):
            region = ctx.process.aspace.regions[0]
            pte = yield from ctx.touch(region, 0)  # read pre-fork page
            out["child_sees"] = kernel.machine.memory.read_bytes(
                pte.frame, 0, 3)
            # Child's write must not affect the parent.
            yield from ctx.touch(region, 0, write=True)
            pte2 = ctx.process.aspace.lookup_pte(kernel.kernel_id,
                                                 region.start_vpn)
            out["child_frame_after_write"] = pte2.frame

        def parent(ctx):
            region = yield from ctx.map_anon(2)
            pte = yield from ctx.touch(region, 0, write=True)
            kernel.machine.memory.write_bytes(pte.frame, 0, b"abc",
                                              cpu=ctx.cpu)
            out["parent_frame"] = pte.frame
            pid = yield from ctx.spawn(child, "kid")
            yield from ctx.waitpid(pid)

        run_program(kernel, 0, parent)
        assert out["child_sees"] == b"abc"
        assert out["child_frame_after_write"] != out["parent_frame"]

    def test_page_cache_eviction_writes_back(self, kernel):
        """Filling memory evicts clean pages and writes dirty ones back."""
        out = {}
        small = boot_irix(Simulator(), machine_config=MachineConfig(
            params=HardwareParams(num_nodes=1,
                                  memory_per_node=8 * 1024 * 1024)))
        small.namespace.mount("/tmp", 0)

        def prog(ctx):
            fd = yield from ctx.open("/tmp/big", "w", create=True)
            # Write more than paged memory (8 MB node, 4 MB reserved).
            chunk = b"y" * (256 * 1024)
            for _ in range(8):
                yield from ctx.write(fd, chunk)
            region = yield from ctx.map_anon(700)
            for i in range(700):
                yield from ctx.touch(region, i, write=True)
            out["ok"] = True

        run_program(small, 0, prog, deadline_ns=400_000_000_000)
        assert out["ok"]
        fs = small.filesystems[0]
        assert fs.disk_writes > 0  # dirty pages went to the platter
