"""Unit tests for the workload platform adapter."""

import pytest

from repro.core.hive import boot_hive, boot_irix
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE
from repro.workloads.base import Platform, WorkloadResult, pattern_bytes

from tests.helpers import run_program


def make_hive_platform():
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4, machine_config=MachineConfig())
    hive.namespace.mount("/d", 2)
    return Platform(hive)


class TestPlatform:
    def test_wraps_irix_as_single_kernel(self):
        platform = Platform(boot_irix(Simulator()))
        assert not platform.is_hive
        assert platform.num_placements == 1

    def test_wraps_hive_with_all_cells(self):
        platform = make_hive_platform()
        assert platform.is_hive
        assert platform.num_placements == 4

    def test_kernel_for_round_robin(self):
        platform = make_hive_platform()
        assert platform.kernel_for(0).kernel_id == 0
        assert platform.kernel_for(5).kernel_id == 1

    def test_kernel_for_skips_dead_cells(self):
        platform = make_hive_platform()
        platform.target.registry.mark_dead(1, "test")
        k = platform.kernel_for(1)
        assert k.alive and k.kernel_id != 1

    def test_live_kernels(self):
        platform = make_hive_platform()
        platform.target.registry.mark_dead(3, "test")
        assert [k.kernel_id for k in platform.live_kernels()] == [0, 1, 2]

    def test_fs_owner_kernel(self):
        platform = make_hive_platform()
        assert platform.fs_owner_kernel("/d/x").kernel_id == 2
        platform.target.registry.mark_dead(2, "test")
        assert platform.fs_owner_kernel("/d/x") is None


class TestVerifyFile:
    def _write(self, platform, path, data):
        def prog(ctx):
            fd = yield from ctx.open(path, "w", create=True)
            yield from ctx.write(fd, data)
            yield from ctx.close(fd)

        owner = platform.fs_owner_kernel(path)
        run_program(owner, 0, prog)

    def test_clean_file_verifies(self):
        platform = make_hive_platform()
        data = pattern_bytes("/d/ok", 2 * PAGE)
        self._write(platform, "/d/ok", data)
        assert platform.verify_file("/d/ok", data) == []

    def test_size_mismatch_reported(self):
        platform = make_hive_platform()
        self._write(platform, "/d/short", b"abc")
        errors = platform.verify_file("/d/short", b"abcdef")
        assert errors and "size" in errors[0]

    def test_content_mismatch_reported(self):
        platform = make_hive_platform()
        self._write(platform, "/d/bad", b"A" * PAGE)
        errors = platform.verify_file("/d/bad", b"B" * PAGE)
        assert errors and "page 0" in errors[0]

    def test_missing_file_reported(self):
        platform = make_hive_platform()
        errors = platform.verify_file("/d/none", b"x")
        assert errors

    def test_dead_server_reported_as_unavailable(self):
        platform = make_hive_platform()
        self._write(platform, "/d/gone", b"x")
        platform.target.registry.mark_dead(2, "test")
        errors = platform.verify_file("/d/gone", b"x")
        assert errors and "unavailable" in errors[0]


class TestWorkloadResult:
    def test_elapsed_and_ok(self):
        result = WorkloadResult("w", started_ns=1_000_000_000,
                                finished_ns=3_500_000_000)
        assert result.elapsed_s == pytest.approx(2.5)
        assert result.outputs_ok
        result.output_errors.append("boom")
        assert not result.outputs_ok
