"""Open-loop session traffic: substream and queueing properties.

The substream property the million-session generator rests on: every
draw of session ``sid`` is a pure function of ``(seed, sid, draw)``,
sessions own disjoint counter blocks (non-overlapping substreams), and
chunk boundaries never change what any session draws.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.sim.stats import Histogram
from repro.workloads.sessions import (DRAWS_PER_SESSION,
                                      SESSION_TYPES,
                                      SessionTrafficConfig,
                                      generate_chunk,
                                      run_sessions,
                                      session_uniforms)


class TestSubstreams:
    @given(seed=st.integers(0, 2**32 - 1),
           sid=st.integers(0, 2**40),
           draw=st.integers(0, DRAWS_PER_SESSION - 1))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_in_range(self, seed, sid, draw):
        sids = np.asarray([sid], dtype=np.uint64)
        a = session_uniforms(seed, sids, draw)[0]
        b = session_uniforms(seed, sids, draw)[0]
        assert a == b
        assert 0.0 < a <= 1.0

    @given(seed=st.integers(0, 2**32 - 1),
           sid=st.integers(0, 2**40 - 2))
    @settings(max_examples=40, deadline=None)
    def test_adjacent_sessions_do_not_share_draws(self, seed, sid):
        # Disjoint counter blocks: session sid's draws never coincide
        # with session sid+1's (across every draw index).
        sids = np.asarray([sid, sid + 1], dtype=np.uint64)
        mine = {float(session_uniforms(seed, sids[:1], d)[0])
                for d in range(DRAWS_PER_SESSION)}
        theirs = {float(session_uniforms(seed, sids[1:], d)[0])
                  for d in range(DRAWS_PER_SESSION)}
        assert not mine & theirs

    @given(sid=st.integers(0, 2**40),
           seed_a=st.integers(0, 2**31),
           seed_b=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_seeds_give_distinct_streams(self, sid, seed_a, seed_b):
        if seed_a == seed_b:
            return
        sids = np.asarray([sid], dtype=np.uint64)
        a = session_uniforms(seed_a, sids, 0)[0]
        b = session_uniforms(seed_b, sids, 0)[0]
        assert a != b

    def test_vectorized_matches_scalar(self):
        sids = np.arange(0, 257, dtype=np.uint64)
        bulk = session_uniforms(42, sids, 2)
        singles = np.asarray([
            session_uniforms(42, sids[i:i + 1], 2)[0]
            for i in range(len(sids))])
        assert np.array_equal(bulk, singles)


class TestGeneration:
    def test_chunk_boundaries_do_not_change_sessions(self):
        # One 512-session chunk == two 256-session chunks, per session.
        cfg = SessionTrafficConfig(sessions=512, seed=9)
        whole = generate_chunk(cfg, 0, 512, 0.0)
        first = generate_chunk(cfg, 0, 256, 0.0)
        second = generate_chunk(cfg, 256, 256, float(
            first["arrivals"][-1]))
        assert np.array_equal(whole["service"][:256], first["service"])
        assert np.array_equal(whole["service"][256:], second["service"])
        assert np.array_equal(whole["types"][:256], first["types"])
        assert np.allclose(whole["arrivals"][:256], first["arrivals"])
        assert np.allclose(whole["arrivals"][256:], second["arrivals"])

    def test_distributions_are_positive_and_heavy_tailed(self):
        cfg = SessionTrafficConfig(sessions=20_000, seed=3)
        chunk = generate_chunk(cfg, 0, 20_000, 0.0)
        service = chunk["service"]
        assert (service > 0).all()
        # Pareto(1.9): the tail is real — max far above the mean.
        assert service.max() > 10 * service.mean()
        inter = np.diff(chunk["arrivals"])
        assert (inter > 0).all()

    def test_mix_respects_weights(self):
        cfg = SessionTrafficConfig(sessions=50_000, seed=4,
                                   mix=(0.8, 0.1, 0.1))
        chunk = generate_chunk(cfg, 0, 50_000, 0.0)
        counts = np.bincount(chunk["types"],
                             minlength=len(SESSION_TYPES))
        assert counts[0] > 0.75 * 50_000
        assert counts.sum() == 50_000

    def test_pareto_needs_finite_mean(self):
        cfg = SessionTrafficConfig(sessions=16, service="pareto",
                                   service_shape=0.9)
        with pytest.raises(ValueError, match="finite mean"):
            generate_chunk(cfg, 0, 16, 0.0)


class TestTrafficRuns:
    def test_fault_free_run_completes_everything(self):
        cfg = SessionTrafficConfig(sessions=30_000, chunk_sessions=8192,
                                   probe_every=10_000)
        row = run_sessions(cfg)
        assert row["sessions"] == 30_000
        assert row["completed"] == 30_000
        assert row["lost"] == 0 and row["faults"] == 0
        assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0
        assert row["probes_launched"] == row["probes_completed"] > 0
        assert row["coupling_accesses"] > 0
        assert sum(row["by_type"].values()) == 30_000
        json.dumps(row)  # report must be JSON-safe

    def test_same_seed_is_deterministic(self):
        cfg = SessionTrafficConfig(sessions=20_000, inject_ms=50)
        a = run_sessions(cfg)
        b = run_sessions(cfg)
        skip = ("wall_s", "sessions_per_sec", "boot_wall_s",
                "fork_wall_s")
        for key in a:
            if key in skip:
                continue
            assert a[key] == b[key], key

    def test_fault_loses_sessions(self):
        cfg = SessionTrafficConfig(sessions=30_000, inject_ms=60)
        row = run_sessions(cfg)
        assert row["faults"] == 1
        assert row["lost"] > 0
        assert row["sessions_lost_per_fault"] == row["lost"]
        assert row["completed"] + row["lost"] == 30_000
        assert row["availability"]["faults_injected"] == 1

    def test_no_failover_loses_dead_cell_arrivals(self):
        dead = run_sessions(SessionTrafficConfig(
            sessions=30_000, inject_ms=60, failover=False))
        assert dead["lost_arrivals"] > 0
        routed = run_sessions(SessionTrafficConfig(
            sessions=30_000, inject_ms=60, failover=True))
        assert routed["lost_arrivals"] == 0
        assert routed["completed"] > dead["completed"]

    def test_snapshot_fork_matches_boot(self):
        from repro.sim.snapshot import fork_supported
        if not fork_supported():
            pytest.skip("snapshot fork needs os.fork")
        cfg = SessionTrafficConfig(sessions=20_000, inject_ms=50)
        boot = run_sessions(cfg, snapshot=False)
        fork = run_sessions(cfg, snapshot=True)
        skip = ("wall_s", "sessions_per_sec", "boot_wall_s",
                "fork_wall_s", "snapshot")
        for key in boot:
            if key in skip:
                continue
            assert boot[key] == fork[key], key
        assert fork["snapshot"] == "fork"


class TestHistogramRecordMany:
    def test_matches_scalar_record(self):
        bounds = [10, 100, 1000]
        scalar = Histogram("h", bounds)
        bulk = Histogram("h", bounds)
        values = [1, 10, 11, 99, 100, 5000, 3, 1000]
        for v in values:
            scalar.record(v)
        bulk.record_many(np.asarray(values, dtype=np.int64))
        assert bulk.to_dict() == scalar.to_dict()

    def test_empty_is_noop(self):
        hist = Histogram("h", [10])
        hist.record_many(np.asarray([], dtype=np.int64))
        assert hist.total == 0
