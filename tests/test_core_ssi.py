"""Tests for the single-system image: remote fork, signals, spanning
tasks, and migration (Section 3.2)."""

import pytest

from repro.unix.process import SIGKILL, SIGTERM

from tests.helpers import run_program


class TestRemoteFork:
    def test_child_runs_on_target_cell(self, hive4):
        out = {}

        def child(ctx):
            out["cell"] = ctx.kernel.kernel_id
            yield from ctx.compute(1000)

        def parent(ctx):
            pid = yield from ctx.spawn(child, "kid", target_cell=2)
            out["pid_cell"] = pid // 100_000
            out["status"] = yield from ctx.waitpid(pid)

        run_program(hive4, 0, parent)
        assert out["cell"] == 2
        assert out["pid_cell"] == 2
        assert out["status"] == 0

    def test_remote_wait_returns_child_status(self, hive4):
        out = {}

        def child(ctx):
            yield from ctx.compute(5_000_000)

        def parent(ctx):
            pid = yield from ctx.spawn(child, "kid", target_cell=1)
            out["status"] = yield from ctx.waitpid(pid)

        run_program(hive4, 0, parent)
        assert out["status"] == 0

    def test_wait_before_and_after_exit(self, hive4):
        """Exit notifications cached for late waits."""
        out = {}

        def quick(ctx):
            yield from ctx.compute(100)

        def parent(ctx):
            pid = yield from ctx.spawn(quick, "kid", target_cell=1)
            yield from ctx.compute(200_000_000)  # child exits long before
            out["late"] = yield from ctx.waitpid(pid)

        run_program(hive4, 0, parent)
        assert out["late"] == 0

    def test_cow_ancestry_crosses_cells(self, hive4):
        out = {}

        def child(ctx):
            yield from ctx.compute(100)
            leaf = ctx.kernel._resolve_local_cow(
                ctx.process.cow_leaf_addr)
            out["parent_cell"] = leaf.parent_cell

        def parent(ctx):
            region = yield from ctx.map_anon(2)
            yield from ctx.touch(region, 0, write=True)
            pid = yield from ctx.spawn(child, "kid", target_cell=3)
            yield from ctx.waitpid(pid)

        run_program(hive4, 0, parent)
        assert out["parent_cell"] == 0


class TestSignals:
    def test_cross_cell_signal(self, hive4):
        out = {}

        def victim(ctx):
            yield from ctx.compute(60_000_000_000)
            out["survived"] = True

        def parent(ctx):
            pid = yield from ctx.spawn(victim, "v", target_cell=2)
            yield from ctx.compute(1_000_000)
            yield from ctx.signal(pid, SIGKILL)
            out["status"] = yield from ctx.waitpid(pid)

        run_program(hive4, 0, parent)
        assert "survived" not in out
        assert out["status"] == -1

    def test_signal_unknown_pid(self, hive4):
        from repro.unix.errors import FileError

        out = {}

        def prog(ctx):
            try:
                yield from ctx.signal(399_999, SIGTERM)
            except FileError as exc:
                out["errno"] = exc.errno

        run_program(hive4, 0, prog)
        assert out["errno"] == "ESRCH"

    def test_distributed_process_group_signal(self, hive4):
        out = {"killed": 0}

        def member(ctx):
            try:
                yield from ctx.compute(60_000_000_000)
            finally:
                out["killed"] += 1

        def leader(ctx):
            pids = []
            for cell in range(4):
                pid = yield from ctx.spawn(member, f"m{cell}",
                                           target_cell=cell)
                pids.append(pid)
            yield from ctx.compute(1_000_000)
            # All members joined the leader's group at spawn?  They get
            # their own pgid; signal each cell's pgroup via the kernel.
            delivered = yield from ctx.kernel.signal_pgroup(
                ctx, ctx.process.pgid, SIGKILL)
            out["delivered"] = delivered

        # Put the members in their own group (not the leader's, or the
        # SIGKILL would take the leader down too) spanning two cells.
        def local_leader(ctx):
            group = 777_777
            pids = []
            for i, cell in enumerate((0, 0, 1)):
                pid = yield from ctx.spawn(member, f"m{i}",
                                           target_cell=cell or None)
                target_kernel = hive4.cell(pid // 100_000)
                target_kernel.processes[pid].pgid = group
                pids.append(pid)
            yield from ctx.compute(1_000_000)
            out["delivered"] = yield from ctx.kernel.signal_pgroup(
                ctx, group, SIGKILL)
            statuses = []
            for pid in pids:
                statuses.append((yield from ctx.waitpid(pid)))
            out["statuses"] = statuses

        run_program(hive4, 0, local_leader)
        assert out["delivered"] == 3
        # Every member was killed (none ran to completion).
        assert out["statuses"] == [-1, -1, -1]
        assert "survived" not in out


class TestSpanningTasks:
    def test_components_on_every_cell_share_segment(self, hive4):
        out = {}

        def factory(index, total):
            def worker(ctx):
                region = next(r for r in ctx.process.aspace.regions
                              if r.share_key == 1)
                # Writer thread publishes; all threads write their slot.
                pte = yield from ctx.touch(region, index, write=True)
                ctx.kernel.machine.memory.write_bytes(
                    pte.frame, 0, bytes([index + 1]), cpu=ctx.cpu)
                yield from ctx.compute(50_000_000)
                # Every thread reads slot 0 (placed on cell 0).
                pte0 = yield from ctx.touch(region, 0)
                data = ctx.kernel.machine.memory.read_bytes(
                    pte0.frame, 0, 1)
                out[index] = data
            return worker

        def master(ctx):
            task = yield from ctx.kernel.spawn_spanning_task(
                ctx, factory, [0, 1, 2, 3], {1: 16}, name="t")
            out["cells"] = task.cells()
            for pid in task.pids():
                yield from ctx.waitpid(pid)

        run_program(hive4, 0, master)
        assert out["cells"] == [0, 1, 2, 3]
        assert all(out[i] == b"\x01" for i in range(4))

    def test_first_touch_placement(self, hive4):
        out = {}

        def factory(index, total):
            def worker(ctx):
                region = next(r for r in ctx.process.aspace.regions
                              if r.share_key == 1)
                pte = yield from ctx.touch(region, index, write=True)
                out[index] = ctx.kernel.machine.params.node_of_frame(
                    pte.frame)
            return worker

        def master(ctx):
            task = yield from ctx.kernel.spawn_spanning_task(
                ctx, factory, [0, 1, 2, 3], {1: 8}, name="t")
            for pid in task.pids():
                yield from ctx.waitpid(pid)

        run_program(hive4, 0, master)
        # Each component's first touch placed its page on its own cell.
        assert out == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_sibling_failure_kills_task(self, hive4):
        out = {}

        def factory(index, total):
            def worker(ctx):
                if index == 1:
                    yield from ctx.exit(1)  # abnormal component exit
                yield from ctx.compute(60_000_000_000)
                out["survivor"] = index
            return worker

        def master(ctx):
            task = yield from ctx.kernel.spawn_spanning_task(
                ctx, factory, [0, 1], {1: 4}, name="t")
            for pid in task.pids():
                yield from ctx.waitpid(pid)
            out["task_dead"] = hive4.registry.task(task.task_id).dead

        run_program(hive4, 0, master)
        assert out["task_dead"]
        assert "survivor" not in out

    def test_migration_moves_continuation(self, hive4):
        out = {}

        def continuation(ctx):
            out["ran_on"] = ctx.kernel.kernel_id
            yield from ctx.compute(1000)

        def prog(ctx):
            pid = yield from ctx.kernel.migrate_process(
                ctx, continuation, "moved", target_cell=3)
            out["status"] = yield from ctx.waitpid(pid)

        run_program(hive4, 0, prog)
        assert out["ran_on"] == 3
        assert out["status"] == 0
