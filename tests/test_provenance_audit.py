"""Fault-provenance tracer and containment-audit golden tests.

Three contracts: (1) the audit is deterministic — a same-seed trial
produces a byte-identical ``sort_keys`` JSON report; (2) the campaign
merge is lossless — the per-trial report inside a merged campaign
payload equals the report a direct single-process run produces; (3) on
the Table 7.4 fault classes every tainted interaction ends blocked or
discarded — zero absorbed — and attaching the tracer never perturbs
the simulation.
"""

import json

from repro.bench.faultexp import (
    HW_DURING_PROCESS_CREATION,
    SW_COW_TREE,
    FaultExperimentRunner,
)
from repro.obs import (
    attach_flight_recorder,
    attach_provenance,
    audit_to_chrome_trace,
    merge_audits,
    render_audit_markdown,
)

#: (scenario, seed) -> (trial_dict, audit_report, events_processed);
#: trials are seconds-long, so each is simulated once per test session.
_CACHE = {}


def _run_audited(scenario, seed, with_recorder=False):
    captured = {}

    def on_boot(system):
        if with_recorder:
            attach_flight_recorder(system)
        captured["tracer"] = attach_provenance(system)
        captured["system"] = system

    runner = FaultExperimentRunner(on_boot=on_boot)
    trial = runner.run_trial(scenario, seed)
    return (trial.to_dict(), captured["tracer"].audit_report(),
            captured["system"].sim.events_processed)


def _audited(scenario, seed):
    key = (scenario, seed)
    if key not in _CACHE:
        _CACHE[key] = _run_audited(scenario, seed)
    return _CACHE[key]


def _dumps(payload):
    return json.dumps(payload, sort_keys=True)


class TestAuditDeterminism:
    def test_same_seed_byte_identical(self):
        _trial, first, _events = _audited(HW_DURING_PROCESS_CREATION, 5)
        _trial2, second, _events2 = _run_audited(
            HW_DURING_PROCESS_CREATION, 5)
        assert first["faults"], "no fault recorded"
        assert _dumps(first) == _dumps(second)

    def test_campaign_merge_equals_serial(self):
        from repro.bench.parallel import run_inject_campaign

        payload = run_inject_campaign([HW_DURING_PROCESS_CREATION],
                                      trials=1, seed_base=5, workers=1)
        merged = payload["audit"]
        label = f"{HW_DURING_PROCESS_CREATION}-5"
        assert sorted(merged["trials"]) == [label]
        # The campaign worker also attaches a flight recorder; recorder
        # presence must not leak into the audit payload.
        _trial, direct, _events = _audited(HW_DURING_PROCESS_CREATION, 5)
        assert _dumps(merged["trials"][label]) == _dumps(direct)
        assert _dumps(merged) == _dumps(merge_audits([direct], [label]))

    def test_recorder_does_not_perturb_audit(self):
        _trial, bare, _events = _audited(HW_DURING_PROCESS_CREATION, 5)
        _trial2, recorded, _ev = _run_audited(
            HW_DURING_PROCESS_CREATION, 5, with_recorder=True)
        assert _dumps(bare) == _dumps(recorded)


class TestContainmentVerdicts:
    def test_hw_fault_contained_zero_absorbed(self):
        trial, audit, _events = _audited(HW_DURING_PROCESS_CREATION, 5)
        assert trial["contained"]
        assert audit["verdict"] == "contained"
        verdicts = audit["summary"]["by_verdict"]
        assert verdicts.get("absorbed", 0) == 0
        assert len(audit["faults"]) == 1
        assert audit["faults"][0]["cell"] == 3

    def test_sw_fault_contained_with_near_misses(self):
        trial, audit, _events = _audited(SW_COW_TREE, 1)
        assert trial["contained"]
        assert audit["verdict"] == "contained"
        verdicts = audit["summary"]["by_verdict"]
        assert verdicts.get("absorbed", 0) == 0
        # The corrupted pointer trips careful-reference checks before
        # recovery fires: near misses with a named defense.
        assert audit["summary"]["near_misses"] >= 1
        assert audit["summary"]["by_defense"]
        # Recovery discards show up as discarded taint, and the DAG
        # roots every flow at the fault node.
        edges = audit["dag"]["edges"]
        assert any(e["channel"] == "inject" and e["src"] == "fault:t0"
                   for e in edges)
        assert all(e["verdict"] != "absorbed" for e in edges)

    def test_tracer_attach_is_invisible(self):
        captured = {}

        def on_boot(system):
            captured["system"] = system

        runner = FaultExperimentRunner(on_boot=on_boot)
        trial = runner.run_trial(HW_DURING_PROCESS_CREATION, seed=5)
        plain = (trial.to_dict(),
                 captured["system"].sim.events_processed)
        audited_trial, _audit, events = _audited(
            HW_DURING_PROCESS_CREATION, 5)
        assert plain[0] == audited_trial
        assert plain[1] == events


class TestAuditRendering:
    def test_markdown_render(self):
        _trial, report, _events = _audited(HW_DURING_PROCESS_CREATION, 5)
        label = f"{HW_DURING_PROCESS_CREATION}-5"
        text = render_audit_markdown(merge_audits([report], [label]))
        assert "# Containment audit" in text
        assert "**contained**" in text
        assert label in text
        assert "fault:t0" in text

    def test_chrome_trace_shapes(self):
        _trial, report, _events = _audited(HW_DURING_PROCESS_CREATION, 5)
        label = f"{HW_DURING_PROCESS_CREATION}-5"
        merged = merge_audits([report], [label])
        trace = audit_to_chrome_trace(merged)
        events = trace["traceEvents"]
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert names == [f"{label} [contained]"]
        assert any(e["ph"] == "i" and e["cat"] == "taint"
                   for e in events)
        assert any(e["ph"] == "X" for e in events)
        # Single-report payloads work too (one implicit trial row).
        single = audit_to_chrome_trace(report)
        assert any(e["ph"] == "X" for e in single["traceEvents"])
        # Byte-stable for golden files.
        assert _dumps(trace) == _dumps(audit_to_chrome_trace(merged))
