"""Tests for the command-line driver."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pmake"])
        assert args.workload == "pmake"
        assert args.cells == 4
        assert not args.irix

    def test_inject_args(self):
        args = build_parser().parse_args(
            ["inject", "sw_cow_tree", "--trials", "2",
             "--agreement", "voting"])
        assert args.scenario == "sw_cow_tree"
        assert args.trials == 2
        assert args.agreement == "voting"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "pmake"])
        assert args.workload == "pmake"
        assert args.cells == 4
        assert args.seed == 1995

    def test_metrics_accepts_hive_config(self):
        args = build_parser().parse_args(
            ["metrics", "raytrace", "--cells", "2", "--seed", "3"])
        assert args.workload == "raytrace"
        assert args.cells == 2

    def test_metrics_format_flag(self):
        args = build_parser().parse_args(["metrics", "raytrace"])
        assert args.format == "table"
        args = build_parser().parse_args(
            ["metrics", "raytrace", "--format", "json"])
        assert args.format == "json"

    def test_bench_defaults_to_pr10_out(self):
        args = build_parser().parse_args(["bench"])
        assert args.out == "BENCH_pr10.json"
        assert not args.progress
        assert args.shards is None  # falls back to HIVE_SHARDS
        assert args.compare_shards == 0
        assert args.record is None
        assert args.replay is None
        assert not args.compare_replay
        assert args.sweep_faults == 0
        assert not args.shard_scaling
        assert not args.snapshot
        assert not args.compare_snapshot
        assert args.sessions == 0

    def test_sessions_subcommand_defaults(self):
        args = build_parser().parse_args(["sessions"])
        assert args.sessions == 1_000_000
        assert args.cells == 4 and args.nodes == 4
        assert args.inject_ms is None
        assert not args.snapshot
        assert not args.no_failover

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.scenario == "all"
        assert args.format == "markdown"
        assert args.bench_dir == "."
        assert not args.check
        args = build_parser().parse_args(
            ["report", "--scenario", "hw_random", "--check",
             "--format", "json", "--parallel", "4"])
        assert args.scenario == "hw_random"
        assert args.check
        assert args.parallel == 4

    def test_campaign_progress_flag(self):
        args = build_parser().parse_args(
            ["inject", "all", "--campaign", "--progress"])
        assert args.progress

    def test_telemetry_out_flag(self):
        args = build_parser().parse_args(
            ["run", "pmake", "--telemetry-out", "/tmp/t"])
        assert args.telemetry_out == "/tmp/t"
        args = build_parser().parse_args(
            ["inject", "sw_cow_tree", "--telemetry-out", "/tmp/t"])
        assert args.telemetry_out == "/tmp/t"


class TestCommands:
    def test_run_small_hive(self, capsys):
        rc = main(["run", "raytrace", "--cells", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "jobs completed      : 4" in out
        assert "invariant check     : clean" in out

    def test_run_irix_baseline(self, capsys):
        rc = main(["run", "ocean", "--irix", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "IRIX" in out

    def test_inject_contained(self, capsys):
        rc = main(["inject", "hw_process_creation", "--trials", "1",
                   "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "contained 1/1" in out

    def test_run_irix_rejects_telemetry(self, capsys):
        rc = main(["run", "ocean", "--irix", "--seed", "3",
                   "--telemetry-out", "/tmp/never-created"])
        assert rc == 2
        assert not os.path.exists("/tmp/never-created")

    def test_run_writes_telemetry(self, tmp_path, capsys):
        out_dir = str(tmp_path / "tel")
        rc = main(["run", "raytrace", "--cells", "2", "--seed", "3",
                   "--telemetry-out", out_dir])
        assert rc == 0
        assert "telemetry written" in capsys.readouterr().out
        # Every artifact exists and parses.
        with open(os.path.join(out_dir, "spans.jsonl")) as fh:
            lines = fh.read().splitlines()
        assert lines
        for line in lines[:200]:
            assert json.loads(line)["type"] in ("span", "event")
        with open(os.path.join(out_dir, "trace.json")) as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]
        with open(os.path.join(out_dir, "metrics.json")) as fh:
            metrics = json.load(fh)
        cell0 = metrics["cells"]["0"]
        for subsystem in ("firewall", "rpc", "sharing", "recovery"):
            assert subsystem in cell0
        with open(os.path.join(out_dir, "BENCH_pr2.json")) as fh:
            bench = json.load(fh)
        assert bench["workload"] == "raytrace"
        assert bench["spans"] > 0

    def test_trace_command(self, capsys):
        rc = main(["trace", "raytrace", "--cells", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "spans by name" in out
        assert "rpc.call" in out

    def test_metrics_command(self, capsys):
        rc = main(["metrics", "raytrace", "--cells", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cell 0" in out
        assert "rpc" in out

    def test_metrics_json_format_is_stable(self, capsys):
        rc = main(["metrics", "raytrace", "--cells", "2", "--seed", "3",
                   "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 0
        snap = json.loads(out)
        assert "0" in snap["cells"]
        # stable sorted key order for diffing
        assert out == json.dumps(snap, sort_keys=True, indent=2) + "\n"

    def test_report_command(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        for name, eps in (("BENCH_pr1.json", 100.0),
                          ("BENCH_pr2.json", 120.0)):
            (bench_dir / name).write_text(json.dumps(
                {"results": {"large": {"events_per_sec": eps}}}))
        out_md = str(tmp_path / "report.md")
        campaign = str(tmp_path / "campaign.json")
        rc = main(["report", "--scenario", "hw_process_creation",
                   "--trials", "1", "--parallel", "1", "--seed", "5",
                   "--bench-dir", str(bench_dir), "--check",
                   "--out", out_md, "--save-campaign", campaign])
        assert rc == 0
        with open(out_md) as fh:
            text = fh.read()
        assert "## Availability" in text
        assert "| recovery round |" in text
        assert "BENCH_pr2.json" in text
        # the saved payload round-trips through --from-json
        rc = main(["report", "--from-json", campaign, "--format", "json",
                   "--bench-dir", str(bench_dir)])
        out = capsys.readouterr().out
        report = json.loads(out)
        assert report["availability"]["recovery_latency_ns"]["p99"] >= 0
        assert report["regression"]["delta"] == pytest.approx(0.2)
        assert rc == 0
