"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pmake"])
        assert args.workload == "pmake"
        assert args.cells == 4
        assert not args.irix

    def test_inject_args(self):
        args = build_parser().parse_args(
            ["inject", "sw_cow_tree", "--trials", "2",
             "--agreement", "voting"])
        assert args.scenario == "sw_cow_tree"
        assert args.trials == 2
        assert args.agreement == "voting"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_small_hive(self, capsys):
        rc = main(["run", "raytrace", "--cells", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "jobs completed      : 4" in out
        assert "invariant check     : clean" in out

    def test_run_irix_baseline(self, capsys):
        rc = main(["run", "ocean", "--irix", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "IRIX" in out

    def test_inject_contained(self, capsys):
        rc = main(["inject", "hw_process_creation", "--trials", "1",
                   "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "contained 1/1" in out
