"""Unit tests for SIPS messaging, the disk model, and the interconnect."""

import pytest

from repro.hardware.disk import Disk, DiskRequest
from repro.hardware.errors import BusError, SipsQueueFull
from repro.hardware.interconnect import Interconnect
from repro.hardware.machine import Machine, MachineConfig
from repro.hardware.params import HardwareParams
from repro.hardware.sips import REPLY, REQUEST, SipsFabric
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@pytest.fixture
def fabric():
    sim = Simulator()
    params = HardwareParams(num_nodes=4)
    return sim, params, SipsFabric(sim, params, Interconnect(params))


class TestSips:
    def test_delivery_latency(self, fabric):
        sim, params, sips = fabric
        got = []
        sips.register_handler(1, lambda m: got.append((sim.now, m.payload)))
        sips.send(0, 1, {"x": 1}, 16)
        sim.run()
        assert got == [(params.sips_latency_ns(), {"x": 1})]

    def test_payload_cap_is_one_cache_line(self, fabric):
        _sim, params, sips = fabric
        with pytest.raises(ValueError):
            sips.send(0, 1, {}, params.sips_payload + 1)

    def test_flow_control_rejects_when_queue_full(self, fabric):
        sim, params, sips = fabric
        # No handler: delivered messages queue; fill to depth.
        for _ in range(params.sips_queue_depth):
            sips.send(0, 1, {}, 8)
        with pytest.raises(SipsQueueFull):
            sips.send(0, 1, {}, 8)
        assert sips.flow_control_rejections == 1

    def test_request_and_reply_queues_are_separate(self, fabric):
        """Separate queues make deadlock avoidance easy (Section 6)."""
        sim, params, sips = fabric
        for _ in range(params.sips_queue_depth):
            sips.send(0, 1, {}, 8, kind=REQUEST)
        sips.send(0, 1, {}, 8, kind=REPLY)  # must not raise

    def test_send_to_failed_node_bus_errors(self, fabric):
        _sim, _params, sips = fabric
        sips.fail_node(1)
        with pytest.raises(BusError):
            sips.send(0, 1, {}, 8)

    def test_send_from_failed_node_bus_errors(self, fabric):
        _sim, _params, sips = fabric
        sips.fail_node(0)
        with pytest.raises(BusError):
            sips.send(0, 1, {}, 8)

    def test_in_flight_message_lost_with_node(self, fabric):
        sim, _params, sips = fabric
        got = []
        sips.register_handler(1, lambda m: got.append(m))
        sips.send(0, 1, {}, 8)
        sips.fail_node(1)  # dies before delivery
        sim.run()
        assert got == []

    def test_bad_kind_rejected(self, fabric):
        _sim, _params, sips = fabric
        with pytest.raises(ValueError):
            sips.send(0, 1, {}, 8, kind="bogus")


class TestInterconnect:
    def test_hop_distance(self):
        ic = Interconnect(HardwareParams(num_nodes=4))
        assert ic.hops(0, 0) == 0
        assert ic.hops(0, 3) == 2  # 2x2 mesh diagonal

    def test_flat_latency_by_default(self):
        params = HardwareParams(num_nodes=4)
        ic = Interconnect(params)
        assert ic.miss_latency_ns(0, 3) == params.mem_latency_ns

    def test_hop_sensitive_mode(self):
        params = HardwareParams(num_nodes=4)
        ic = Interconnect(params, hop_sensitive=True)
        assert (ic.miss_latency_ns(0, 3)
                == params.mem_latency_ns + 2 * params.mesh_hop_ns)

    def test_connectivity_survives_node_failures(self):
        """The FLASH fault model rules out partitions."""
        ic = Interconnect(HardwareParams(num_nodes=4))
        assert ic.is_connected()
        ic.fail_node(1)
        assert ic.is_connected()
        ic.fail_node(2)
        assert ic.is_connected()

    def test_live_nodes(self):
        ic = Interconnect(HardwareParams(num_nodes=4))
        ic.fail_node(2)
        assert ic.live_nodes() == [0, 1, 3]
        ic.revive_node(2)
        assert ic.live_nodes() == [0, 1, 2, 3]


class TestDisk:
    def make_disk(self):
        sim = Simulator()
        return sim, Disk(sim, HardwareParams(), RandomStreams(1), node_id=0)

    def test_io_has_positive_latency(self):
        sim, disk = self.make_disk()
        p = sim.process(disk.read(100, 4096))
        sim.run()
        assert p.value > 1_000_000  # > 1 ms

    def test_larger_transfers_take_longer(self):
        sim, disk = self.make_disk()
        small = disk.transfer_ns(4096)
        large = disk.transfer_ns(64 * 4096)
        assert large > small

    def test_seek_monotonic_in_distance(self):
        _sim, disk = self.make_disk()
        assert disk.seek_ns(0, 0) == 0
        assert disk.seek_ns(0, 10) < disk.seek_ns(0, 1000)

    def test_single_arm_serializes_requests(self):
        sim, disk = self.make_disk()
        p1 = sim.process(disk.read(0, 4096))
        p2 = sim.process(disk.read(10_000, 4096))
        sim.run()
        # Second request waits for the first: total elapsed for p2
        # includes queueing.
        assert disk.requests == 2
        assert disk.service_time.count == 2

    def test_stats_track_bytes(self):
        sim, disk = self.make_disk()
        sim.process(disk.write(0, 8192))
        sim.run()
        assert disk.bytes_moved == 8192


class TestMachineFaults:
    def test_halt_node_fails_all_layers(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig())
        m.halt_node(2)
        assert m.nodes[2].halted
        assert m.memory.node_failed(2)
        with pytest.raises(BusError):
            m.sips.send(0, 2, {}, 8)
        assert 2 not in m.live_node_ids()

    def test_halt_reports_lost_dirty_frames(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig())
        m.coherence.write(2, 2 * m.params.memory_per_node)  # own memory
        lost = m.halt_node(2)
        assert lost == {2 * m.params.pages_per_node}

    def test_processor_only_halt_keeps_memory(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig())
        m.halt_processor_only(2)
        # Memory still serves reads (clock monitoring sees a stall, not
        # a bus error).
        m.memory.read_page(2 * m.params.pages_per_node)

    def test_memory_only_failure(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig())
        m.fail_memory_range(2)
        assert not m.nodes[2].halted
        with pytest.raises(BusError):
            m.memory.read_page(2 * m.params.pages_per_node)

    def test_revive_restores_everything(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig())
        m.halt_node(2)
        m.revive_node(2)
        assert not m.nodes[2].halted
        m.memory.read_page(2 * m.params.pages_per_node)
        assert 2 in m.live_node_ids()

    def test_diagnostics_pass_on_connected_mesh(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig())
        m.halt_node(3)
        assert m.run_diagnostics(3)


class TestFaultInjector:
    def test_phase_triggered_injection(self):
        from repro.hardware.faults import FaultInjector

        sim = Simulator()
        m = Machine(sim, MachineConfig())
        inj = FaultInjector(sim, m)
        inj.arm_phase("process_creation", FaultInjector.NODE_FAILURE, 1)
        assert inj.phase_hit("other_phase") is None
        rec = inj.phase_hit("process_creation")
        assert rec is not None and rec.node_id == 1
        assert m.nodes[1].halted
        # Armed once: second hit does nothing.
        assert inj.phase_hit("process_creation") is None

    def test_timed_injection(self):
        from repro.hardware.faults import FaultInjector

        sim = Simulator()
        m = Machine(sim, MachineConfig())
        inj = FaultInjector(sim, m)
        inj.inject_at(1_000, FaultInjector.NODE_FAILURE, 2)
        sim.run()
        assert m.nodes[2].halted
        assert inj.records[0].trigger == "timed"

    def test_observers_notified(self):
        from repro.hardware.faults import FaultInjector

        sim = Simulator()
        m = Machine(sim, MachineConfig())
        inj = FaultInjector(sim, m)
        seen = []
        inj.observers.append(seen.append)
        inj.inject(FaultInjector.PROCESSOR_HALT, 1)
        assert len(seen) == 1 and seen[0].kind == "processor_halt"
