"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_schedule_runs_callback_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, seen.append, "a")
        sim.run()
        assert seen == ["a"]
        assert sim.now == 100

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        seen = []
        for tag in "abcde":
            sim.schedule(50, seen.append, tag)
        sim.run()
        assert seen == list("abcde")

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until_stops_clock_at_deadline(self):
        sim = Simulator()
        sim.schedule(1000, lambda: None)
        sim.run(until=500)
        assert sim.now == 500

    def test_run_until_processes_events_at_deadline(self):
        sim = Simulator()
        seen = []
        sim.schedule(500, seen.append, 1)
        sim.run(until=500)
        assert seen == [1]

    def test_event_budget_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_until_event_stops_early(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(10, ev.succeed)
        # a perpetual background process
        ticks = []

        def ticker():
            while True:
                yield sim.timeout(5)
                ticks.append(sim.now)

        sim.process(ticker())
        assert sim.run_until_event(ev, deadline=1000)
        assert sim.now == 10
        assert len(ticks) <= 2

    def test_run_until_event_deadline_miss(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(2000, ev.succeed)
        assert not sim.run_until_event(ev, deadline=100)


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self):
        ev = Simulator().event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        ev = Simulator().event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_callback_after_trigger_still_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [1]

    def test_value_before_trigger_raises(self):
        ev = Simulator().event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_remove_callback(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        cb = lambda e: got.append(1)
        ev.add_callback(cb)
        ev.remove_callback(cb)
        ev.succeed()
        sim.run()
        assert got == []


class TestTimeout:
    def test_timeout_fires_after_delay(self):
        sim = Simulator()
        t = sim.timeout(250, value="done")
        sim.run()
        assert t.triggered and t.value == "done"
        assert sim.now == 250

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().timeout(-5)


class TestProcesses:
    def test_process_advances_time(self):
        sim = Simulator()

        def prog():
            yield sim.timeout(10)
            yield sim.timeout(20)
            return "finished"

        p = sim.process(prog())
        sim.run()
        assert p.value == "finished"
        assert sim.now == 30

    def test_processes_wait_on_each_other(self):
        sim = Simulator()

        def child():
            yield sim.timeout(100)
            return 7

        def parent():
            result = yield sim.process(child())
            return result * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 14

    def test_failed_event_raises_inside_process(self):
        sim = Simulator(crash_on_process_error=False)
        ev = sim.event()

        def prog():
            try:
                yield ev
            except ValueError:
                return "caught"
            return "not caught"

        p = sim.process(prog())
        sim.schedule(5, ev.fail, ValueError("boom"))
        sim.run()
        assert p.value == "caught"

    def test_uncaught_exception_fails_process(self):
        sim = Simulator(crash_on_process_error=False)

        def prog():
            yield sim.timeout(1)
            raise RuntimeError("bad")

        p = sim.process(prog())
        sim.run()
        assert p.triggered and not p.ok

    def test_uncaught_exception_crashes_run_when_configured(self):
        sim = Simulator(crash_on_process_error=True)

        def prog():
            yield sim.timeout(1)
            raise RuntimeError("bad")

        sim.process(prog())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_yield_non_event_fails_process(self):
        sim = Simulator(crash_on_process_error=False)

        def prog():
            yield 42

        p = sim.process(prog())
        sim.run()
        assert not p.ok

    def test_interrupt_waiting_process(self):
        sim = Simulator()

        def prog():
            try:
                yield sim.timeout(1000)
            except Interrupted as exc:
                return f"interrupted:{exc.cause}@{sim.now}"
            return "ran out"

        p = sim.process(prog())
        sim.schedule(10, p.interrupt, "why")
        sim.run()
        # Delivered promptly at t=10, not when the abandoned timeout fires.
        assert p.value == "interrupted:why@10"

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def prog():
            yield sim.timeout(1)

        p = sim.process(prog())
        sim.run()
        p.interrupt("late")  # must not raise
        sim.run()

    def test_is_alive(self):
        sim = Simulator()

        def prog():
            yield sim.timeout(5)

        p = sim.process(prog())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestCombinators:
    def test_any_of_returns_first(self):
        sim = Simulator()
        a, b = sim.timeout(100), sim.timeout(50)
        any_ev = sim.any_of([a, b])
        sim.run()
        assert any_ev.value is b

    def test_all_of_waits_for_all(self):
        sim = Simulator()
        events = [sim.timeout(t, value=t) for t in (30, 10, 20)]
        all_ev = sim.all_of(events)
        sim.run()
        assert all_ev.value == [30, 10, 20]
        assert sim.now == 30

    def test_all_of_empty_succeeds(self):
        sim = Simulator()
        all_ev = sim.all_of([])
        sim.run()
        assert all_ev.triggered

    def test_any_of_propagates_failure(self):
        sim = Simulator()
        bad = sim.event()
        any_ev = sim.any_of([sim.timeout(100), bad])
        sim.schedule(5, bad.fail, ValueError("x"))
        sim.run()
        assert any_ev.triggered and not any_ev.ok

    def test_any_of_requires_events(self):
        with pytest.raises(SimulationError):
            Simulator().any_of([])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                for _ in range(5):
                    yield sim.timeout(delay)
                    trace.append((sim.now, tag))

            for i in range(4):
                sim.process(worker(i, 7 + i))
            sim.run()
            return trace

        assert build() == build()


class TestCancellation:
    def test_cancel_revokes_scheduled_entry(self):
        sim = Simulator()
        seen = []
        entry = sim.schedule(100, seen.append, "x")
        assert sim.cancel(entry)
        sim.schedule(200, seen.append, "y")
        sim.run()
        assert seen == ["y"]

    def test_cancelled_entry_does_not_count_as_processed(self):
        sim = Simulator()
        entry = sim.schedule(100, lambda: None)
        sim.cancel(entry)
        sim.schedule(200, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_cancel_twice_returns_false(self):
        sim = Simulator()
        entry = sim.schedule(100, lambda: None)
        assert sim.cancel(entry)
        assert not sim.cancel(entry)

    def test_timeout_cancel_revokes_expiry(self):
        sim = Simulator()
        t = sim.timeout(500)
        assert t.cancel()
        sim.schedule(1000, lambda: None)
        sim.run()
        assert not t.triggered

    def test_timeout_cancel_refused_while_waited_on(self):
        sim = Simulator()
        t = sim.timeout(500)

        def waiter():
            yield t

        sim.process(waiter())
        sim.run(until=0)  # let the process reach its yield
        assert not t.cancel()
        sim.run()
        assert t.triggered

    def test_timeout_cancel_after_trigger_returns_false(self):
        sim = Simulator()
        t = sim.timeout(10)
        sim.run()
        assert t.triggered
        assert not t.cancel()

    def test_any_of_cancels_losing_timeout(self):
        """The RPC wait pattern: when the reply wins, the deadline
        timeout's queue entry must be revoked, not left to churn."""
        sim = Simulator()
        reply = sim.event("reply")
        deadline = sim.timeout(1_000_000)
        winner_box = []

        def waiter():
            winner = yield sim.any_of([reply, deadline])
            winner_box.append(winner)

        sim.process(waiter())
        sim.schedule(100, reply.succeed, "ok")
        sim.run()
        assert winner_box == [reply]
        assert not deadline.triggered
        assert deadline._entry is None or deadline._entry[2] is None

    def test_interrupt_cancels_abandoned_timeout(self):
        sim = Simulator()
        t = sim.timeout(1_000_000)

        def sleeper():
            try:
                yield t
            except Interrupted:
                return "interrupted"

        proc = sim.process(sleeper())
        sim.schedule(10, proc.interrupt, "wake")
        sim.run()
        assert proc.value == "interrupted"
        assert not t.triggered
        assert t._entry is None or t._entry[2] is None


def _dispatch_trace(wheel):
    """A mixed schedule exercising nowq, wheel slots, and heap tiers."""
    sim = Simulator(wheel=wheel)
    trace = []

    def note(tag):
        trace.append((sim.now, tag))

    # zero-delay, same-slot, cross-slot, and beyond-horizon entries
    delays = [0, 1, 100, 65_535, 65_536, 70_000, 1_000_000,
              300_000_000, 500_000_000]
    for i, d in enumerate(delays):
        sim.schedule(d, note, f"d{i}")
    # same-instant ties scheduled later must fire after earlier ones
    sim.schedule(100, note, "tie")

    def proc(tag, gap, n):
        for _ in range(n):
            yield sim.timeout(gap)
            note(tag)

    for i in range(3):
        sim.process(proc(f"p{i}", 40_000 + i * 13_000, 8))
    cancelled = sim.schedule(200_000, note, "never")
    sim.cancel(cancelled)
    sim.run()
    return trace, sim.events_processed, sim.now


class TestTimerWheel:
    def test_wheel_and_heap_dispatch_identically(self):
        assert _dispatch_trace(wheel=True) == _dispatch_trace(wheel=False)

    def test_far_future_timer_beyond_horizon_fires(self):
        sim = Simulator(wheel=True)
        seen = []
        # ~500 ms is far past the wheel horizon -> heap fallback.
        sim.schedule(500_000_000, seen.append, "far")
        sim.run()
        assert seen == ["far"] and sim.now == 500_000_000

    def test_run_until_fast_forwards_wheel_cursor(self):
        sim = Simulator(wheel=True)
        seen = []
        sim.schedule(10_000_000, seen.append, "late")
        sim.run(until=5_000_000)
        assert seen == [] and sim.now == 5_000_000
        sim.run()
        assert seen == ["late"] and sim.now == 10_000_000

    def test_wheel_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("HIVE_WHEEL", "0")
        assert not Simulator()._wheel_on
        monkeypatch.setenv("HIVE_WHEEL", "1")
        assert Simulator()._wheel_on

    def test_slot_boundary_entries_dispatch_in_order(self):
        """Entries landing exactly on a slot boundary (t multiple of the
        slot width) must neither fire early nor be skipped when the
        cursor reaches their slot."""
        from repro.sim.engine import _WHEEL_SHIFT

        width = 1 << _WHEEL_SHIFT

        def run(wheel):
            sim = Simulator(wheel=wheel)
            seen = []
            # exactly on the boundary, one before, one after — across
            # several consecutive slots
            for k in range(3, 8):
                sim.schedule(k * width - 1, seen.append, (k, "pre"))
                sim.schedule(k * width, seen.append, (k, "on"))
                sim.schedule(k * width + 1, seen.append, (k, "post"))
            sim.run()
            return seen, sim.now, sim.events_processed

        wheel_out = run(True)
        assert wheel_out == run(False)
        seen = wheel_out[0]
        assert seen == sorted(seen, key=lambda x: (x[0],
                              ("pre", "on", "post").index(x[1])))

    def test_cursor_wrap_at_wheel_slots(self):
        """Timers more than a full wheel revolution apart reuse the same
        physical slot; the wrap must not conflate the two epochs."""
        from repro.sim.engine import _WHEEL_SHIFT, _WHEEL_SLOTS

        width = 1 << _WHEEL_SHIFT
        horizon = _WHEEL_SLOTS * width

        def run(wheel):
            sim = Simulator(wheel=wheel)
            seen = []
            slot_t = 100 * width + 7
            # First epoch: inside the horizon -> lives on the wheel.
            sim.schedule(slot_t, seen.append, "epoch0")

            def reschedule(_):
                # Scheduled from t=slot_t: one full revolution later,
                # same slot index modulo _WHEEL_SLOTS.
                sim.schedule(horizon, seen.append, "epoch1")

            sim.schedule(slot_t, reschedule, None)
            # A sentinel between the epochs proves epoch1 did not fire
            # with epoch0's slot flush.
            sim.schedule(slot_t + horizon // 2, seen.append, "mid")
            sim.run()
            return seen, sim.now, sim.events_processed

        wheel_out = run(True)
        assert wheel_out == run(False)
        assert wheel_out[0] == ["epoch0", "mid", "epoch1"]

    def test_heap_compaction_at_exact_threshold(self):
        """Crossing ``_COMPACT_MIN_DEAD`` cancelled entries (while dead
        entries outnumber half the heap) compacts the queue in place —
        and the survivors still dispatch correctly."""
        from repro.sim.engine import _COMPACT_MIN_DEAD

        sim = Simulator(wheel=False)
        seen = []
        doomed = [sim.schedule(1_000_000 + i, seen.append, f"dead{i}")
                  for i in range(_COMPACT_MIN_DEAD + 1)]
        keep = [sim.schedule(2_000_000 + i, seen.append, f"keep{i}")
                for i in range(10)]
        # Cancel up to the threshold: entries are cleared in place but
        # stay in the heap (compaction requires dead > _COMPACT_MIN_DEAD
        # *and* dead majority).
        for entry in doomed[:_COMPACT_MIN_DEAD]:
            assert sim.cancel(entry)
        assert sim._dead == _COMPACT_MIN_DEAD
        assert len(sim._queue) == _COMPACT_MIN_DEAD + 1 + len(keep)
        # One more cancellation crosses the threshold -> compaction.
        assert sim.cancel(doomed[_COMPACT_MIN_DEAD])
        assert sim._dead == 0
        assert len(sim._queue) == len(keep)
        assert all(e[2] is not None for e in sim._queue)
        # Cancelling an already-cancelled entry is a no-op.
        assert not sim.cancel(doomed[0])
        sim.run()
        assert seen == [f"keep{i}" for i in range(10)]
        assert sim.events_processed == len(keep)

    def test_run_until_event_equivalent_across_modes(self):
        def run(wheel):
            sim = Simulator(wheel=wheel)
            done = sim.event("done")

            def ticker():
                for _ in range(50):
                    yield sim.timeout(30_000)

            def finisher():
                yield sim.timeout(400_000)
                done.succeed("yes")

            sim.process(ticker())
            sim.process(finisher())
            fired = sim.run_until_event(done,
                                        deadline=sim.now + 10_000_000)
            return fired, sim.now, sim.events_processed

        assert run(True) == run(False)
