"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_schedule_runs_callback_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, seen.append, "a")
        sim.run()
        assert seen == ["a"]
        assert sim.now == 100

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        seen = []
        for tag in "abcde":
            sim.schedule(50, seen.append, tag)
        sim.run()
        assert seen == list("abcde")

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until_stops_clock_at_deadline(self):
        sim = Simulator()
        sim.schedule(1000, lambda: None)
        sim.run(until=500)
        assert sim.now == 500

    def test_run_until_processes_events_at_deadline(self):
        sim = Simulator()
        seen = []
        sim.schedule(500, seen.append, 1)
        sim.run(until=500)
        assert seen == [1]

    def test_event_budget_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_until_event_stops_early(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(10, ev.succeed)
        # a perpetual background process
        ticks = []

        def ticker():
            while True:
                yield sim.timeout(5)
                ticks.append(sim.now)

        sim.process(ticker())
        assert sim.run_until_event(ev, deadline=1000)
        assert sim.now == 10
        assert len(ticks) <= 2

    def test_run_until_event_deadline_miss(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(2000, ev.succeed)
        assert not sim.run_until_event(ev, deadline=100)


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self):
        ev = Simulator().event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        ev = Simulator().event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_callback_after_trigger_still_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [1]

    def test_value_before_trigger_raises(self):
        ev = Simulator().event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_remove_callback(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        cb = lambda e: got.append(1)
        ev.add_callback(cb)
        ev.remove_callback(cb)
        ev.succeed()
        sim.run()
        assert got == []


class TestTimeout:
    def test_timeout_fires_after_delay(self):
        sim = Simulator()
        t = sim.timeout(250, value="done")
        sim.run()
        assert t.triggered and t.value == "done"
        assert sim.now == 250

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().timeout(-5)


class TestProcesses:
    def test_process_advances_time(self):
        sim = Simulator()

        def prog():
            yield sim.timeout(10)
            yield sim.timeout(20)
            return "finished"

        p = sim.process(prog())
        sim.run()
        assert p.value == "finished"
        assert sim.now == 30

    def test_processes_wait_on_each_other(self):
        sim = Simulator()

        def child():
            yield sim.timeout(100)
            return 7

        def parent():
            result = yield sim.process(child())
            return result * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 14

    def test_failed_event_raises_inside_process(self):
        sim = Simulator(crash_on_process_error=False)
        ev = sim.event()

        def prog():
            try:
                yield ev
            except ValueError:
                return "caught"
            return "not caught"

        p = sim.process(prog())
        sim.schedule(5, ev.fail, ValueError("boom"))
        sim.run()
        assert p.value == "caught"

    def test_uncaught_exception_fails_process(self):
        sim = Simulator(crash_on_process_error=False)

        def prog():
            yield sim.timeout(1)
            raise RuntimeError("bad")

        p = sim.process(prog())
        sim.run()
        assert p.triggered and not p.ok

    def test_uncaught_exception_crashes_run_when_configured(self):
        sim = Simulator(crash_on_process_error=True)

        def prog():
            yield sim.timeout(1)
            raise RuntimeError("bad")

        sim.process(prog())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_yield_non_event_fails_process(self):
        sim = Simulator(crash_on_process_error=False)

        def prog():
            yield 42

        p = sim.process(prog())
        sim.run()
        assert not p.ok

    def test_interrupt_waiting_process(self):
        sim = Simulator()

        def prog():
            try:
                yield sim.timeout(1000)
            except Interrupted as exc:
                return f"interrupted:{exc.cause}@{sim.now}"
            return "ran out"

        p = sim.process(prog())
        sim.schedule(10, p.interrupt, "why")
        sim.run()
        # Delivered promptly at t=10, not when the abandoned timeout fires.
        assert p.value == "interrupted:why@10"

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def prog():
            yield sim.timeout(1)

        p = sim.process(prog())
        sim.run()
        p.interrupt("late")  # must not raise
        sim.run()

    def test_is_alive(self):
        sim = Simulator()

        def prog():
            yield sim.timeout(5)

        p = sim.process(prog())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestCombinators:
    def test_any_of_returns_first(self):
        sim = Simulator()
        a, b = sim.timeout(100), sim.timeout(50)
        any_ev = sim.any_of([a, b])
        sim.run()
        assert any_ev.value is b

    def test_all_of_waits_for_all(self):
        sim = Simulator()
        events = [sim.timeout(t, value=t) for t in (30, 10, 20)]
        all_ev = sim.all_of(events)
        sim.run()
        assert all_ev.value == [30, 10, 20]
        assert sim.now == 30

    def test_all_of_empty_succeeds(self):
        sim = Simulator()
        all_ev = sim.all_of([])
        sim.run()
        assert all_ev.triggered

    def test_any_of_propagates_failure(self):
        sim = Simulator()
        bad = sim.event()
        any_ev = sim.any_of([sim.timeout(100), bad])
        sim.schedule(5, bad.fail, ValueError("x"))
        sim.run()
        assert any_ev.triggered and not any_ev.ok

    def test_any_of_requires_events(self):
        with pytest.raises(SimulationError):
            Simulator().any_of([])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                for _ in range(5):
                    yield sim.timeout(delay)
                    trace.append((sim.now, tag))

            for i in range(4):
                sim.process(worker(i, 7 + i))
            sim.run()
            return trace

        assert build() == build()
