"""Unit tests for the scheduler and address-space structures."""

import pytest

from repro.sim.engine import Simulator
from repro.unix.address_space import (
    ANON_REGION,
    FILE_REGION,
    AddressSpace,
    Pte,
    Region,
)
from repro.unix.costs import KernelCosts
from repro.unix.errors import BadAddressError
from repro.unix.sched import Scheduler


@pytest.fixture
def sched():
    return Scheduler(Simulator(), [0, 1], KernelCosts())


class TestScheduler:
    def test_grants_distinct_cpus(self, sched):
        a = sched.acquire()
        b = sched.acquire()
        assert {a.value, b.value} == {0, 1}
        assert sched.free_count == 0

    def test_waiter_fifo(self, sched):
        a, b = sched.acquire(), sched.acquire()
        c = sched.acquire()
        d = sched.acquire()
        assert not c.triggered
        sched.release(a.value)
        assert c.triggered and not d.triggered
        sched.release(b.value)
        assert d.triggered

    def test_release_foreign_cpu_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.release(99)

    def test_reservation_excludes_other_pids(self, sched):
        sched.reserve_cpus(pid=7, cpus={0, 1})
        assert sched.try_acquire(pid=9) is None
        assert sched.try_acquire(pid=7) is not None

    def test_release_reservation_wakes_waiters(self, sched):
        sched.reserve_cpus(pid=7, cpus={0, 1})
        waiting = sched.acquire(pid=9)
        assert not waiting.triggered
        sched.release_reservation(7)
        assert waiting.triggered

    def test_reserve_foreign_cpu_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.reserve_cpus(pid=7, cpus={5})

    def test_remove_cpu_on_node_failure(self, sched):
        sched.remove_cpu(0)
        assert sched.cpu_ids == [1]
        a = sched.try_acquire()
        assert a == 1

    def test_empty_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(Simulator(), [], KernelCosts())


class TestAddressSpace:
    def make(self):
        return AddressSpace(home_cell=0)

    def test_allocate_range_non_overlapping(self):
        a = self.make()
        r1 = a.add_region(Region(a.allocate_range(10), 10, ANON_REGION, True))
        r2 = a.add_region(Region(a.allocate_range(5), 5, ANON_REGION, True))
        assert r1.end_vpn <= r2.start_vpn or r2.end_vpn <= r1.start_vpn

    def test_overlap_rejected(self):
        a = self.make()
        a.add_region(Region(100, 10, ANON_REGION, True))
        with pytest.raises(ValueError):
            a.add_region(Region(105, 10, ANON_REGION, True))

    def test_region_for_lookup(self):
        a = self.make()
        region = a.add_region(Region(100, 10, FILE_REGION, False))
        assert a.region_for(104) is region
        with pytest.raises(BadAddressError):
            a.region_for(50)

    def test_zero_page_region_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, ANON_REGION, True)

    def test_pte_map_per_cell(self):
        a = self.make()
        a.map_page(0, 100, Pte(frame=1, writable=True, data_home=0))
        a.map_page(2, 100, Pte(frame=9, writable=True, data_home=2))
        assert a.lookup_pte(0, 100).frame == 1
        assert a.lookup_pte(2, 100).frame == 9
        assert a.mapped_count(0) == 1

    def test_remote_mappings_filter(self):
        a = self.make()
        a.map_page(0, 100, Pte(frame=1, writable=True, data_home=0))
        a.map_page(0, 101, Pte(frame=2, writable=True, data_home=3))
        remote = a.remote_mappings(0)
        assert [vpn for vpn, _ in remote] == [101]

    def test_unmap_all(self):
        a = self.make()
        a.map_page(0, 100, Pte(frame=1, writable=True))
        a.map_page(0, 101, Pte(frame=2, writable=True))
        dropped = a.unmap_all(0)
        assert len(dropped) == 2
        assert a.mapped_count(0) == 0

    def test_file_page_index(self):
        region = Region(100, 10, FILE_REGION, False)
        region.file_page_base = 5
        assert region.file_page_index(103) == 8
