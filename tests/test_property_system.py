"""System-level property tests: random fault/workload sequences must
preserve the fault-containment invariants, and the simulation must be
deterministic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hive import boot_hive
from repro.core.invariants import check_system
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE

from tests.helpers import run_program


def _boot(seed):
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(seed=seed))
    hive.namespace.mount("/srv", 1)
    return hive


def _light_load(hive, ncells=4):
    """Start a small cross-cell load: writers on each cell to /srv."""
    def writer(i):
        def prog(ctx):
            for j in range(6):
                fd = yield from ctx.open(f"/srv/f{i}_{j}", "w",
                                         create=True)
                yield from ctx.write(fd, b"w" * PAGE)
                yield from ctx.close(fd)
                yield from ctx.compute(30_000_000)
        return prog

    for c in range(ncells):
        cell = hive.registry.cell_object(c)
        if cell is not None and cell.alive:
            proc = cell.create_process(f"writer{c}")
            cell.start_thread(proc, writer(c))


class TestInvariantsUnderFaults:
    @given(victims=st.lists(st.sampled_from([1, 2, 3]), min_size=1,
                            max_size=2, unique=True),
           when_ms=st.integers(min_value=50, max_value=400),
           seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=12, deadline=None)
    def test_invariants_hold_after_any_failure_sequence(self, victims,
                                                        when_ms, seed):
        """Property: whatever subset of cells dies mid-load, after
        recovery the system satisfies every consistency invariant and
        the survivors keep working."""
        hive = _boot(seed)
        _light_load(hive)
        for i, victim in enumerate(victims):
            hive.injector.inject_at((when_ms + i * 137) * 1_000_000,
                                    FaultInjector.NODE_FAILURE, victim)
        hive.sim.run(until=hive.sim.now + 3_000_000_000)
        problems = check_system(hive)
        assert problems == []
        survivors = [c for c in range(4) if c not in victims]
        for c in survivors:
            assert hive.registry.is_live(c)
        # Survivors still do useful work (if the file server lives).
        if 1 not in victims:
            out = {}

            def check(ctx):
                fd = yield from ctx.open("/srv/post", "w", create=True)
                yield from ctx.write(fd, b"alive")
                yield from ctx.close(fd)
                out["ok"] = True

            run_program(hive, survivors[0], check,
                        deadline_ns=120_000_000_000)
            assert out.get("ok")

    def test_invariants_hold_on_healthy_system(self):
        hive = _boot(7)
        _light_load(hive)
        hive.sim.run(until=hive.sim.now + 1_000_000_000)
        assert check_system(hive) == []

    def test_invariants_hold_after_reintegration(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=3),
                         reintegrate=True)
        hive.namespace.mount("/srv", 1)
        _light_load(hive)
        hive.machine.halt_node(3)
        sim.run(until=sim.now + 5_000_000_000)
        assert hive.registry.is_live(3)
        assert check_system(hive) == []


class TestDeterminism:
    def _trace(self, seed):
        hive = _boot(seed)
        _light_load(hive)
        hive.injector.inject_at(200_000_000,
                                FaultInjector.NODE_FAILURE, 3)
        hive.sim.run(until=hive.sim.now + 2_000_000_000)
        record = hive.coordinator.records[0]
        return (record.last_entry_ns, record.discarded_pages,
                record.files_lost,
                tuple(sorted(hive.registry.live_cell_ids())),
                tuple(c.metrics.counter("faults").value
                      for c in hive.cells if c.alive))

    def test_identical_seeds_identical_outcomes(self):
        """SimOS-style deterministic replay: the same configuration must
        reproduce the same failure timeline exactly."""
        assert self._trace(11) == self._trace(11)

    def test_different_seeds_may_differ(self):
        # Not required to differ, but the RNG plumbing should make the
        # disk-rotation latencies (and hence timings) diverge.
        a, b = self._trace(11), self._trace(13)
        assert a == a and b == b  # both well-formed


class TestRpcInputFuzz:
    """Every RPC handler sanity-checks its arguments: garbage must come
    back as an errno, never crash the serving cell (Section 3.1's
    bad-message defense)."""

    OPS = ["export_page", "release_page", "export_anon_page", "cow_deref",
           "open_file", "unlink_file", "bulk_pages", "file_extend",
           "borrow_frames", "return_frame", "firewall_update",
           "post_signal", "signal_pgroup", "spawn_program", "kill_task",
           "child_exited"]

    @given(op=st.sampled_from(OPS),
           args=st.dictionaries(
               st.sampled_from(["path", "mode", "create", "frame",
                                "logical_id", "writable", "client",
                                "cow_node", "page_index", "addr", "count",
                                "grantee", "grant", "fs_id", "ino",
                                "pages", "offset", "nbytes", "generation",
                                "pid", "sig", "pgid", "task_id", "name",
                                "program", "layout", "write_range",
                                "status"]),
               st.one_of(st.none(), st.integers(-10, 10**9), st.text(max_size=8),
                         st.booleans(), st.lists(st.integers(-5, 99),
                                                 max_size=4))))
    @settings(max_examples=60, deadline=None)
    def test_garbage_rpc_never_kills_the_server(self, op, args):
        from repro.core.rpc import RpcRemoteError
        from repro.unix.errors import RpcTimeout

        sim = Simulator()
        hive = boot_hive(sim, num_cells=2, machine_config=MachineConfig())
        client, server = hive.cell(0), hive.cell(1)

        def attack():
            try:
                yield from client.rpc.call(1, op, args,
                                           timeout_ns=50_000_000)
            except (RpcRemoteError, RpcTimeout):
                pass
            return True

        proc = sim.process(attack())
        sim.run_until_event(proc, deadline=sim.now + 10_000_000_000)
        assert proc.ok
        assert server.alive, f"{op} with {args!r} killed the server"
        assert client.alive
