"""Unit and property tests for the file system and COW trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.disk import Disk
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.unix.cow import COW_NODE_TAG, CowManager
from repro.unix.errors import FileError
from repro.unix.fs import PAGE, DiskFileSystem
from repro.unix.kheap import KernelHeap


@pytest.fixture
def fs():
    sim = Simulator()
    disk = Disk(sim, HardwareParams(), RandomStreams(1), node_id=0)
    return sim, DiskFileSystem(sim, fs_id=0, disk=disk, home_cell=0)


class TestNamespace:
    def test_create_and_lookup(self, fs):
        _sim, f = fs
        inode = f.create("/a/b/c.txt")
        assert f.lookup("/a/b/c.txt") is inode
        assert f.lookup("/a/b").is_dir  # implicit parents

    def test_absolute_paths_required(self, fs):
        _sim, f = fs
        with pytest.raises(FileError):
            f.lookup("relative")

    def test_normalization(self, fs):
        _sim, f = fs
        f.create("/x/y")
        assert f.lookup("//x//y/") .path == "/x/y"

    def test_duplicate_create_rejected(self, fs):
        _sim, f = fs
        f.create("/a")
        with pytest.raises(FileError):
            f.create("/a")

    def test_missing_lookup_enoent(self, fs):
        _sim, f = fs
        with pytest.raises(FileError) as err:
            f.lookup("/nope")
        assert err.value.errno == "ENOENT"

    def test_file_as_directory_rejected(self, fs):
        _sim, f = fs
        f.create("/plain")
        with pytest.raises(FileError):
            f.create("/plain/child")

    def test_unlink_removes(self, fs):
        _sim, f = fs
        f.create("/t")
        f.unlink("/t")
        assert not f.exists("/t")

    def test_unlink_nonempty_dir_rejected(self, fs):
        _sim, f = fs
        f.create("/d/child")
        with pytest.raises(FileError):
            f.unlink("/d")

    def test_listdir(self, fs):
        _sim, f = fs
        f.create("/d/a")
        f.create("/d/b")
        f.create("/d/sub/c")
        assert f.listdir("/d") == ["/d/a", "/d/b", "/d/sub"]


class TestBlockIO:
    def test_write_then_read_roundtrip(self, fs):
        sim, f = fs
        inode = f.create("/data")
        payload = b"\xab" * PAGE

        def prog():
            yield from f.write_page_to_disk(inode, 0, payload)
            data = yield from f.read_page_from_disk(inode, 0)
            return data

        p = sim.process(prog())
        sim.run()
        assert p.value == payload
        assert f.disk_reads == 1 and f.disk_writes == 1

    def test_unwritten_page_reads_zero(self, fs):
        sim, f = fs
        inode = f.create("/data")

        def prog():
            return (yield from f.read_page_from_disk(inode, 3))

        p = sim.process(prog())
        sim.run()
        assert p.value == b"\x00" * PAGE

    def test_io_takes_disk_time(self, fs):
        sim, f = fs
        inode = f.create("/data")
        p = sim.process(f.read_page_from_disk(inode, 0))
        sim.run()
        assert sim.now > 1_000_000

    def test_unlink_releases_blocks(self, fs):
        sim, f = fs
        inode = f.create("/data")
        sim.process(f.write_page_to_disk(inode, 0, b"\x01" * PAGE))
        sim.run()
        assert f._platter
        f.unlink("/data")
        assert not f._platter

    def test_generation_bump(self, fs):
        _sim, f = fs
        inode = f.create("/g")
        assert inode.generation == 0
        assert f.bump_generation(inode) == 1
        assert inode.generation == 1

    def test_peek_disk_page(self, fs):
        sim, f = fs
        inode = f.create("/p")
        sim.process(f.write_page_to_disk(inode, 1, b"\x02" * PAGE))
        sim.run()
        assert f.peek_disk_page(inode, 1) == b"\x02" * PAGE
        assert f.peek_disk_page(inode, 9) == b"\x00" * PAGE


class TestCowTrees:
    def make(self):
        heap = KernelHeap(0, 0x100000, 0x40000)
        return heap, CowManager(0, heap)

    def test_root_allocation(self):
        heap, cm = self.make()
        root = cm.new_root()
        assert root.refs == 1
        assert heap.resolve(root.kaddr)[0] == COW_NODE_TAG

    def test_fork_split_structure(self):
        _heap, cm = self.make()
        root = cm.new_root()
        cm.record_page(root, 5)
        parent_leaf, child_leaf = cm.split_leaf(root)
        assert parent_leaf.parent_addr == root.kaddr
        assert child_leaf.parent_addr == root.kaddr
        assert root.refs == 2  # two children (process ref moved away)

    def test_lookup_walks_to_ancestor(self):
        _heap, cm = self.make()
        root = cm.new_root()
        cm.record_page(root, 5)
        _pl, child_leaf = cm.split_leaf(root)
        chain = list(cm.local_ancestry(child_leaf))
        assert chain == [child_leaf, root]
        assert 5 in chain[1].pages

    def test_post_fork_writes_are_private(self):
        _heap, cm = self.make()
        root = cm.new_root()
        parent_leaf, child_leaf = cm.split_leaf(root)
        cm.record_page(parent_leaf, 9)
        # The child's search must not see the parent's post-fork page.
        seen = set()
        for node in cm.local_ancestry(child_leaf):
            seen |= node.pages
        assert 9 not in seen

    def test_corrupt_pointer_detected_in_local_walk(self):
        _heap, cm = self.make()
        root = cm.new_root()
        _pl, child = cm.split_leaf(root)
        child.parent_addr = child.parent_addr + 8  # one word off
        with pytest.raises(LookupError):
            list(cm.local_ancestry(child))

    def test_self_pointer_loop_detected(self):
        _heap, cm = self.make()
        root = cm.new_root()
        _pl, child = cm.split_leaf(root)
        child.parent_addr = child.kaddr
        with pytest.raises(LookupError):
            list(cm.local_ancestry(child))

    def test_deref_frees_chain_and_reports_pages(self):
        heap, cm = self.make()
        root = cm.new_root()
        cm.record_page(root, 1)
        parent_leaf, child_leaf = cm.split_leaf(root)
        freed_child = cm.deref(child_leaf)
        assert freed_child == []  # root still referenced by parent_leaf
        freed_parent = cm.deref(parent_leaf)
        assert (root.anon_tag(), 1) in freed_parent
        assert cm.live_nodes == 0

    def test_remote_parent_deref_reported(self):
        _heap, cm = self.make()
        leaf = cm.adopt_remote_child(parent_addr=0xDEAD00, parent_cell=2)
        freed = cm.deref(leaf)
        assert ("remote-parent", 2, 0xDEAD00) in freed

    @given(forks=st.lists(st.integers(0, 3), max_size=8),
           writes=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 20)),
                           max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_cow_semantics_match_reference_model(self, forks, writes):
        """Property: the tree gives fork-time snapshot semantics.

        A reference model tracks, for each process, the pages it should
        see (its own writes + pages visible at each fork).  The tree
        lookup must agree for every process and page.
        """
        _heap, cm = self.make()
        leaves = [cm.new_root()]
        visible = [{}]  # per process: page -> writer id

        for f in forks:
            src = f % len(leaves)
            pl, cl = cm.split_leaf(leaves[src])
            leaves[src] = pl
            leaves.append(cl)
            visible.append(dict(visible[src]))
        for proc_i, page in writes:
            proc = proc_i % len(leaves)
            cm.record_page(leaves[proc], page)
            visible[proc][page] = proc

        for proc, leaf in enumerate(leaves):
            for page in range(21):
                found = None
                for node in cm.local_ancestry(leaf):
                    if page in node.pages:
                        found = node
                        break
                assert (found is not None) == (page in visible[proc])
