"""Tests for the flight recorder: spans, wiring, exporters, determinism."""

import json

import pytest

from repro.bench.faultexp import HW_RANDOM_TIME, FaultExperimentRunner
from repro.core.hive import boot_hive
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.obs import (
    NULL_RECORDER,
    FlightRecorder,
    attach_flight_recorder,
    render_fault_timeline,
    snapshot_system,
    to_chrome_trace,
    to_jsonl,
)


def boot_small(seed=3, num_cells=2):
    sim = __import__("repro.sim.engine", fromlist=["Simulator"]).Simulator()
    params = HardwareParams(num_nodes=max(num_cells, 2))
    return boot_hive(sim, num_cells=num_cells,
                     machine_config=MachineConfig(params=params, seed=seed))


class TestRecorderCore:
    def test_null_recorder_is_inert(self):
        span = NULL_RECORDER.begin("x", "rpc")
        assert span.span_id == 0
        NULL_RECORDER.end(span, outcome="ok")
        NULL_RECORDER.event("y", "rpc")
        assert not NULL_RECORDER.enabled

    def test_span_ring_keeps_newest(self):
        hive = boot_small()
        rec = FlightRecorder(hive.sim, span_capacity=2, event_capacity=2)
        for i in range(5):
            rec.end(rec.begin(f"s{i}", "rpc"))
            rec.event(f"e{i}", "rpc")
        assert [s.name for s in rec.spans] == ["s3", "s4"]
        assert rec.spans_dropped == 3
        assert [e.name for e in rec.events] == ["e3", "e4"]
        assert rec.events_dropped == 3

    def test_end_is_idempotent(self):
        hive = boot_small()
        rec = FlightRecorder(hive.sim)
        span = rec.begin("s", "rpc")
        rec.end(span, outcome="ok")
        first_end = span.end_ns
        rec.end(span, extra=1)
        assert span.end_ns == first_end
        assert span.attrs == {"outcome": "ok", "extra": 1}


class TestRpcSpans:
    def test_call_and_server_spans_linked_across_cells(self):
        hive = boot_small(seed=3)
        rec = attach_flight_recorder(hive)
        cell = hive.cell(0)
        sim = hive.sim

        def bench():
            yield from cell.rpc.call(1, "ping", {})
            yield from cell.rpc.call(1, "ping_queued", {})

        proc = sim.process(bench(), name="rpcbench")
        sim.run_until_event(proc, deadline=sim.now + 5_000_000_000)

        calls = rec.spans_named("rpc.call")
        assert len(calls) == 2
        assert all(s.attrs["outcome"] == "ok" for s in calls)
        assert all(s.cell == 0 and s.end_ns is not None for s in calls)
        # The server-side span carries the client span as parent — the
        # cross-cell link rides in the RPC payload.
        int_serves = [s for s in rec.spans_named("rpc.serve_int")
                      if s.parent_id == calls[0].span_id]
        assert len(int_serves) == 1
        serve = int_serves[0]
        assert serve.cell == 1
        assert calls[0].start_ns <= serve.start_ns <= calls[0].end_ns
        # The queued call produces a queued server span under the same id.
        queued = [s for s in rec.spans_named("rpc.serve_queued")
                  if s.parent_id == calls[1].span_id]
        assert len(queued) == 1
        assert queued[0].attrs["outcome"] == "ok"

    def test_latency_histogram_populated(self):
        hive = boot_small(seed=3)
        attach_flight_recorder(hive)
        cell = hive.cell(0)
        sim = hive.sim

        def bench():
            for _ in range(8):
                yield from cell.rpc.call(1, "ping", {})

        proc = sim.process(bench(), name="rpcbench")
        sim.run_until_event(proc, deadline=sim.now + 5_000_000_000)
        snap = cell.rpc.metrics.snapshot()
        assert snap["latency_ns.n"] == 8
        assert snap["latency_ns.p50"] > 0


class TestRecoverySpans:
    def _run_failure(self, seed=9, reintegrate=False):
        sim = __import__("repro.sim.engine",
                         fromlist=["Simulator"]).Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=seed),
                         reintegrate=reintegrate)
        rec = attach_flight_recorder(hive)
        hive.injector.inject_at(50_000_000, FaultInjector.NODE_FAILURE, 3)
        sim.run(until=sim.now + 2_000_000_000)
        return hive, rec

    def test_round_and_phase_spans(self):
        hive, rec = self._run_failure()
        rounds = [s for s in rec.spans_named("recovery.round")
                  if s.attrs.get("outcome") == "recovered"]
        assert rounds
        rspan = rounds[0]
        assert rspan.attrs["dead"] == [3]
        children = rec.children_of(rspan.span_id)
        names = {s.name for s in children}
        assert "recovery.agreement" in names
        assert "recovery.cell" in names
        # One recovery.cell span per survivor; each has the four phases.
        cell_spans = [s for s in children if s.name == "recovery.cell"]
        assert len(cell_spans) == 3
        for cs in cell_spans:
            phases = {p.name for p in rec.children_of(cs.span_id)}
            assert phases == {"recovery.flush", "recovery.barrier1",
                              "recovery.cleanup", "recovery.barrier2"}
        assert rec.events_named("recovery.done")
        assert rec.events_named("fault.inject")
        assert rec.events_named("detect.hint")

    def test_timeline_reports_phases(self):
        _hive, rec = self._run_failure()
        text = render_fault_timeline(rec)
        assert "recovery round" in text
        assert "inject" in text
        assert "first hint" in text
        assert "detection latency" in text
        assert "recovery done" in text

    def test_reintegrated_cell_is_wired(self):
        hive, rec = self._run_failure(reintegrate=True)
        # Let the master phase finish diagnostics + reboot.
        hive.sim.run(until=hive.sim.now + 60_000_000_000)
        # The master phase rebooted cell 3 — a brand-new Cell object
        # registered after attach; the registry observer must wire it.
        cell3 = hive.registry.cell_object(3)
        assert cell3 is not None and cell3.alive
        assert cell3.incarnation == 1
        assert cell3.obs is rec
        assert cell3.detector.observers
        assert cell3.panic_hooks


class TestFaultExperimentTelemetry:
    def test_timeline_matches_trial_latency(self):
        holder = {}

        def on_boot(system):
            holder["rec"] = attach_flight_recorder(system)

        runner = FaultExperimentRunner(on_boot=on_boot)
        trial = runner.run_trial(HW_RANDOM_TIME, seed=5)
        rec = holder["rec"]
        assert trial.detected
        inject = rec.events_named("fault.inject")[0]
        assert inject.time_ns == trial.injected_at_ns
        rounds = [s for s in rec.spans_named("recovery.round")
                  if 3 in s.attrs.get("dead", [])]
        assert rounds
        cell_entries = [s.start_ns
                        for s in rec.spans_named("recovery.cell")
                        if s.attrs.get("round") == rounds[0].attrs["round"]]
        measured = max(cell_entries) - inject.time_ns
        assert measured == trial.last_entry_latency_ns


class TestExportDeterminism:
    def _telemetry(self, seed):
        hive = boot_small(seed=seed)
        rec = attach_flight_recorder(hive)
        cell = hive.cell(0)
        sim = hive.sim

        def bench():
            for _ in range(16):
                yield from cell.rpc.call(1, "ping", {})

        proc = sim.process(bench(), name="rpcbench")
        sim.run_until_event(proc, deadline=sim.now + 5_000_000_000)
        return hive, rec

    def test_jsonl_byte_identical_across_same_seed_runs(self):
        hive1, rec1 = self._telemetry(seed=7)
        hive2, rec2 = self._telemetry(seed=7)
        j1, j2 = to_jsonl(rec1), to_jsonl(rec2)
        assert j1 == j2
        assert j1  # non-empty
        snap1 = json.dumps(snapshot_system(hive1), sort_keys=True)
        snap2 = json.dumps(snapshot_system(hive2), sort_keys=True)
        assert snap1 == snap2

    def test_jsonl_lines_parse_and_are_ordered(self):
        _hive, rec = self._telemetry(seed=7)
        times = []
        for line in to_jsonl(rec).splitlines():
            obj = json.loads(line)
            assert obj["type"] in ("span", "event")
            times.append(obj.get("start_ns", obj.get("time_ns")))
        assert times == sorted(times)

    def test_chrome_trace_shape(self):
        hive, rec = self._telemetry(seed=7)
        trace = to_chrome_trace(rec, hive)
        assert trace["displayTimeUnit"] == "ms"
        phs = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phs and "M" in phs
        for ev in trace["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
