"""Online invariant watchdog: oracle accuracy, gating, zero-cost-off.

The watchdog's contract has three parts: (1) when containment state is
corrupted mid-run it reports the violation with the correct
first-violation timestamp and cell id (the oracle test — corruption is
planted deliberately, detection must not rely on the end-of-run sweep);
(2) it only exists when ``HIVE_WATCHDOG=1``; (3) with the variable
unset the simulation is counter-identical to a run without the module.
"""

from repro.bench.faultexp import (
    HW_DURING_PROCESS_CREATION,
    FaultExperimentRunner,
)
from repro.obs import attach_provenance, maybe_attach_watchdog
from repro.obs.watchdog import (
    DEFAULT_PERIOD_NS,
    InvariantWatchdog,
    attach_watchdog,
    watchdog_enabled,
)

PERIOD_NS = 10_000_000  # 10 simulated ms


def _corrupt_firewall_state(system, cell_id: int, grantee: int):
    """Plant a pfdat/firewall disagreement on a healthy cell.

    Allocates a local frame and records ``grantee`` as write-enabled in
    the pfdat without touching the hardware firewall — exactly the
    inconsistency ``_check_firewall_agreement`` exists to catch.
    """
    cell = system.cell(cell_id)
    pf = cell.pfdats.alloc_frame()
    pf.export_writable.add(grantee)
    return pf


class TestWatchdogOracle:
    def test_reports_corruption_with_time_and_cell(self, hive4, sim):
        sim.run(until=20_000_000)
        t0 = sim.now
        _corrupt_firewall_state(hive4, cell_id=1, grantee=2)
        wd = attach_watchdog(hive4, period_ns=PERIOD_NS)
        sim.run(until=t0 + 3 * PERIOD_NS + 1)

        assert wd.first_violation is not None, "corruption not detected"
        first = wd.first_violation
        # Detected at the first tick after the corruption, on the right
        # cell, with the firewall-agreement check named.
        assert first["time_ns"] == t0 + PERIOD_NS
        assert first["cell"] == 1
        assert any("firewall disagrees" in p for p in first["problems"])
        # No fault was injected, so no taint to attribute.
        assert first["taint"] is None
        # Every subsequent scan re-reports the (persistent) corruption.
        assert len(wd.violations) >= 2
        report = wd.report()
        assert report["first_violation"] == first
        assert report["checks_run"] >= 3

    def test_violation_carries_active_taint(self, hive4, sim):
        sim.run(until=20_000_000)
        tracer = attach_provenance(hive4)
        tracer.fault_injected(3, kind="corrupt", site="test")
        t0 = sim.now
        _corrupt_firewall_state(hive4, cell_id=1, grantee=2)
        wd = attach_watchdog(hive4, period_ns=PERIOD_NS)
        sim.run(until=t0 + PERIOD_NS + 1)

        assert wd.first_violation is not None
        assert wd.first_violation["taint"] == "t0"

    def test_clean_system_stays_silent(self, hive4, sim):
        wd = attach_watchdog(hive4, period_ns=PERIOD_NS)
        sim.run(until=5 * PERIOD_NS)
        assert wd.first_violation is None
        assert wd.violations == []
        assert wd.report()["checks_run"] >= 1

    def test_violation_cap_bounds_memory(self, hive4, sim):
        from repro.obs.watchdog import MAX_VIOLATIONS

        wd = InvariantWatchdog(hive4, period_ns=PERIOD_NS)
        wd.violations = [{"n": i} for i in range(MAX_VIOLATIONS)]
        wd._record(0, ["synthetic"])
        assert len(wd.violations) == MAX_VIOLATIONS
        assert wd.violations_dropped == 1


class TestWatchdogGating:
    def test_off_by_default(self, hive4):
        assert not watchdog_enabled(env={})
        assert maybe_attach_watchdog(hive4, env={}) is None
        assert maybe_attach_watchdog(hive4,
                                     env={"HIVE_WATCHDOG": "0"}) is None
        assert getattr(hive4, "watchdog", None) is None

    def test_on_when_requested(self, hive4, sim):
        env = {"HIVE_WATCHDOG": "1",
               "HIVE_WATCHDOG_PERIOD_NS": str(PERIOD_NS)}
        wd = maybe_attach_watchdog(hive4, env=env)
        assert wd is not None
        assert hive4.watchdog is wd
        assert wd.period_ns == PERIOD_NS
        sim.run(until=PERIOD_NS + 1)
        assert wd.ticks >= 1

    def test_default_period(self, hive4):
        wd = maybe_attach_watchdog(hive4, env={"HIVE_WATCHDOG": "1"})
        assert wd.period_ns == DEFAULT_PERIOD_NS
        wd.stop()


class TestWatchdogOffEquivalence:
    """HIVE_WATCHDOG unset must be invisible: same trial outcome, same
    event count as a run where the module is never touched."""

    def test_counter_identical_when_off(self):
        def run(with_obs):
            captured = {}

            def on_boot(system):
                captured["system"] = system
                if with_obs:
                    attach_provenance(system)
                    assert maybe_attach_watchdog(system, env={}) is None

            runner = FaultExperimentRunner(on_boot=on_boot)
            trial = runner.run_trial(HW_DURING_PROCESS_CREATION, seed=7)
            system = captured["system"]
            return trial.to_dict(), system.sim.events_processed

        plain = run(with_obs=False)
        gated = run(with_obs=True)
        assert plain[0] == gated[0]
        assert plain[1] == gated[1]
