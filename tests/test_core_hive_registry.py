"""Unit tests for the cell registry, boot partitioning, and agreement
edge cases."""

import pytest

from repro.core.agreement import VotingAgreement
from repro.core.hive import boot_hive, _partition_nodes
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.kheap import KOBJ_ALIGN


class TestPartitioning:
    def test_even_partition(self):
        assert _partition_nodes(4, 2) == {0: [0, 1], 1: [2, 3]}

    def test_uneven_partition_rejected(self):
        with pytest.raises(ValueError):
            _partition_nodes(4, 3)

    def test_boot_rejects_bad_cell_count(self):
        with pytest.raises(ValueError):
            boot_hive(Simulator(), num_cells=3)


class TestRegistry:
    def make(self, ncells=4):
        return boot_hive(Simulator(), num_cells=ncells).registry

    def test_node_cell_mapping(self):
        reg = self.make(2)
        assert reg.cell_of_node(0) == 0
        assert reg.cell_of_node(3) == 1
        assert reg.nodes_of(1) == [2, 3]
        assert reg.first_node_of(1) == 2

    def test_pid_routing(self):
        reg = self.make()
        assert reg.cell_of_pid(2_00010) == 2
        assert reg.cell_of_pid(99_00000) is None

    def test_heap_ranges_disjoint_and_aligned(self):
        reg = self.make()
        ranges = [reg.heap_range_of(c) for c in reg.all_cell_ids()]
        for lo, hi in ranges:
            assert lo % KOBJ_ALIGN == 0
            assert lo < hi
        for i, (lo1, hi1) in enumerate(ranges):
            for lo2, hi2 in ranges[i + 1:]:
                assert hi1 <= lo2 or hi2 <= lo1

    def test_heap_range_unknown_cell(self):
        assert self.make().heap_range_of(99) is None

    def test_mark_dead_updates_liveness_and_tasks(self):
        hive = boot_hive(Simulator(), num_cells=4)
        reg = hive.registry
        task = reg.new_task()
        task.components[123] = 2
        reg.mark_dead(2, "test")
        assert not reg.is_live(2)
        assert task.dead
        assert 2 not in reg.live_cell_ids()

    def test_resolve_kernel_address_routes_to_cell_heap(self):
        hive = boot_hive(Simulator(), num_cells=2)
        cell = hive.cell(1)
        node = cell.cow.new_root()
        assert hive.registry.resolve_kernel_address(1, node.kaddr)[1] is node
        assert hive.registry.resolve_kernel_address(0, node.kaddr) is None


class TestAgreementEdgeCases:
    def test_cascaded_failure_grows_suspect_set(self):
        """A cell that dies *during* the round becomes a suspect too
        (the slow-voter restart of the membership algorithm)."""
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=2))
        hive.machine.halt_node(3)
        # Cell 2's processors halt too, but nobody has suspected it yet:
        # its missing vote must grow the suspect set.
        hive.machine.halt_processor_only(2)

        def prog():
            return (yield from VotingAgreement(hive.registry).run(0, {3}))

        proc = sim.process(prog())
        sim.run_until_event(proc, deadline=sim.now + 60_000_000_000)
        assert proc.value.confirmed_dead >= {3, 2}
        assert proc.value.rounds >= 2

    def test_simultaneous_failures_one_round(self):
        """Hints arriving during an active round queue up and are
        resolved (the CC-NOW demo's dead={9,14} behaviour)."""
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=4))
        hive.machine.halt_node(2)
        hive.machine.halt_node(3)
        sim.run(until=sim.now + 2_000_000_000)
        dead = set()
        for record in hive.coordinator.records:
            dead |= record.dead_cells
        assert dead == {2, 3}
        assert hive.registry.live_cell_ids() == [0, 1]

    def test_last_two_cells(self):
        """With two cells, losing one leaves a 1-cell system that keeps
        running (no quorum pathology)."""
        sim = Simulator()
        hive = boot_hive(sim, num_cells=2,
                         machine_config=MachineConfig(
                             params=HardwareParams(num_nodes=2), seed=6))
        hive.machine.halt_node(1)
        sim.run(until=sim.now + 2_000_000_000)
        assert hive.registry.live_cell_ids() == [0]
        assert hive.cell(0).alive
        # The survivor stops monitoring anyone (ring of one).
        assert hive.cell(0).detector.monitored_cell is None
