"""Unit tests for random streams and measurement primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RandomStreams
from repro.sim.stats import Counter, Histogram, MetricSet, Sampler, Timer


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = [RandomStreams(7).random("x") for _ in range(1)]
        b = [RandomStreams(7).random("x") for _ in range(1)]
        assert a == b

    def test_streams_are_independent_of_access_order(self):
        r1 = RandomStreams(7)
        first_then_second = (r1.random("a"), r1.random("b"))
        r2 = RandomStreams(7)
        second_then_first = (r2.random("b"), r2.random("a"))
        assert first_then_second[0] == second_then_first[1]
        assert first_then_second[1] == second_then_first[0]

    def test_different_names_differ(self):
        r = RandomStreams(7)
        assert r.random("a") != r.random("b")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_any_seed_name_pair_is_stable(self, seed, name):
        assert (RandomStreams(seed).random(name)
                == RandomStreams(seed).random(name))

    def test_randint_bounds(self):
        r = RandomStreams(3)
        for _ in range(100):
            assert 5 <= r.randint("k", 5, 9) <= 9


class TestCounter:
    def test_add_and_reset(self):
        c = Counter("c")
        c.add()
        c.add(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0


class TestTimer:
    def test_aggregates(self):
        t = Timer("t")
        for v in (10, 20, 30):
            t.record(v)
        assert t.count == 3
        assert t.total == 60
        assert t.mean == 20
        assert t.min == 10 and t.max == 30

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timer("t").record(-1)

    def test_empty_mean_is_zero(self):
        assert Timer("t").mean == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_mean_between_min_and_max(self, values):
        t = Timer("t")
        for v in values:
            t.record(v)
        assert t.min <= t.mean <= t.max


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", [10, 100])
        for v in (5, 50, 500):
            h.record(v)
        assert h.counts == [1, 1, 1]
        assert h.total == 3

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", [100, 10])

    def test_boundary_value_goes_low(self):
        h = Histogram("h", [10])
        h.record(10)
        assert h.counts == [1, 0]

    def test_percentiles_at_bucket_resolution(self):
        h = Histogram("h", [10, 100, 1000])
        for v in range(1, 101):  # 1..100: half <=10 is false; 10 in low
            h.record(v)
        # Ranked sample 50 falls in the <=100 bucket; its upper bound
        # is clamped to the observed max.
        assert h.percentile(50) == 100.0
        assert h.percentile(95) == 100.0
        assert h.percentile(100) == 100.0
        assert h.mean == pytest.approx(50.5)

    def test_percentile_overflow_bucket_reports_true_max(self):
        h = Histogram("h", [10])
        h.record(5)
        h.record(99_999)
        assert h.percentile(95) == 99_999.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h", [10]).percentile(50) == 0.0

    def test_snapshot_keys(self):
        h = Histogram("h", [10, 100])
        for v in (5, 50, 500):
            h.record(v)
        snap = h.snapshot()
        assert snap["n"] == 3
        assert snap["le_10"] == 1
        assert snap["le_100"] == 1
        assert snap["overflow"] == 1
        assert snap["max"] == 500.0
        assert snap["min"] == 5.0
        assert snap["mean"] == pytest.approx(555 / 3)


class TestSampler:
    def test_mean_and_max(self):
        s = Sampler("s")
        for i, v in enumerate((10.0, 20.0, 30.0)):
            s.record(i, v)
        assert s.mean == 20.0
        assert s.max == 30.0
        assert s.count == 3

    def test_empty_sampler(self):
        s = Sampler("s")
        assert s.mean == 0.0 and s.max == 0.0


class TestMetricSet:
    def test_lazy_creation_and_reuse(self):
        m = MetricSet("m")
        assert m.counter("a") is m.counter("a")
        assert m.timer("b") is m.timer("b")
        assert m.sampler("c") is m.sampler("c")

    def test_snapshot_flattens(self):
        m = MetricSet("m")
        m.counter("hits").add(3)
        m.timer("lat").record(100)
        snap = m.snapshot()
        assert snap["hits.count"] == 3
        assert snap["lat.mean_ns"] == 100

    def test_histogram_lazy_creation_and_reuse(self):
        m = MetricSet("m")
        h = m.histogram("lat", [10, 100])
        assert m.histogram("lat") is h
        assert isinstance(h, Histogram)

    def test_snapshot_merges_histograms(self):
        m = MetricSet("m")
        h = m.histogram("lat", [10, 100])
        for v in (5, 50, 500):
            h.record(v)
        snap = m.snapshot()
        assert snap["lat.n"] == 3
        assert snap["lat.le_10"] == 1
        assert snap["lat.overflow"] == 1
        assert snap["lat.p95"] == 500.0
