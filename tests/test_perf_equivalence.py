"""Golden determinism test for the hot-path optimization work.

The indexed firewall/coherence structures and the engine fast path must
be *invisible* to the simulation: the same seed has to produce the same
recovery timeline, the same discard counts, and a byte-identical span
export.  This test runs the paper's ``sw_cow_tree`` scenario (the most
recovery-heavy of Table 7.4: kernel data corruption, wild writes,
preemptive discard) twice and compares everything observable.
"""

from repro.bench.faultexp import SW_COW_TREE, FaultExperimentRunner
from repro.obs import attach_flight_recorder, to_jsonl

SEED = 5


def _record_key(rec):
    """Every RecoveryRecord field, in a comparable form."""
    return (
        rec.round_id,
        tuple(sorted(rec.dead_cells)),
        rec.hint_time_ns,
        rec.detection_reason,
        tuple(sorted(rec.entry_times.items())),
        rec.agreement_ns,
        rec.recovery_done_ns,
        rec.discarded_pages,
        rec.files_lost,
        rec.killed_processes,
        rec.rebooted,
    )


def _run_once(batch=None):
    captured = {}

    def on_boot(system):
        captured["recorder"] = attach_flight_recorder(system)
        captured["system"] = system
        if batch is not None:
            system.machine.coherence.batch_enabled = batch

    runner = FaultExperimentRunner(on_boot=on_boot)
    trial = runner.run_trial(SW_COW_TREE, seed=SEED)
    system = captured["system"]
    records = tuple(_record_key(r) for r in system.coordinator.records)
    discarded = sum(r.discarded_pages for r in system.coordinator.records)
    spans_jsonl = to_jsonl(captured["recorder"])
    trial_key = (
        trial.scenario, trial.seed, trial.injected_at_ns, trial.detected,
        trial.last_entry_latency_ns, trial.contained,
        trial.survivors_alive, trial.outputs_ok, trial.check_ok,
        trial.recovery_duration_ns,
    )
    return trial_key, records, discarded, spans_jsonl


class TestSwCowTreeGolden:
    def test_identical_runs(self):
        first = _run_once()
        second = _run_once()
        trial_key, records, discarded, spans = first

        # The scenario actually exercised the paths under test.
        assert trial_key[3], "fault was never detected"
        assert records, "no recovery round recorded"
        assert spans.count("\n") > 10, "span export suspiciously small"

        assert trial_key == second[0]
        assert records == second[1]
        assert discarded == second[2]
        # Byte-identical JSONL span export (modulo nothing).
        assert spans == second[3]


#: run_throughput keys that are simulated (seed-deterministic) rather
#: than wall-clock measurements.
DETERMINISTIC_ROW_KEYS = (
    "config", "nodes", "cells", "cpus_per_node", "seed", "sim_ms",
    "events", "accesses", "driver_accesses", "writable_page_samples",
    "samples", "recovery_detected", "discarded_pages",
)


class TestBatchVsScalarGolden:
    """The batched access path must be invisible to the simulation.

    Runs the recovery-heaviest Table 7.4 scenario and the throughput
    scenario with batching forced on and off, and diffs event counts,
    recovery records, discard counts, and span exports byte-for-byte.
    """

    def test_sw_cow_tree_batch_toggle(self):
        batched = _run_once(batch=True)
        scalar = _run_once(batch=False)
        assert batched[0][3], "fault was never detected"
        assert batched[0] == scalar[0]  # trial result fields
        assert batched[1] == scalar[1]  # recovery records
        assert batched[2] == scalar[2]  # discarded pages
        assert batched[3] == scalar[3]  # span export, byte-for-byte

    def test_throughput_small_batch_toggle(self):
        from repro.bench.throughput import run_throughput

        batched = run_throughput("small", seed=11, batch=True)
        scalar = run_throughput("small", seed=11, batch=False)
        assert batched["recovery_detected"]
        for key in DETERMINISTIC_ROW_KEYS:
            assert batched[key] == scalar[key], key


class TestWheelVsHeapGolden:
    """The engine timer wheel must be invisible to the simulation: the
    wheel and classic-heap dispatch loops process the same events in the
    same order, so *every* deterministic row key — including the engine
    event count itself — must match."""

    def test_throughput_small_wheel_toggle(self):
        from repro.bench.throughput import run_throughput

        wheel = run_throughput("small", seed=11, wheel=True)
        heap = run_throughput("small", seed=11, wheel=False)
        assert wheel["recovery_detected"]
        for key in DETERMINISTIC_ROW_KEYS:
            assert wheel[key] == heap[key], key

    def test_throughput_small_profile_toggle(self, monkeypatch):
        """HIVE_PROFILE=1 swaps in the profiled dispatch loops; the
        simulation (and every deterministic tier counter) must be
        unchanged, and the engine section must appear."""
        from repro.bench.throughput import run_throughput

        monkeypatch.delenv("HIVE_PROFILE", raising=False)
        plain = run_throughput("small", seed=11)
        monkeypatch.setenv("HIVE_PROFILE", "1")
        profiled = run_throughput("small", seed=11)
        for key in DETERMINISTIC_ROW_KEYS:
            assert plain[key] == profiled[key], key
        assert plain["tiers"]["engine"] is None
        engine = profiled["tiers"]["engine"]
        assert engine["dispatches_total"] == profiled["events"]
        assert engine["subsystem_wall_s"]
        assert plain["tiers"]["coherence"] == profiled["tiers"]["coherence"]
        assert plain["tiers"]["rpc"] == profiled["tiers"]["rpc"]

    def test_rpc_bench_small_wheel_toggle(self):
        from repro.bench.rpcbench import (
            RPC_DETERMINISTIC_KEYS,
            run_rpc_bench,
        )

        wheel = run_rpc_bench("small", seed=11, wheel=True)
        heap = run_rpc_bench("small", seed=11, wheel=False)
        assert wheel["round_trips"] > 0
        for key in RPC_DETERMINISTIC_KEYS:
            assert wheel[key] == heap[key], key


class TestRpcFastVsSlowGolden:
    """The HIVE_RPC_FAST path must leave every *simulated* RPC outcome
    unchanged: counts, latencies, sends, retries, and the finish time.
    (``events_processed`` legitimately differs — the fast path exists to
    dispatch fewer engine events per round trip.)"""

    def test_rpc_bench_small_fast_toggle(self):
        from repro.bench.rpcbench import (
            RPC_DETERMINISTIC_KEYS,
            run_rpc_bench,
        )

        fast = run_rpc_bench("small", seed=11, fast=True)
        slow = run_rpc_bench("small", seed=11, fast=False)
        assert fast["round_trips"] > 0
        assert fast["served_queued"] > 0  # mix exercises the queued path
        for key in RPC_DETERMINISTIC_KEYS:
            assert fast[key] == slow[key], key

    def test_sw_cow_tree_fast_toggle(self):
        """The recovery-heaviest Table 7.4 scenario (agreement rounds,
        probe RPCs, timeouts against dead cells) byte-for-byte."""

        def toggle(fast):
            def on_boot(system):
                for cell in system.cells:
                    cell.rpc.fast_enabled = fast

            from repro.bench.faultexp import FaultExperimentRunner
            captured = {}

            def boot_hook(system):
                on_boot(system)
                captured["system"] = system

            runner = FaultExperimentRunner(on_boot=boot_hook)
            trial = runner.run_trial(SW_COW_TREE, seed=SEED)
            system = captured["system"]
            records = tuple(_record_key(r)
                            for r in system.coordinator.records)
            return (
                (trial.scenario, trial.seed, trial.injected_at_ns,
                 trial.detected, trial.last_entry_latency_ns,
                 trial.contained, trial.survivors_alive,
                 trial.outputs_ok, trial.check_ok,
                 trial.recovery_duration_ns),
                records,
            )

        fast = toggle(True)
        slow = toggle(False)
        assert fast[0][3], "fault was never detected"
        assert fast == slow
