"""Unit and property tests for the kernel heap and pfdat tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.unix.kheap import KOBJ_ALIGN, KernelHeap, KObject
from repro.unix.pfdat import NoFreeFrames, Pfdat, PfdatTable


class Obj(KObject):
    pass


class TestKernelHeap:
    def make(self):
        return KernelHeap(cell_id=0, base_addr=0x10000, size=0x4000)

    def test_alloc_assigns_aligned_address_and_tag(self):
        heap = self.make()
        obj = Obj()
        addr = heap.alloc(obj, "widget")
        assert addr % KOBJ_ALIGN == 0
        assert heap.resolve(addr) == ("widget", obj)
        assert obj.ktype == "widget"

    def test_free_removes_tag(self):
        heap = self.make()
        obj = Obj()
        addr = heap.alloc(obj, "widget")
        heap.free(obj)
        assert heap.resolve(addr) is None
        assert obj.kaddr == 0

    def test_freed_slots_are_reused(self):
        heap = self.make()
        a = Obj()
        addr = heap.alloc(a, "t")
        heap.free(a)
        b = Obj()
        assert heap.alloc(b, "t") == addr

    def test_double_alloc_rejected(self):
        heap = self.make()
        obj = Obj()
        heap.alloc(obj, "t")
        with pytest.raises(ValueError):
            heap.alloc(obj, "t")

    def test_double_free_rejected(self):
        heap = self.make()
        obj = Obj()
        heap.alloc(obj, "t")
        heap.free(obj)
        with pytest.raises(ValueError):
            heap.free(obj)

    def test_exhaustion(self):
        heap = KernelHeap(0, 0x10000, KOBJ_ALIGN * 2)
        heap.alloc(Obj(), "t")
        heap.alloc(Obj(), "t")
        with pytest.raises(MemoryError):
            heap.alloc(Obj(), "t")

    def test_contains(self):
        heap = self.make()
        assert heap.contains(0x10000)
        assert not heap.contains(0x10000 + 0x4000)

    def test_misaligned_resolve_finds_nothing(self):
        heap = self.make()
        addr = heap.alloc(Obj(), "t")
        assert heap.resolve(addr + 8) is None

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_live_object_accounting(self, ops):
        """Property: live_objects == allocs - frees at every step."""
        heap = KernelHeap(0, 0x10000, 0x10000)
        live = []
        for do_alloc in ops:
            if do_alloc or not live:
                obj = Obj()
                heap.alloc(obj, "t")
                live.append(obj)
            else:
                heap.free(live.pop())
            assert heap.live_objects == len(live)
            assert heap.live_objects == heap.allocs - heap.frees


class TestPfdatTable:
    def make(self, nframes=16):
        return PfdatTable(range(100, 100 + nframes))

    def test_alloc_free_roundtrip(self):
        t = self.make()
        pf = t.alloc_frame()
        assert pf.frame in t.owned_frames
        assert not pf.on_free_list
        t.free_frame(pf)
        assert pf.on_free_list

    def test_hash_insert_lookup_remove(self):
        t = self.make()
        pf = t.alloc_frame()
        lid = (("file", 1, 2), 7)
        t.insert(pf, lid)
        assert t.lookup(lid) is pf
        assert pf.valid
        t.remove(pf)
        assert t.lookup(lid) is None
        assert pf.logical_id is None

    def test_duplicate_logical_id_rejected(self):
        t = self.make()
        a, b = t.alloc_frame(), t.alloc_frame()
        lid = (("file", 1, 2), 0)
        t.insert(a, lid)
        with pytest.raises(ValueError):
            t.insert(b, lid)

    def test_rebinding_bound_pfdat_rejected(self):
        t = self.make()
        pf = t.alloc_frame()
        t.insert(pf, (("file", 1, 2), 0))
        with pytest.raises(ValueError):
            t.insert(pf, (("file", 1, 2), 1))

    def test_exhaustion_raises(self):
        t = self.make(nframes=2)
        t.alloc_frame()
        t.alloc_frame()
        with pytest.raises(NoFreeFrames):
            t.alloc_frame()

    def test_free_with_references_rejected(self):
        t = self.make()
        pf = t.alloc_frame()
        pf.refcount = 1
        with pytest.raises(ValueError):
            t.free_frame(pf)

    def test_extended_pfdat_lifecycle(self):
        t = self.make()
        ext = t.alloc_extended(9999)  # a frame we do not own
        assert ext.extended
        lid = (("file", 3, 4), 1)
        t.insert(ext, lid)
        assert t.lookup(lid) is ext
        t.release_extended(ext)
        assert t.lookup(lid) is None
        assert t.by_frame(9999) is None

    def test_extended_for_owned_frame_rejected(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.alloc_extended(100)

    def test_extended_cannot_be_freed_like_local(self):
        t = self.make()
        ext = t.alloc_extended(9999)
        with pytest.raises(ValueError):
            t.free_frame(ext)

    def test_loan_reserve_return(self):
        t = self.make()
        pf = t.alloc_frame()
        t.move_to_reserved(pf, borrower=2)
        assert pf.loaned_to == 2
        assert t.loaned_frames_to(2) == [pf]
        back = t.return_from_reserved(pf.frame)
        assert back is pf and pf.loaned_to is None

    def test_hit_metrics(self):
        t = self.make()
        pf = t.alloc_frame()
        t.insert(pf, (("file", 1, 1), 0))
        t.lookup((("file", 1, 1), 0))
        t.lookup((("file", 1, 1), 99))
        assert t.lookups == 2 and t.hits == 1

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=40, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_hash_bijection_property(self, offsets):
        """Property: every inserted id maps back to its own pfdat."""
        t = PfdatTable(range(200, 200 + 64))
        bound = {}
        for off in offsets:
            pf = t.alloc_frame()
            lid = (("file", 0, 1), off)
            t.insert(pf, lid)
            bound[lid] = pf
        for lid, pf in bound.items():
            assert t.lookup(lid) is pf
            assert pf.logical_id == lid
