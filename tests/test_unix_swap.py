"""Tests for swap space and the clock-hand page-replacement daemon."""

import pytest

from repro.core.hive import boot_hive, boot_irix
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE
from repro.unix.swap import ClockHand, SwapSpace

from tests.helpers import run_program


def small_kernel():
    """A kernel with little memory so eviction actually happens."""
    sim = Simulator()
    k = boot_irix(sim, machine_config=MachineConfig(
        params=HardwareParams(num_nodes=1,
                              memory_per_node=8 * 1024 * 1024)))
    k.namespace.mount("/tmp", 0)
    return k


class TestSwapSpace:
    def test_swap_out_in_roundtrip(self):
        k = small_kernel()
        data = b"\x5a" * PAGE
        lid = (("anon", 0, 1), 3)

        def prog():
            yield from k.swap.swap_out(lid, data)
            return (yield from k.swap.swap_in(lid))

        proc = k.sim.process(prog())
        k.sim.run_until_event(proc, deadline=k.sim.now + 10**11)
        assert proc.value == data
        assert k.swap.swap_outs == 1 and k.swap.swap_ins == 1

    def test_swap_io_takes_disk_time(self):
        k = small_kernel()
        t0 = k.sim.now
        proc = k.sim.process(k.swap.swap_out((("anon", 0, 1), 0),
                                             b"\x00" * PAGE))
        k.sim.run_until_event(proc, deadline=k.sim.now + 10**11)
        assert k.sim.now - t0 > 1_000_000

    def test_rewrite_reuses_slot(self):
        k = small_kernel()
        lid = (("anon", 0, 1), 0)

        def prog():
            yield from k.swap.swap_out(lid, b"\x01" * PAGE)
            yield from k.swap.swap_out(lid, b"\x02" * PAGE)
            return (yield from k.swap.swap_in(lid))

        proc = k.sim.process(prog())
        k.sim.run_until_event(proc, deadline=k.sim.now + 10**11)
        assert proc.value == b"\x02" * PAGE
        assert k.swap.slots_used == 1

    def test_discard_frees_slot(self):
        k = small_kernel()
        lid = (("anon", 0, 1), 0)
        proc = k.sim.process(k.swap.swap_out(lid, b"\x01" * PAGE))
        k.sim.run_until_event(proc, deadline=k.sim.now + 10**11)
        k.swap.discard(lid)
        assert not k.swap.has(lid)
        with pytest.raises(KeyError):
            next(k.swap.swap_in(lid))

    def test_missing_page_raises(self):
        k = small_kernel()
        with pytest.raises(KeyError):
            next(k.swap.swap_in((("anon", 0, 9), 9)))


class TestClockHand:
    def test_pass_frees_clean_pages(self):
        k = small_kernel()
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/f", "w", create=True)
            yield from ctx.write(fd, b"x" * (64 * PAGE))
            yield from ctx.close(fd)
            out["free_before"] = k.pfdats.free_count
            yield from k.clockhand.run_pass()
            out["free_after"] = k.pfdats.free_count

        run_program(k, 0, prog, deadline_ns=300_000_000_000)
        # The pass ran; with plenty of free memory it may stop at the
        # target, but the machinery must not lose frames.
        assert out["free_after"] >= out["free_before"]

    def test_anon_pages_swap_out_and_restore(self):
        """Touch anon memory, force eviction, touch again: the data must
        come back from swap, not as zeros."""
        k = small_kernel()
        out = {}

        def prog(ctx):
            region = yield from ctx.map_anon(8)
            pte = yield from ctx.touch(region, 0, write=True)
            k.machine.memory.write_bytes(pte.frame, 0, b"PRECIOUS",
                                         cpu=ctx.cpu)
            # Evict: drop the mapping, then force the clock hand.
            ctx.process.aspace.unmap_page(k.kernel_id, region.start_vpn)
            pte.pfdat.refcount = 0
            k.clockhand.target_free = k.pfdats.free_count + 16
            yield from ctx.block(k.clockhand.run_pass())
            out["swapped"] = k.swap.slots_used
            pte2 = yield from ctx.touch(region, 0)
            out["data"] = k.machine.memory.read_bytes(pte2.frame, 0, 8)

        run_program(k, 0, prog, deadline_ns=300_000_000_000)
        assert out["swapped"] >= 1
        assert out["data"] == b"PRECIOUS"
        assert k.swap.swap_ins >= 1

    def test_dirty_file_pages_written_back_not_swapped(self):
        k = small_kernel()
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/tmp/wb", "w", create=True)
            yield from ctx.write(fd, b"d" * (4 * PAGE))
            yield from ctx.close(fd)
            k.clockhand.target_free = k.pfdats.free_count + 16
            yield from ctx.block(k.clockhand.run_pass())
            out["disk_writes"] = k.filesystems[0].disk_writes
            out["swap_outs"] = k.swap.swap_outs

        run_program(k, 0, prog, deadline_ns=300_000_000_000)
        assert out["disk_writes"] >= 4
        assert out["swap_outs"] == 0

    def test_daemon_keeps_reserve_under_pressure(self):
        k = small_kernel()
        out = {}

        def prog(ctx):
            # Allocate more anon pages than paged memory can hold; the
            # background daemon must keep making progress.
            region = yield from ctx.map_anon(1200)
            for i in range(1200):
                yield from ctx.touch(region, i, write=True)
                if i % 100 == 0:
                    yield from ctx.compute(k.clockhand.period_ns)
            out["done"] = True

        run_program(k, 0, prog, deadline_ns=3_000_000_000_000)
        assert out["done"]
        assert k.swap.swap_outs > 0
        assert k.clockhand.passes > 0

    def test_wax_hint_returns_borrowed_frames_first(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=2,
                         machine_config=MachineConfig(
                             params=HardwareParams(num_nodes=2)))
        borrower, lender = hive.cell(0), hive.cell(1)

        def borrow():
            result = yield from borrower.rpc.call(
                1, "borrow_frames", {"count": 8})
            for frame in result["frames"]:
                pf = borrower.pfdats.alloc_extended(frame)
                pf.borrowed_from = 1
                borrower._borrowed_free.append(pf)

        proc = sim.process(borrow())
        sim.run_until_event(proc, deadline=sim.now + 10**10)
        assert len(lender.pfdats.reserved) == 8
        # Wax says cell 1 is pressured: the clock hand gives frames back.
        borrower.wax_hints["clockhand_target"] = 1
        proc = sim.process(borrower.clockhand.run_pass())
        sim.run_until_event(proc, deadline=sim.now + 10**10)
        sim.run(until=sim.now + 100_000_000)
        assert len(lender.pfdats.reserved) == 0
        assert borrower.clockhand.returned_borrowed >= 8
