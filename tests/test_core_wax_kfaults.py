"""Tests for Wax (Section 3.2) and kernel-data fault injection (7.4)."""

import pytest

from repro.core.hive import boot_hive
from repro.core.kfaults import (
    ALL_MODES,
    CORRUPT_OFF_BY_ONE_WORD,
    CORRUPT_RANDOM_LOCAL,
    CORRUPT_RANDOM_REMOTE,
    CORRUPT_SELF_POINTER,
    KernelFaultInjector,
)
from repro.core.wax import Wax
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator

from tests.helpers import run_program


def boot4(with_wax=False, seed=5):
    sim = Simulator()
    return boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(seed=seed),
                     with_wax=with_wax)


class TestWax:
    def test_wax_builds_global_snapshot(self):
        hive = boot4(with_wax=True)
        hive.sim.run(until=hive.sim.now + 200_000_000)
        wax = hive.registry.wax
        assert set(wax.snapshot) == {0, 1, 2, 3}
        assert all("free_frames" in s for s in wax.snapshot.values())

    def test_wax_pushes_sane_hints(self):
        hive = boot4(with_wax=True)
        hive.sim.run(until=hive.sim.now + 300_000_000)
        for cell in hive.cells:
            target = cell.wax_hints.get("borrow_target")
            assert target is not None
            assert target != cell.kernel_id
            assert hive.registry.is_live(target)

    def test_cells_reject_bad_wax_hints(self):
        """Sanity checking: a damaged Wax cannot hurt correctness."""
        hive = boot4()
        cell = hive.cell(0)
        assert not cell.validate_wax_hints({"borrow_target": 0})   # self
        assert not cell.validate_wax_hints({"borrow_target": 99})  # bogus
        assert not cell.validate_wax_hints({"borrow_target": "x"})
        assert cell.validate_wax_hints({"borrow_target": 2})

    def test_wax_dies_with_any_cell_and_restarts(self):
        hive = boot4(with_wax=True)
        hive.sim.run(until=hive.sim.now + 200_000_000)
        wax = hive.registry.wax
        first_incarnation = wax.incarnation
        hive.machine.halt_node(3)
        hive.sim.run(until=hive.sim.now + 800_000_000)
        assert wax.restarts >= 1
        assert wax.incarnation > first_incarnation
        # The new incarnation only spans surviving cells.
        assert set(wax.snapshot) <= {0, 1, 2}

    def test_hints_cleared_on_wax_death(self):
        hive = boot4(with_wax=True)
        hive.sim.run(until=hive.sim.now + 200_000_000)
        assert hive.cell(0).wax_hints
        hive.registry.wax.kill("test")
        assert not hive.cell(0).wax_hints


class TestKernelFaultInjection:
    def _hive_with_anon_process(self, seed=5):
        hive = boot4(seed=seed)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_anon(32)
            for i in range(4):
                yield from ctx.touch(region, i, write=True)
            out["region"] = region
            # Keep running so the corruption can manifest.
            for i in range(4, 32):
                yield from ctx.touch(region, i, write=True)
                yield from ctx.compute(20_000_000)

        cell = hive.cell(2)
        proc = cell.create_process("victim")
        cell.start_thread(proc, prog)
        hive.sim.run(until=hive.sim.now + 50_000_000)
        return hive, out

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_address_map_corruption_panics_victim_only(self, mode):
        hive, _out = self._hive_with_anon_process()
        kfi = KernelFaultInjector(hive)
        rec = kfi.corrupt_address_map(2, mode, wild_writes=0)
        assert rec is not None
        hive.sim.run(until=hive.sim.now + 1_000_000_000)
        assert not hive.registry.is_live(2)
        for c in (0, 1, 3):
            assert hive.registry.is_live(c)

    def test_cow_corruption_detected_locally(self):
        hive, _out = self._hive_with_anon_process()
        # Fork inside the victim so an interior COW node exists.
        cell = hive.cell(2)
        out = {}

        def child(ctx):
            region = ctx.process.aspace.regions[0]
            for i in range(32):
                yield from ctx.touch(region, i)
                yield from ctx.compute(10_000_000)

        def forker(ctx):
            region = yield from ctx.map_anon(64)
            for i in range(32):
                yield from ctx.touch(region, i, write=True)
            pid = yield from ctx.spawn(child, "kid")
            # Keep faulting on new pages so a corrupted parent-side leaf
            # is traversed too (either fork branch detects the fault).
            for i in range(32, 64):
                yield from ctx.touch(region, i, write=True)
                yield from ctx.compute(10_000_000)
            out["status"] = yield from ctx.waitpid(pid)

        proc = cell.create_process("forker")
        cell.start_thread(proc, forker)
        hive.sim.run(until=hive.sim.now + 30_000_000)
        kfi = KernelFaultInjector(hive)
        rec = kfi.corrupt_cow_tree(2, CORRUPT_OFF_BY_ONE_WORD,
                                   wild_writes=0)
        assert rec is not None
        hive.sim.run(until=hive.sim.now + 2_000_000_000)
        assert not hive.registry.is_live(2)
        for c in (0, 1, 3):
            assert hive.registry.is_live(c)

    def test_wild_writes_mostly_blocked_by_firewall(self):
        hive, _out = self._hive_with_anon_process()
        kfi = KernelFaultInjector(hive)
        rec = kfi.corrupt_address_map(2, CORRUPT_RANDOM_REMOTE,
                                      wild_writes=8)
        assert rec.wild_writes_attempted >= 1
        # A blocked wild write bus-errors and panics the buggy cell.
        if rec.wild_writes_blocked:
            assert not hive.cell(2).alive
        # Wild writes never land outside pages the victim could write:
        # every landed write hit the victim's own or granted memory.
        assert rec.wild_writes_landed + rec.wild_writes_blocked \
            == rec.wild_writes_attempted

    def test_corrupt_value_modes_shape(self):
        hive, _out = self._hive_with_anon_process()
        kfi = KernelFaultInjector(hive)
        cell = hive.cell(2)
        node = cell.cow.new_root()
        lo, hi = hive.registry.heap_range_of(2)
        v_local = kfi._corrupt_value(cell, node.kaddr,
                                     CORRUPT_RANDOM_LOCAL, node.kaddr)
        assert lo <= v_local < hi
        v_remote = kfi._corrupt_value(cell, node.kaddr,
                                      CORRUPT_RANDOM_REMOTE, node.kaddr)
        assert not (lo <= v_remote < hi)
        assert kfi._corrupt_value(cell, node.kaddr,
                                  CORRUPT_OFF_BY_ONE_WORD,
                                  node.kaddr) == node.kaddr + 8
        assert kfi._corrupt_value(cell, node.kaddr, CORRUPT_SELF_POINTER,
                                  node.kaddr) == node.kaddr


class TestGangScheduling:
    def test_wax_reserves_cpus_for_dominant_task(self):
        from repro.hardware.params import NS_PER_MS
        hive = boot4(with_wax=True)
        hive.sim.run(until=hive.sim.now + 150_000_000)
        out = {}

        def factory(index, total):
            def worker(ctx):
                yield from ctx.compute(400 * NS_PER_MS)
                out[index] = ctx.sim.now
            return worker

        def bg(ctx):
            # A background process competing for cell 0's only CPU.
            yield from ctx.compute(400 * NS_PER_MS)
            out["bg"] = ctx.sim.now

        def master(ctx):
            task = yield from ctx.kernel.spawn_spanning_task(
                ctx, factory, [0, 1, 2, 3], {1: 8}, name="gang")
            out["task_id"] = task.task_id
            for pid in task.pids():
                yield from ctx.waitpid(pid)

        c0 = hive.cell(0)
        bg_proc = c0.create_process("background")
        c0.start_thread(bg_proc, bg)
        m = c0.create_process("master")
        c0.start_thread(m, master)
        # Let Wax observe the task and push the gang hint.
        hive.sim.run(until=hive.sim.now + 300_000_000)
        reserved = getattr(c0, "_gang_reserved_pids", set())
        assert reserved, "Wax must reserve CPUs for the gang component"
        assert c0.sched._reserved_cpus == set(c0.cpu_ids)
        hive.sim.run(until=hive.sim.now + 3_000_000_000)
        # Everyone eventually completes; the reservation died with the task.
        assert set(range(4)) <= set(k for k in out if isinstance(k, int))
        assert "bg" in out
        assert not c0.sched._reserved_cpus

    def test_gang_hint_validation(self):
        hive = boot4()
        cell = hive.cell(0)
        assert not cell.validate_wax_hints({"gang_task": 999})
        assert not cell.validate_wax_hints({"gang_task": "x"})
