"""Tests for the campaign observatory: mergeable stats, availability
accounting, hot-path tier profiling, and the campaign report."""

import json

import pytest

from repro.bench.report import (
    check_campaign_report,
    load_bench_trajectory,
    regression_delta,
    render_campaign_report,
    trajectory_gate_warning,
)
from repro.obs import (
    availability_from_dicts,
    merge_availability,
    merge_tier_snapshots,
    render_fault_timeline,
)
from repro.obs.recorder import Span, TelemetryEvent
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, MetricSet

MS = 1_000_000


# ---------------------------------------------------------------------------
# synthetic telemetry builders
# ---------------------------------------------------------------------------

def span(name, start_ns, end_ns, cell=None, attrs=None, span_id=1):
    return {"type": "span", "span_id": span_id, "parent_id": 0,
            "name": name, "category": "recovery", "cell": cell,
            "start_ns": start_ns, "end_ns": end_ns, "attrs": attrs or {}}


def event(name, time_ns, cell=None, attrs=None):
    return {"type": "event", "time_ns": time_ns, "name": name,
            "category": "fault", "cell": cell, "attrs": attrs or {}}


def recovered_run(horizon=1000 * MS):
    """One hardware fault on cell 1, recovered, cell rebooted at 400 ms."""
    return [
        event("fault.inject", 1 * MS, cell=1, attrs={"kind": "hw"}),
        span("recovery.round", 2 * MS, 400 * MS,
             attrs={"round": 1, "outcome": "recovered", "dead": [1]}),
        span("recovery.master", 52 * MS, 400 * MS,
             attrs={"round": 1, "rebooted": True}),
        event("recovery.done", 52 * MS,
              attrs={"round": 1, "discarded_pages": 4, "files_lost": 2,
                     "killed_processes": 1, "surviving_processes": 7}),
    ]


class TestHistogramMerge:
    def test_merged_shards_equal_single_process(self):
        # The golden-merge bar: histograms filled shard-by-shard and
        # merged must be indistinguishable from one histogram that saw
        # every sample — snapshot (percentiles included) and all.
        bounds = [10, 100, 1000, 10000]
        shard_a = Histogram("lat", bounds)
        shard_b = Histogram("lat", bounds)
        single = Histogram("lat", bounds)
        samples_a = [5, 42, 42, 900, 25000]
        samples_b = [1, 7, 180, 950, 3000, 99999]
        for v in samples_a:
            shard_a.record(v)
            single.record(v)
        for v in samples_b:
            shard_b.record(v)
            single.record(v)
        shard_a.merge(shard_b)
        assert shard_a.snapshot() == single.snapshot()

    def test_merge_rejects_bounds_mismatch(self):
        a = Histogram("x", [1, 2])
        b = Histogram("x", [1, 3])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dict_roundtrip(self):
        h = Histogram("x", [10, 100])
        for v in (3, 30, 300):
            h.record(v)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.snapshot() == h.snapshot()
        assert clone.name == h.name

    def test_metricset_merge(self):
        a, b = MetricSet(), MetricSet()
        a.counter("calls").value = 3
        b.counter("calls").value = 4
        b.counter("only_b").value = 1
        a.histogram("lat", [10, 100]).record(5)
        b.histogram("lat", [10, 100]).record(50)
        b.histogram("only_b_h", [1]).record(1)
        a.merge(b)
        assert a.counter("calls").value == 7
        assert a.counter("only_b").value == 1
        assert a.histogram("lat", [10, 100]).total == 2
        assert a.histogram("only_b_h", [1]).total == 1
        # b is untouched
        assert b.counter("calls").value == 4


class TestAvailability:
    def test_single_recovered_fault(self):
        rep = availability_from_dicts(recovered_run(), cell_ids=[0, 1],
                                      horizon_ns=1000 * MS)
        dead = rep["cells"]["1"]
        ok = rep["cells"]["0"]
        # cell 1: down from its inject (1 ms) to reboot (400 ms)
        assert dead["dead_ns"] == 399 * MS
        assert dead["faults"] == 1
        # cell 0: suspended round start (2 ms) -> recovery.done (52 ms)
        assert ok["suspended_ns"] == 50 * MS
        assert ok["up_ns"] == 950 * MS
        assert ok["availability"] == pytest.approx(0.95)
        assert rep["recovery_latency_ns"]["n"] == 1
        assert rep["recovery_latency_ns"]["max"] == 50 * MS
        assert rep["detection_latency_ns"]["max"] == 1 * MS
        assert rep["work_lost"]["discarded_pages"] == 4
        assert rep["work_lost"]["surviving_processes"] == 7
        assert rep["rounds_recovered"] == 1

    def test_correlated_multi_cell_faults_share_one_round(self):
        # Two cells die inside one recovery window; each must be
        # accounted dead from its *own* inject, survivors suspended once.
        records = [
            event("fault.inject", 1 * MS, cell=1, attrs={"kind": "hw"}),
            event("fault.inject", 3 * MS, cell=2, attrs={"kind": "hw"}),
            span("recovery.round", 5 * MS, 300 * MS,
                 attrs={"round": 1, "outcome": "recovered",
                        "dead": [1, 2]}),
            span("recovery.master", 60 * MS, 300 * MS,
                 attrs={"round": 1, "rebooted": True}),
            event("recovery.done", 60 * MS,
                  attrs={"round": 1, "discarded_pages": 10,
                         "files_lost": 0, "killed_processes": 2,
                         "surviving_processes": 4}),
        ]
        rep = availability_from_dicts(records, cell_ids=[0, 1, 2, 3],
                                      horizon_ns=1000 * MS)
        assert rep["cells"]["1"]["dead_ns"] == 299 * MS
        assert rep["cells"]["2"]["dead_ns"] == 297 * MS
        for survivor in ("0", "3"):
            assert rep["cells"][survivor]["suspended_ns"] == 55 * MS
            assert rep["cells"][survivor]["dead_ns"] == 0
        assert rep["faults_injected"] == 2
        # both inject->round-start latencies recorded
        assert rep["detection_latency_ns"]["n"] == 2
        assert rep["detection_latency_ns"]["max"] == 4 * MS
        assert rep["recovery_latency_ns"]["n"] == 1

    def test_unrecovered_panic_dead_to_horizon(self):
        records = [event("panic", 10 * MS, cell=2, attrs={})]
        rep = availability_from_dicts(records, cell_ids=[0, 2],
                                      horizon_ns=100 * MS)
        assert rep["cells"]["2"]["dead_ns"] == 90 * MS
        assert rep["cells"]["0"]["dead_ns"] == 0
        assert rep["rounds_recovered"] == 0

    def test_voted_down_round_suspends_everyone(self):
        records = [
            span("recovery.round", 10 * MS, 30 * MS,
                 attrs={"round": 1, "outcome": "voted_down", "dead": []}),
        ]
        rep = availability_from_dicts(records, cell_ids=[0, 1],
                                      horizon_ns=100 * MS)
        for cid in ("0", "1"):
            assert rep["cells"][cid]["suspended_ns"] == 20 * MS
            assert rep["cells"][cid]["dead_ns"] == 0

    def test_merge_matches_single_and_is_associative(self):
        rep_a = availability_from_dicts(recovered_run(), cell_ids=[0, 1],
                                        horizon_ns=1000 * MS)
        rep_b = availability_from_dicts(recovered_run(), cell_ids=[0, 1],
                                        horizon_ns=1000 * MS)
        merged = merge_availability([rep_a, rep_b], labels=["t0", "t1"])
        assert merged["horizon_ns"] == 2000 * MS
        assert merged["cells"]["1"]["dead_ns"] == 2 * 399 * MS
        assert merged["recovery_latency_ns"]["n"] == 2
        # identical shards keep identical percentiles
        assert (merged["recovery_latency_ns"]["p99"]
                == rep_a["recovery_latency_ns"]["p99"])
        assert merged["work_lost"]["discarded_pages"] == 8
        assert merged["work_lost"]["per_fault_discarded_pages"] == 4.0
        assert [r["trial"] for r in merged["rounds"]] == ["t0", "t1"]
        # associativity: merging a merged ledger is the same as merging
        # all shards flat
        nested = merge_availability([merge_availability([rep_a]), rep_b])
        flat = merge_availability([rep_a, rep_b])
        assert json.dumps(nested, sort_keys=True) == \
            json.dumps(flat, sort_keys=True)

    def test_report_is_json_safe_and_deterministic(self):
        rep1 = availability_from_dicts(recovered_run(), cell_ids=[0, 1])
        rep2 = availability_from_dicts(recovered_run(), cell_ids=[0, 1])
        assert json.dumps(rep1, sort_keys=True) == \
            json.dumps(rep2, sort_keys=True)


class _FakeRecorder:
    """Just enough of FlightRecorder for the timeline exporter."""

    def __init__(self, spans, events):
        self.spans = spans
        self.events = events

    def spans_named(self, name):
        return [s for s in self.spans if s.name == name]

    def events_named(self, name):
        return [e for e in self.events if e.name == name]


class TestFaultTimelineExporter:
    def _round_span(self, start, end, attrs):
        s = Span(1, 0, "recovery.round", "recovery", None, start, attrs)
        s.end_ns = end
        return s

    def test_correlated_faults_all_listed_in_one_round(self):
        events = [
            TelemetryEvent(1 * MS, "fault.inject", "fault", 1,
                           {"kind": "hw_node", "trigger": "t1"}),
            TelemetryEvent(3 * MS, "fault.inject", "fault", 2,
                           {"kind": "hw_node", "trigger": "t2"}),
        ]
        rec = _FakeRecorder(
            [self._round_span(5 * MS, 300 * MS,
                              {"round": 1, "outcome": "recovered",
                               "dead": [1, 2], "reason": "hints"})],
            events)
        text = render_fault_timeline(rec)
        assert "dead=[1, 2]" in text
        assert "on cell 1" in text
        assert "on cell 2" in text

    def test_sequential_faults_attributed_to_own_rounds(self):
        # Two independent faults, two rounds: the second round must not
        # re-list the first (already consumed) injection.
        events = [
            TelemetryEvent(1 * MS, "fault.inject", "fault", 1,
                           {"kind": "hw", "trigger": "a"}),
            TelemetryEvent(500 * MS, "fault.inject", "fault", 2,
                           {"kind": "hw", "trigger": "b"}),
        ]
        r1 = self._round_span(5 * MS, 100 * MS,
                              {"round": 1, "outcome": "recovered",
                               "dead": [1], "reason": "hints"})
        r2 = self._round_span(505 * MS, 600 * MS,
                              {"round": 2, "outcome": "recovered",
                               "dead": [2], "reason": "hints"})
        text = render_fault_timeline(_FakeRecorder([r1, r2], events))
        blocks = text.split("round 2:")
        assert len(blocks) == 2
        assert "on cell 1" not in blocks[1]
        assert "on cell 2" in blocks[1]
        assert "on cell 1" in blocks[0]


class TestEngineProfile:
    def _workload(self, sim):
        fired = []

        def cb(tag):
            fired.append(tag)
            if len(fired) < 40:
                sim.schedule((len(fired) % 7) * 1000, cb,
                             f"t{len(fired)}")
                sim.schedule(0, cb, f"n{len(fired)}")

        sim.schedule(10, cb, "seed")
        sim.run(until=10_000_000)
        return fired

    def test_profile_counts_match_events_processed(self):
        sim = Simulator(profile=True)
        self._workload(sim)
        prof = sim.profile
        assert prof is not None
        d = prof.to_dict()
        total = (d["nowq_dispatches"] + d["heap_dispatches"]
                 + d["inline_dispatches"])
        assert total == sim.events_processed
        assert d["nowq_dispatches"] > 0
        assert sum(d["subsystem_wall_s"].values()) >= 0.0

    def test_profiled_run_is_equivalent(self):
        plain = Simulator(profile=False)
        fired_plain = self._workload(plain)
        prof = Simulator(profile=True)
        fired_prof = self._workload(prof)
        assert fired_prof == fired_plain
        assert prof.events_processed == plain.events_processed
        assert prof.now == plain.now

    def test_profile_off_by_default(self, monkeypatch):
        monkeypatch.delenv("HIVE_PROFILE", raising=False)
        assert Simulator().profile is None


class TestTierSnapshots:
    def _snap(self, memo=2, fast=10, slow=5):
        return {
            "coherence": {"memo_hits": memo, "inline_batches": 1,
                          "vector_batches": 1, "scalar_batches": 0,
                          "batches_total": memo + 2,
                          "memo_hit_rate": memo / (memo + 2),
                          "inline_rate": 1 / (memo + 2),
                          "vector_rate": 1 / (memo + 2),
                          "scalar_rate": 0.0},
            "rpc": {"fast_path": fast, "slow_path": slow,
                    "calls_total": fast + slow,
                    "fast_rate": fast / (fast + slow)},
            "engine": None,
        }

    def test_merge_recomputes_rates_from_counts(self):
        merged = merge_tier_snapshots([self._snap(memo=2),
                                       self._snap(memo=6)])
        coh = merged["coherence"]
        assert coh["memo_hits"] == 8
        assert coh["batches_total"] == 12
        assert coh["memo_hit_rate"] == pytest.approx(8 / 12)
        rpc = merged["rpc"]
        assert rpc["calls_total"] == 30
        assert rpc["fast_rate"] == pytest.approx(20 / 30)
        assert merged["engine"] is None


class TestCampaignReport:
    def _payload(self):
        avail = availability_from_dicts(recovered_run(), cell_ids=[0, 1],
                                        horizon_ns=1000 * MS)
        return {
            "scenarios": {
                "hw_random": {"workload": "pmake", "trials": 2,
                              "contained": 2, "detection_avg_ms": 17.8,
                              "detection_max_ms": 18.8,
                              "paper_avg_ms": 21, "paper_max_ms": 45,
                              "latencies_ms": [17.8, 18.8]},
            },
            "availability": avail,
            "tiers": {"coherence": None, "rpc": None, "engine": None},
        }

    def _write_bench(self, tmp_path, name, eps, cal=100.0):
        path = tmp_path / name
        payload = {"results": {"large": {"events_per_sec": eps}}}
        if cal is not None:
            payload["calibration"] = {"score": cal}
        path.write_text(json.dumps(payload))

    def test_markdown_is_deterministic_and_has_percentiles(self):
        payload = self._payload()
        text1 = render_campaign_report(payload)
        text2 = render_campaign_report(self._payload())
        assert text1 == text2
        assert "| recovery round | 1 |" in text1
        assert "p99" in text1
        assert "| 1 | 601.000 |" in text1  # cell 1 up_ns in ms

    def test_trajectory_and_regression(self, tmp_path):
        self._write_bench(tmp_path, "BENCH_pr3.json", 100_000)
        self._write_bench(tmp_path, "BENCH_pr4.json", 60_000)
        traj = load_bench_trajectory(str(tmp_path))
        assert [t["pr"] for t in traj] == [3, 4]
        reg = regression_delta(traj)
        assert reg["calibrated"]
        assert reg["delta"] == pytest.approx(-0.4)
        assert reg["raw_delta"] == pytest.approx(-0.4)
        problems = check_campaign_report(self._payload(), traj)
        assert any("regression" in p for p in problems)

    def test_calibration_cancels_host_speed(self, tmp_path):
        # Same code speed per host cycle: the newer file ran on a host
        # 45% slower (calibration 55 vs 100) and its raw events/s
        # dropped accordingly.  Normalized, there is no regression.
        self._write_bench(tmp_path, "BENCH_pr3.json", 100_000, cal=100.0)
        self._write_bench(tmp_path, "BENCH_pr4.json", 60_000, cal=55.0)
        traj = load_bench_trajectory(str(tmp_path))
        reg = regression_delta(traj)
        assert reg["calibrated"]
        assert reg["raw_delta"] == pytest.approx(-0.4)
        assert reg["delta"] == pytest.approx((60_000 / 55 - 1000) / 1000)
        assert reg["delta"] > 0
        assert check_campaign_report(self._payload(), traj) == []
        assert trajectory_gate_warning(traj) is None

    def test_uncalibrated_comparison_warns_instead_of_failing(
            self, tmp_path):
        # The older file predates the host-calibration anchor: a raw
        # -40% could be a slower host, so the gate degrades to a
        # warning naming the anchor-less file.
        self._write_bench(tmp_path, "BENCH_pr3.json", 100_000, cal=None)
        self._write_bench(tmp_path, "BENCH_pr4.json", 60_000)
        traj = load_bench_trajectory(str(tmp_path))
        reg = regression_delta(traj)
        assert not reg["calibrated"]
        assert reg["delta"] == pytest.approx(-0.4)
        problems = check_campaign_report(self._payload(), traj)
        assert not any("regression" in p for p in problems)
        warning = trajectory_gate_warning(traj)
        assert "BENCH_pr3.json" in warning
        assert "not comparable" in warning
        assert "-40.0%" in warning
        text = render_campaign_report(self._payload(), traj)
        assert "UNVERIFIABLE" in text

    def test_check_passes_on_healthy_campaign(self, tmp_path):
        self._write_bench(tmp_path, "BENCH_pr3.json", 100_000)
        self._write_bench(tmp_path, "BENCH_pr4.json", 110_000)
        traj = load_bench_trajectory(str(tmp_path))
        assert check_campaign_report(self._payload(), traj) == []

    def test_check_flags_missing_availability_and_failures(self):
        problems = check_campaign_report(
            {"failures": [{"scenario": "hw_random", "seed": 7}]}, [])
        assert any("availability" in p for p in problems)
        assert any("seed 7" in p for p in problems)
