"""Unit and property tests for the FLASH firewall."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.errors import FirewallViolation
from repro.hardware.firewall import (
    NodeFirewall,
    SingleBitFirewall,
    SingleProcessorFirewall,
)
from repro.hardware.params import HardwareParams


@pytest.fixture
def params():
    return HardwareParams(num_nodes=4)


@pytest.fixture
def fw(params):
    return NodeFirewall(params, node_id=1)


FRAME = 8192  # first frame of node 1


class TestDefaults:
    def test_local_node_allowed_by_default(self, fw):
        assert fw.allows(FRAME, writer_cpu=1)

    def test_remote_node_denied_by_default(self, fw):
        assert not fw.allows(FRAME, writer_cpu=0)
        assert not fw.allows(FRAME, writer_cpu=3)

    def test_check_write_raises_bus_error(self, fw):
        with pytest.raises(FirewallViolation):
            fw.check_write(FRAME, writer_cpu=0)
        assert fw.violations == 1

    def test_foreign_frame_rejected(self, fw):
        with pytest.raises(ValueError):
            fw.vector(0)  # node 0's frame

    def test_cell_default_mask(self, params):
        fw = NodeFirewall(params, node_id=1)
        fw.set_default_mask_for_nodes([0, 1], requester_node=1)
        assert fw.allows(FRAME, writer_cpu=0)
        assert not fw.allows(FRAME, writer_cpu=2)

    def test_default_mask_requires_local_requester(self, fw):
        with pytest.raises(PermissionError):
            fw.set_default_mask_for_nodes([0, 1], requester_node=0)


class TestGrantRevoke:
    def test_grant_node(self, fw):
        fw.grant_node(FRAME, 1, grantee_node=2)
        assert fw.allows(FRAME, writer_cpu=2)
        assert not fw.allows(FRAME, writer_cpu=3)

    def test_only_local_processor_updates(self, fw):
        with pytest.raises(PermissionError):
            fw.grant_node(FRAME, 0, grantee_node=2)

    def test_revoke_restores_default(self, fw):
        fw.grant_node(FRAME, 1, 2)
        fw.revoke_node(FRAME, 1, 2)
        assert not fw.allows(FRAME, writer_cpu=2)
        assert fw.allows(FRAME, writer_cpu=1)

    def test_revoke_never_removes_owner(self, fw):
        fw.grant_node(FRAME, 1, 2)
        fw.revoke_node(FRAME, 1, 1)  # try to revoke the owner itself
        assert fw.allows(FRAME, writer_cpu=1)

    def test_revoke_all_remote(self, fw):
        fw.grant_node(FRAME, 1, 0)
        fw.grant_node(FRAME, 1, 2)
        fw.revoke_all_remote(FRAME, 1)
        assert fw.remote_writable_frames() == []

    def test_remote_writable_frames_tracks_grants(self, fw):
        assert fw.remote_writable_frames() == []
        fw.grant_node(FRAME, 1, 2)
        fw.grant_node(FRAME + 1, 1, 3)
        assert sorted(fw.remote_writable_frames()) == [FRAME, FRAME + 1]

    def test_vectors_stay_sparse(self, fw):
        fw.grant_node(FRAME, 1, 2)
        fw.revoke_node(FRAME, 1, 2)
        assert len(fw._vectors) == 0

    def test_reset_clears_everything(self, fw):
        fw.set_default_mask_for_nodes([0, 1], 1)
        fw.grant_node(FRAME, 1, 2)
        fw.reset()
        assert not fw.allows(FRAME, writer_cpu=0)
        assert not fw.allows(FRAME, writer_cpu=2)

    @given(grants=st.lists(
        st.tuples(st.integers(0, 15), st.sampled_from([0, 2, 3])),
        max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_grant_revoke_pairs_return_to_default(self, grants):
        """Property: any grant sequence fully revoked leaves no remote
        access — the invariant preemptive discard's accounting needs."""
        params = HardwareParams(num_nodes=4)
        fw = NodeFirewall(params, node_id=1)
        for offset, node in grants:
            fw.grant_node(FRAME + offset, 1, node)
        for offset, node in grants:
            fw.revoke_node(FRAME + offset, 1, node)
        assert fw.remote_writable_frames() == []


class TestWideMachines:
    def test_bit_sharing_above_64_cpus(self):
        params = HardwareParams(num_nodes=128, memory_per_node=1 << 20)
        fw = NodeFirewall(params, node_id=0)
        frame = 0
        # CPUs 0 and 1 share a firewall bit on a 128-CPU machine.
        assert fw.allows(frame, 0)
        assert fw.allows(frame, 1)
        assert not fw.allows(frame, 2)


class TestRejectedAlternatives:
    def test_single_bit_grants_everyone(self):
        """Section 4.2: one bit per page gives no containment once any
        remote node is granted."""
        params = HardwareParams(num_nodes=4)
        fw = SingleBitFirewall(params, node_id=1)
        fw.grant_node(FRAME, 1, 2)
        for cpu in range(4):
            assert fw.allows(FRAME, cpu)

    def test_single_processor_overwrites_previous_grant(self):
        """Section 4.2: naming one processor forbids load balancing —
        granting a second CPU revokes the first."""
        params = HardwareParams(num_nodes=4, cpus_per_node=2)
        fw = SingleProcessorFirewall(params, node_id=1)
        frame = params.pages_per_node
        fw.grant_cpu(frame, 1, grantee_cpu=4)
        assert fw.allows(frame, 4)
        fw.grant_cpu(frame, 1, grantee_cpu=5)
        assert fw.allows(frame, 5)
        assert not fw.allows(frame, 4)
