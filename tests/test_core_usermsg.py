"""Tests for user-level messaging on direct SIPS access (Section 6)."""

import pytest

from tests.helpers import run_program


class TestOneWayMessages:
    def test_send_and_receive_across_cells(self, hive2):
        out = {}

        def receiver(ctx):
            queue = ctx.kernel.usermsg.bind(100)
            msg = yield from ctx.kernel.usermsg.recv(ctx, queue)
            out["data"] = msg.payload
            out["src_cell"] = msg.src_cell

        def sender(ctx):
            yield from ctx.compute(1_000_000)  # let the receiver bind
            ok = yield from ctx.kernel.usermsg.send(
                ctx, 1, 100, {"hello": "world"})
            out["sent"] = ok

        r = hive2.cell(1).create_process("rx")
        hive2.cell(1).start_thread(r, receiver)
        run_program(hive2, 0, sender)
        hive2.sim.run(until=hive2.sim.now + 100_000_000)
        assert out["sent"]
        assert out["data"] == {"hello": "world"}
        assert out["src_cell"] == 0

    def test_messages_keep_fifo_order(self, hive2):
        out = {"got": []}

        def receiver(ctx):
            queue = ctx.kernel.usermsg.bind(7)
            for _ in range(5):
                msg = yield from ctx.kernel.usermsg.recv(ctx, queue)
                out["got"].append(msg.payload)

        def sender(ctx):
            yield from ctx.compute(1_000_000)
            for i in range(5):
                yield from ctx.kernel.usermsg.send(ctx, 1, 7, i)

        r = hive2.cell(1).create_process("rx")
        hive2.cell(1).start_thread(r, receiver)
        run_program(hive2, 0, sender)
        hive2.sim.run(until=hive2.sim.now + 100_000_000)
        assert out["got"] == [0, 1, 2, 3, 4]

    def test_unbound_port_drops(self, hive2):
        out = {}

        def sender(ctx):
            out["sent"] = yield from ctx.kernel.usermsg.send(
                ctx, 1, 999, "void")

        run_program(hive2, 0, sender)
        hive2.sim.run(until=hive2.sim.now + 100_000_000)
        assert out["sent"]  # delivery is best-effort
        assert hive2.cell(1).usermsg.dropped == 1

    def test_oversize_payload_rejected(self, hive2):
        out = {}

        def sender(ctx):
            try:
                yield from ctx.kernel.usermsg.send(ctx, 1, 1, "x",
                                                   data_bytes=4096)
            except ValueError:
                out["rejected"] = True

        run_program(hive2, 0, sender)
        assert out["rejected"]

    def test_send_to_dead_cell_fails_cleanly(self, hive2):
        out = {}
        hive2.machine.halt_node(1)

        def sender(ctx):
            out["sent"] = yield from ctx.kernel.usermsg.send(
                ctx, 1, 1, "to-the-void")

        run_program(hive2, 0, sender)
        assert out["sent"] is False

    def test_recv_timeout(self, hive2):
        out = {}

        def receiver(ctx):
            queue = ctx.kernel.usermsg.bind(5)
            msg = yield from ctx.kernel.usermsg.recv(
                ctx, queue, timeout_ns=2_000_000)
            out["msg"] = msg

        run_program(hive2, 0, receiver)
        assert out["msg"] is None

    def test_double_bind_rejected(self, hive2):
        hive2.cell(0).usermsg.bind(3)
        with pytest.raises(ValueError):
            hive2.cell(0).usermsg.bind(3)


class TestUserLevelRpc:
    def test_call_and_serve(self, hive2):
        out = {}

        def server(ctx):
            queue = ctx.kernel.usermsg.bind(200)
            served = yield from ctx.kernel.usermsg.serve(
                ctx, queue, lambda args: args * 2, requests=3)
            out["served"] = served

        def client(ctx):
            yield from ctx.compute(1_000_000)
            results = []
            for i in range(3):
                reply = yield from ctx.kernel.usermsg.call(
                    ctx, 1, 200, i + 1, reply_port=300 + i)
                results.append(reply.payload if reply else None)
            out["results"] = results

        s = hive2.cell(1).create_process("srv")
        hive2.cell(1).start_thread(s, server)
        run_program(hive2, 0, client)
        hive2.sim.run(until=hive2.sim.now + 100_000_000)
        assert out["results"] == [2, 4, 6]
        assert out["served"] == 3

    def test_call_timeout_when_no_server(self, hive2):
        out = {}

        def client(ctx):
            reply = yield from ctx.kernel.usermsg.call(
                ctx, 1, 201, "anyone?", reply_port=301,
                timeout_ns=3_000_000)
            out["reply"] = reply

        run_program(hive2, 0, client)
        assert out["reply"] is None

    def test_user_rpc_cheaper_than_kernel_queued_rpc(self, hive2):
        """The point of the library: user-level RPC on raw SIPS skips
        the kernel's stub/queue machinery."""
        out = {}

        def server(ctx):
            queue = ctx.kernel.usermsg.bind(202)
            yield from ctx.kernel.usermsg.serve(
                ctx, queue, lambda a: a, requests=1)

        def client(ctx):
            yield from ctx.compute(1_000_000)
            t0 = ctx.sim.now
            yield from ctx.kernel.usermsg.call(ctx, 1, 202, 0,
                                               reply_port=302)
            out["user_rpc_ns"] = ctx.sim.now - t0

        s = hive2.cell(1).create_process("srv")
        hive2.cell(1).start_thread(s, server)
        run_program(hive2, 0, client)
        assert out["user_rpc_ns"] < 34_000  # the kernel queued-RPC floor
