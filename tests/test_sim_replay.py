"""Trace-capture/replay tier tests.

Covers the columnar op log's persistence round-trips, the replay-vs-live
byte-identical golden contract (all bench configs, moved faults, shard
composition), the ``HIVE_REPLAY`` escape, the gzip telemetry artifacts,
and the inject campaign's fault-seed sweep with divergence diffing.
"""

import json
import random

import numpy as np
import pytest

from repro.bench.parallel import _warn_cpu_cap, run_inject_campaign
from repro.bench.throughput import (
    CONFIGS,
    compare_replay,
    record_traces,
    run_replay_sweep,
    run_throughput,
)
from repro.obs.export import load_json, load_jsonl, open_artifact
from repro.obs.profile import merge_tier_snapshots
from repro.sim.oplog import (
    COLUMNS,
    OP_MEMO,
    OpLog,
    divergence_point,
    load_oplogs,
    save_oplogs,
)
from repro.sim.replay import replay_from_env


def _random_log(rng: random.Random, rows: int) -> OpLog:
    log = OpLog(meta={"config": "rand", "seed": rng.randint(0, 99)})
    t = 0
    for _ in range(rows):
        t += rng.randint(1, 10_000)
        log.append(t, rng.randrange(4), rng.randrange(8),
                   rng.randrange(3), rng.getrandbits(40),
                   rng.choice((8, 64, 4096)),
                   latency_ns=rng.randrange(20_000),
                   slot=rng.randrange(8))
    return log.finalize()


class TestOpLogPersistence:
    def test_save_load_round_trip_random_streams(self, tmp_path):
        # Property-style: any recorded stream must survive the .npz
        # round trip column-for-column.
        for trial in range(8):
            rng = random.Random(1995 + trial)
            log = _random_log(rng, rng.randint(0, 200))
            path = str(tmp_path / f"log{trial}.npz")
            log.save(path)
            loaded = OpLog.load(path)
            assert loaded.meta == log.meta
            assert loaded.kind_names == log.kind_names
            for col in COLUMNS:
                assert np.array_equal(loaded.columns[col],
                                      log.columns[col])
                assert loaded.columns[col].dtype == log.columns[col].dtype

    def test_multi_log_archive_round_trip(self, tmp_path):
        rng = random.Random(7)
        logs = {"small": _random_log(rng, 50),
                "large": _random_log(rng, 120)}
        path = str(tmp_path / "suite.npz")
        save_oplogs(path, logs)
        loaded = load_oplogs(path)
        assert sorted(loaded) == ["large", "small"]
        for name, log in logs.items():
            assert loaded[name].meta == log.meta
            for col in COLUMNS:
                assert np.array_equal(loaded[name].columns[col],
                                      log.columns[col])

    def test_jsonable_round_trip(self):
        log = _random_log(random.Random(3), 40)
        clone = OpLog.from_jsonable(
            json.loads(json.dumps(log.to_jsonable())))
        for col in COLUMNS:
            assert np.array_equal(clone.columns[col], log.columns[col])

    def test_stream_partitions_by_cell(self):
        log = _random_log(random.Random(11), 100)
        total = sum(len(log.stream(c)["time_ns"]) for c in log.cells())
        assert total == len(log)
        for c in log.cells():
            assert (log.stream(c)["cell"] == c).all()

    def test_divergence_point_identical_logs(self):
        log = _random_log(random.Random(5), 30)
        diff = divergence_point(log, log)
        assert diff["divergence_ns"] is None
        assert diff["identical_prefix"] == len(log)
        assert diff["identical_fraction"] == 1.0


class TestReplayVsLiveGolden:
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    def test_counters_byte_identical(self, config):
        result = compare_replay(config)
        assert result["match"], result["mismatches"]
        assert result["replayed_from_trace"] > 0

    def test_moved_fault_replays_around_divergence(self):
        # The sweep moves the injection time away from the recorded
        # schedule: the prefix replays, the disturbed window falls back
        # to live execution, and the counters must still match.
        sweep = run_replay_sweep("small", trials=2)
        assert sweep["counters_match"]
        for row in sweep["rows"]:
            assert row["counters_match"], row["mismatches"]
            assert row["replayed_from_trace"] > 0
            # A moved fault must actually exercise the fallback path.
            assert row["fallback_wakeups"] > 0 or row["desyncs"] > 0

    def test_composes_with_shard_lanes(self):
        result = compare_replay("small", shards=2)
        assert result["match"], result["mismatches"]
        assert result["replayed_from_trace"] > 0

    def test_record_then_replay_row(self):
        logs = record_traces(["small"])
        live = run_throughput("small")
        rep = run_throughput("small", replay=logs["small"])
        for key in ("events", "accesses", "driver_accesses",
                    "discarded_pages"):
            assert rep[key] == live[key]
        assert rep["replay"]["replayed_from_trace"] > 0


class TestReplayEnvEscape:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("HIVE_REPLAY", raising=False)
        assert replay_from_env() is True

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("HIVE_REPLAY", "0")
        assert replay_from_env() is False

    def test_disabled_replay_runs_live(self, monkeypatch):
        logs = record_traces(["small"])
        monkeypatch.setenv("HIVE_REPLAY", "0")
        row = run_throughput("small", replay=logs["small"])
        assert "replay" not in row


class TestReplayObservability:
    def test_merge_tier_snapshots_folds_replay(self):
        snap = {
            "coherence": {"memo_hits": 10, "inline_batches": 2,
                          "vector_batches": 1, "scalar_batches": 0},
            "rpc": {"fast_path": 5, "slow_path": 1},
            "engine": None,
            "replay": {"enabled": True, "trace_rows": 100, "chains": 4,
                       "replayed_from_trace": 80, "fallback_wakeups": 20,
                       "desyncs": 1, "resyncs": 1,
                       "trace_hit_rate": 0.8},
        }
        merged = merge_tier_snapshots([snap, snap])
        rep = merged["replay"]
        assert rep["replayed_from_trace"] == 160
        assert rep["fallback_wakeups"] == 40
        assert rep["trace_hit_rate"] == 0.8


class TestGzipArtifacts:
    def test_jsonl_round_trip_compressed_and_plain(self, tmp_path):
        rows = [{"type": "event", "time_ns": i, "category": "rpc"}
                for i in range(5)]
        for name in ("spans.jsonl", "spans.jsonl.gz"):
            path = str(tmp_path / name)
            with open_artifact(path, "w") as fh:
                for row in rows:
                    fh.write(json.dumps(row) + "\n")
            assert load_jsonl(path) == rows
        # The .gz variant must really be gzip-compressed on disk.
        raw = (tmp_path / "spans.jsonl.gz").read_bytes()
        assert raw[:2] == b"\x1f\x8b"

    def test_json_round_trip_compressed(self, tmp_path):
        payload = {"traceEvents": [{"ph": "X", "ts": 1.0}]}
        path = str(tmp_path / "trace.json.gz")
        with open_artifact(path, "w") as fh:
            json.dump(payload, fh)
        assert load_json(path) == payload


class TestInjectReplayCampaign:
    def test_cpu_cap_warning(self, capsys):
        assert _warn_cpu_cap(10_000, 1) is True
        assert "capped" in capsys.readouterr().err
        assert _warn_cpu_cap(1, 1) is False

    def test_fault_seed_sweep_diffs_against_base(self):
        payload = run_inject_campaign(
            ["hw_random"], trials=2, seed_base=7, workers=1, replay=True)
        assert payload["parallel"]["cpu_capped"] in (False, True)
        stream = payload["replay"]["hw_random"]
        assert stream["base_fault_seed"] == 7
        assert stream["trace_rows"] > 0
        (trial,) = stream["trials"]
        assert trial["fault_seed"] == 8
        # A moved fault schedule must eventually diverge the op stream.
        assert trial["divergence_ns"] is not None
        assert 0 < trial["identical_prefix"] < stream["trace_rows"]
        # Both trials ran the same workload seed and stayed contained.
        row = payload["scenarios"]["hw_random"]
        assert row["contained"] == row["trials"] == 2
