"""Unit tests for synchronization primitives."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import FifoStore, Mutex, Resource, Semaphore, StoreFull


class TestMutex:
    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        m = Mutex(sim)
        ev = m.acquire()
        assert ev.triggered and m.locked

    def test_fifo_handoff(self):
        sim = Simulator()
        m = Mutex(sim)
        order = []

        def worker(tag, hold):
            yield m.acquire()
            order.append(tag)
            yield sim.timeout(hold)
            m.release()

        for i in range(3):
            sim.process(worker(i, 10))
        sim.run()
        assert order == [0, 1, 2]
        assert not m.locked

    def test_try_acquire(self):
        sim = Simulator()
        m = Mutex(sim)
        assert m.try_acquire()
        assert not m.try_acquire()
        m.release()
        assert m.try_acquire()

    def test_release_unlocked_raises(self):
        with pytest.raises(SimulationError):
            Mutex(Simulator()).release()

    def test_contention_metric(self):
        sim = Simulator()
        m = Mutex(sim)

        def worker():
            yield m.acquire()
            yield sim.timeout(5)
            m.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert m.total_acquires == 2
        assert m.contended_acquires == 1


class TestSemaphore:
    def test_down_consumes_value(self):
        sim = Simulator()
        s = Semaphore(sim, value=2)
        assert s.down().triggered
        assert s.down().triggered
        assert not s.down().triggered
        assert s.value == 0

    def test_up_wakes_waiter_fifo(self):
        sim = Simulator()
        s = Semaphore(sim, value=0)
        first, second = s.down(), s.down()
        s.up()
        assert first.triggered and not second.triggered

    def test_negative_initial_value_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(Simulator(), value=-1)


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        r = Resource(sim, capacity=2)
        a, b, c = r.request(), r.request(), r.request()
        assert a.triggered and b.triggered and not c.triggered
        assert r.in_use == 2 and r.available == 0
        r.release()
        assert c.triggered

    def test_release_idle_raises(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=1).release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)


class TestFifoStore:
    def test_put_then_get(self):
        sim = Simulator()
        st = FifoStore(sim)
        st.put("a")
        got = st.get()
        assert got.triggered and got.value == "a"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        st = FifoStore(sim)
        got = st.get()
        assert not got.triggered
        st.put("x")
        assert got.value == "x"

    def test_fifo_ordering(self):
        sim = Simulator()
        st = FifoStore(sim)
        for item in (1, 2, 3):
            st.put(item)
        assert [st.get().value for _ in range(3)] == [1, 2, 3]

    def test_capacity_nonblocking_rejects(self):
        sim = Simulator()
        st = FifoStore(sim, capacity=1, block_on_full=False)
        assert st.try_put("a")
        assert not st.try_put("b")
        assert st.rejected_puts == 1

    def test_capacity_blocking_put_waits(self):
        sim = Simulator()
        st = FifoStore(sim, capacity=1)
        st.put("a")
        pending = st.put("b")
        assert not pending.triggered
        got = st.get()
        assert got.value == "a"
        assert pending.triggered
        assert st.get().value == "b"

    def test_nonblocking_full_put_fails_event(self):
        sim = Simulator(crash_on_process_error=False)
        st = FifoStore(sim, capacity=1, block_on_full=False)
        st.put("a")

        def prog():
            try:
                yield st.put("b")
            except StoreFull:
                return "full"

        p = sim.process(prog())
        sim.run()
        assert p.value == "full"

    def test_drain(self):
        sim = Simulator()
        st = FifoStore(sim)
        st.put(1)
        st.put(2)
        assert st.drain() == [1, 2]
        assert len(st) == 0
