"""Soak test: repeated fail + reintegrate cycles under a live mix.

The long-running-system scenario the paper motivates ("scheduled hardware
maintenance and kernel software upgrades can proceed transparently to
applications, one cell at a time"): cells are killed and rebooted in
rotation while a synthetic multiprogrammed workload runs, and after every
cycle the whole system must satisfy the consistency invariants.
"""

import pytest

from repro.core.hive import boot_hive
from repro.core.invariants import check_system
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.workloads.base import Platform
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

from tests.helpers import run_program


class TestSyntheticWorkload:
    def _platform(self, seed=1):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=seed))
        for i, d in enumerate(("/synth/a", "/synth/b", "/synth/c")):
            hive.namespace.mount(d, (i + 1) % 4)
        return Platform(hive)

    def test_mix_completes_and_verifies(self):
        platform = self._platform()
        workload = SyntheticWorkload(SyntheticConfig(jobs=6,
                                                     rounds_per_job=8))
        result = workload.run(platform)
        assert result.jobs_completed == 6
        assert result.outputs_ok, result.output_errors[:3]
        # The mix actually exercised several op kinds.
        assert len([op for op, n in workload.ops_run.items() if n]) >= 3

    def test_replays_identically(self):
        def run_once():
            platform = self._platform(seed=9)
            workload = SyntheticWorkload(SyntheticConfig(jobs=4,
                                                         rounds_per_job=6))
            result = workload.run(platform)
            return (result.elapsed_ns, tuple(sorted(workload.ops_run.items())))

        assert run_once() == run_once()

    def test_weights_shift_the_mix(self):
        platform = self._platform()
        cfg = SyntheticConfig(jobs=4, rounds_per_job=10,
                              w_file_write=0.0, w_file_read=0.0,
                              w_fork_child=0.0, w_anon_touch=1.0,
                              w_noop=0.0)
        workload = SyntheticWorkload(cfg)
        workload.run(platform)
        assert workload.ops_run.get("anon_touch", 0) >= 30
        assert "file_write" not in workload.ops_run


class TestReintegrationSoak:
    def test_rolling_cell_reboots_under_load(self):
        """Kill cells 3, 2, 1 in rotation (each reintegrating before the
        next failure) while synthetic jobs run; invariants must hold at
        every step and the final system is whole again."""
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=31),
                         reintegrate=True)
        for i, d in enumerate(("/synth/a", "/synth/b", "/synth/c")):
            hive.namespace.mount(d, 0)  # keep files on the stable cell
        platform = Platform(hive)
        workload = SyntheticWorkload(SyntheticConfig(
            jobs=4, rounds_per_job=60, compute_per_round_ns=40_000_000))

        threads = []
        results: dict = {}
        for job in range(workload.config.jobs):
            _p, t = platform.spawn_init(
                job, workload.job_program(job, results), f"soak{job}")
            threads.append(t.sim_process)

        directory_sizes = []
        for cycle, victim in enumerate((3, 2, 1)):
            sim.run(until=sim.now + 500_000_000)
            hive.machine.halt_node(victim)
            # Detection + recovery + diagnostics + reboot.
            sim.run(until=sim.now + 4_000_000_000)
            assert hive.registry.is_live(victim), \
                f"cycle {cycle}: cell {victim} did not reintegrate"
            problems = check_system(hive)
            assert problems == [], f"cycle {cycle}: {problems[:3]}"
            directory_sizes.append(hive.machine.coherence.directory_size())

        # Emptied directory entries must be pruned, not left behind: the
        # line directory may not grow monotonically across reintegration
        # rounds (it used to leak one dead entry per invalidated line).
        assert not (directory_sizes[0] < directory_sizes[1]
                    < directory_sizes[2]), directory_sizes
        assert directory_sizes[-1] <= directory_sizes[0], directory_sizes

        sim.run_until_event(sim.all_of(threads),
                            deadline=sim.now + 600_000_000_000)
        assert hive.registry.live_cell_ids() == [0, 1, 2, 3]
        assert hive.registry.reboots == 3
        # Job 0 ran on the never-killed cell and must have completed.
        assert 0 in results
        assert check_system(hive) == []

    def test_wax_survives_rolling_reboots(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=33),
                         reintegrate=True, with_wax=True)
        for victim in (3, 2):
            sim.run(until=sim.now + 400_000_000)
            hive.machine.halt_node(victim)
            sim.run(until=sim.now + 4_000_000_000)
        wax = hive.registry.wax
        assert wax.restarts >= 2
        sim.run(until=sim.now + 300_000_000)
        # The final incarnation spans the whole (reintegrated) machine.
        assert set(wax.snapshot) == {0, 1, 2, 3}
