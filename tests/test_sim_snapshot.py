"""Snapshot-fork scenario server: the golden contract.

A system forked from a :class:`~repro.sim.snapshot.SystemImage` must be
indistinguishable — on every deterministic counter — from a freshly
booted one, composed with every other execution tier (sharded engine,
trace replay), and the ``HIVE_SNAPSHOT=0`` escape must fall back to
fresh boots without changing any result.
"""

import os

import pytest

from repro.bench.faultexp import FaultExperimentRunner
from repro.bench.throughput import (SNAPSHOT_EQUIV_KEYS, compare_snapshot,
                                    record_traces, run_throughput,
                                    run_throughput_forked)
from repro.sim.snapshot import (SnapshotError, SystemImage, fork_supported,
                                reseed_system, snapshot_enabled)

pytestmark = pytest.mark.skipif(
    not fork_supported(), reason="snapshot fork needs os.fork")


def _boot_counter_system(value=0):
    """Tiny picklable stand-in for a booted system."""
    return {"value": value, "log": []}


def _bump(system, by):
    system["value"] += by
    system["log"].append(by)
    return dict(system)


def _explode(system):
    raise ValueError("exploded in the child")


class TestSystemImage:
    def test_fork_inherits_boot_state(self):
        with SystemImage(_boot_counter_system, 10) as image:
            assert image.mode == "fork"
            assert image.run(_bump, 5) == {"value": 15, "log": [5]}

    def test_forks_are_independent(self):
        # Copy-on-write: one run's mutations never leak into the next.
        with SystemImage(_boot_counter_system, 10) as image:
            assert image.run(_bump, 5)["value"] == 15
            assert image.run(_bump, 7)["value"] == 17
            assert image.forks == 2
            assert image.fork_wall_s_last > 0.0

    def test_child_error_propagates(self):
        with SystemImage(_boot_counter_system) as image:
            with pytest.raises(SnapshotError, match="exploded"):
                image.run(_explode)
            # The holder survives a failed run.
            assert image.run(_bump, 1)["value"] == 1

    def test_boot_error_raises(self):
        def _bad_boot():
            raise RuntimeError("boot failed")
        with pytest.raises(SnapshotError, match="boot failed"):
            SystemImage(_bad_boot)

    def test_unpicklable_fn_raises(self):
        extra = 3
        with SystemImage(_boot_counter_system) as image:
            with pytest.raises(SnapshotError, match="picklable"):
                image.run(lambda system: system["value"] + extra)

    def test_closed_image_refuses_runs(self):
        image = SystemImage(_boot_counter_system)
        image.close()
        assert image.closed
        with pytest.raises(SnapshotError, match="closed"):
            image.run(_bump, 1)

    def test_boot_fallback_mode(self, monkeypatch):
        monkeypatch.setenv("HIVE_SNAPSHOT", "0")
        assert not snapshot_enabled()
        with SystemImage(_boot_counter_system, 10) as image:
            assert image.mode == "boot"
            assert image.run(_bump, 5)["value"] == 15
            # Boot mode re-boots per run: no state carries over either.
            assert image.run(_bump, 7)["value"] == 17


class TestSnapshotGolden:
    """Fork-then-run must equal fresh-boot-then-run, byte for byte."""

    @pytest.mark.parametrize("config", ["small", "medium", "large"])
    def test_forked_matches_boot(self, config):
        result = compare_snapshot(config)
        assert result["mode"] == "fork"
        assert result["match"], result["mismatches"]

    def test_forked_matches_boot_sharded(self):
        # Composition with the cell-sharded engine (HIVE_SHARDS=2).
        result = compare_snapshot("small", shards=2)
        assert result["match"], result["mismatches"]

    def test_forked_matches_boot_replay(self):
        # Composition with trace replay: a forked system replaying a
        # recorded op trace still matches the fresh-boot live run.
        log = record_traces(["small"])["small"]
        result = compare_snapshot("small", replay_log=log)
        assert result["match"], result["mismatches"]

    def test_reseeded_fork_matches_fresh_seed(self):
        # The image boots at the default seed; a run at seed 7 must
        # match a fresh boot at seed 7 (reseed_system really rewinds).
        forked = run_throughput_forked("small", seed=7, channels=True)
        fresh = run_throughput("small", seed=7, channels=True)
        for key in SNAPSHOT_EQUIV_KEYS:
            assert forked.get(key) == fresh.get(key), key
        assert forked["snapshot"] == "fork"
        assert forked["fork_wall_s"] > 0.0

    def test_escape_hatch_still_matches(self, monkeypatch):
        monkeypatch.setenv("HIVE_SNAPSHOT", "0")
        result = compare_snapshot("small")
        assert result["mode"] == "boot"
        assert result["match"], result["mismatches"]


def _raise_on_boot(system):
    raise RuntimeError("on_boot ran in the child")


class TestFaultexpSnapshot:
    def test_forked_trial_matches_fresh(self):
        fresh = FaultExperimentRunner(agreement="oracle")
        base = fresh.run_trial("hw_process_creation", seed=5)
        forked = FaultExperimentRunner(agreement="oracle")
        forked.make_image()
        try:
            trial = forked.run_trial("hw_process_creation", seed=5)
            again = forked.run_trial("hw_process_creation", seed=5)
            assert forked.last_setup_wall_s > 0.0
        finally:
            forked.image.close()
        assert trial.to_dict() == base.to_dict()
        assert again.to_dict() == base.to_dict()

    def test_on_boot_runs_in_forked_child(self):
        # Satellite (b): on_boot must fire for forked systems too.  A
        # raising hook proves both invocation and error propagation.
        runner = FaultExperimentRunner(agreement="oracle",
                                       on_boot=_raise_on_boot)
        runner.make_image()
        try:
            with pytest.raises(SnapshotError,
                               match="on_boot ran in the child"):
                runner.run_trial("hw_process_creation", seed=5)
        finally:
            runner.image.close()


class TestCampaignSnapshot:
    def test_snapshot_campaign_matches_fresh(self):
        from repro.bench.parallel import run_inject_campaign

        fresh = run_inject_campaign(["hw_process_creation"], trials=2,
                                    workers=1, snapshot=False)
        forked = run_inject_campaign(["hw_process_creation"], trials=2,
                                     workers=1, snapshot=True)
        assert not fresh.get("failures") and not forked.get("failures")
        for key in ("scenarios", "availability", "tiers", "audit"):
            assert forked.get(key) == fresh.get(key), key
        snap = forked["snapshot"]
        assert snap["mode"] == "fork"
        assert snap["trials"] == 2
        assert snap["setup_wall_s_mean"] > 0.0
        assert fresh["snapshot"]["mode"] == "boot"
        assert fresh["snapshot"]["amortization_x"] == 1.0


class TestReseed:
    def test_reseed_resets_streams(self):
        from repro.bench.throughput import boot_bench_system

        system = boot_bench_system("small")
        rng = system.machine.rng
        rng.stream("x").randint(0, 100)
        reseed_system(system, 7)
        assert system.machine.config.seed == 7
        assert not rng._streams
