"""Tests for the cell-sharded engine and the intercell channels.

The headline gate is the determinism contract from
:mod:`repro.sim.shard`: a sharded bench run must produce byte-identical
deterministic counters (events, accesses, tier attribution, channel
digests) to the sequential engine — the same golden-toggle idiom the
batch/wheel/rpc-fast tests use.
"""

import pytest

from repro.bench.throughput import (SHARD_EQUIV_KEYS, compare_shards,
                                    run_throughput)
from repro.sim.channels import (COH_READ_MISS, COH_WRITE_MISS,
                                SIPS_REQUEST, CellChannels, ChannelOp,
                                ChannelViolation)
from repro.sim.shard import plan_shards, shards_from_env


class TestPlanShards:
    def test_partition_is_contiguous_and_balanced(self):
        cells = list(range(8))
        for shards in (1, 2, 3, 4, 5, 8):
            groups = plan_shards(cells, shards)
            # every cell exactly once, in order (contiguity)
            assert [c for g in groups for c in g] == cells
            assert len(groups) == min(shards, len(cells))
            sizes = [len(g) for g in groups]
            assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_cells_clamps(self):
        groups = plan_shards([3, 1, 2], 16)
        assert groups == [[1], [2], [3]]

    def test_zero_or_negative_means_one_group(self):
        assert plan_shards([0, 1], 0) == [[0, 1]]
        assert plan_shards([0, 1], -3) == [[0, 1]]


class TestShardsFromEnv:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("HIVE_SHARDS", raising=False)
        assert shards_from_env() == 0

    def test_parses_positive(self, monkeypatch):
        monkeypatch.setenv("HIVE_SHARDS", "4")
        assert shards_from_env() == 4

    def test_garbage_and_negative_fall_back(self, monkeypatch):
        monkeypatch.setenv("HIVE_SHARDS", "banana")
        assert shards_from_env() == 0
        monkeypatch.setenv("HIVE_SHARDS", "-2")
        assert shards_from_env() == 0


class TestCellChannels:
    def _channels(self, window=200):
        # nodes 0,1 -> cell 0; nodes 2,3 -> cell 1
        return CellChannels({0: 0, 1: 0, 2: 1, 3: 1}, window,
                            now_fn=lambda: 5000)

    def test_op_tuple_round_trip(self):
        op = ChannelOp(SIPS_REQUEST, 0, 1, 1, 2, 5000, 700)
        clone = ChannelOp.from_tuple(op.to_tuple())
        assert clone.to_tuple() == op.to_tuple()

    def test_intracell_traffic_not_recorded(self):
        ch = self._channels()
        ch.coherence_miss(0, 1, write=False, latency_ns=700)
        assert ch.ops_total == 0
        assert not ch.pending

    def test_intercell_op_recorded_and_drained(self):
        ch = self._channels()
        ch.coherence_miss(1, 2, write=True, latency_ns=700)
        ch.sips(0, 3, "request", latency_ns=1000)
        assert ch.ops_total == 2
        assert ch.ops_by_kind[COH_WRITE_MISS] == 1
        assert ch.ops_by_kind[SIPS_REQUEST] == 1
        batches = ch.drain()
        assert set(batches) == {(0, 1)}
        assert [op.kind for op in batches[0, 1]] == [COH_WRITE_MISS,
                                                     SIPS_REQUEST]
        # drain empties pending; counters and digest persist
        assert not ch.pending
        assert ch.ops_total == 2
        assert ch.digest != 0

    def test_drain_serialized_wire_form(self):
        ch = self._channels()
        ch.coherence_miss(2, 0, write=False, latency_ns=700)
        wire = ch.drain_serialized()
        assert list(wire) == ["1->0"]
        (t,) = wire["1->0"]
        assert ChannelOp.from_tuple(t).kind == COH_READ_MISS

    def test_lookahead_violation_is_fatal_when_strict(self):
        ch = self._channels(window=200)
        with pytest.raises(ChannelViolation):
            ch.publish(COH_READ_MISS, 0, 2, latency_ns=150)
        assert ch.violations == 1
        ch.strict = False
        ch.publish(COH_READ_MISS, 0, 2, latency_ns=150)
        assert ch.violations == 2

    def test_digest_is_order_independent(self):
        # Sequential and sharded runs may dispatch ops tied at one
        # instant in different relative order; the digest must only
        # depend on the multiset of ops.
        a, b = self._channels(), self._channels()
        a.coherence_miss(1, 2, write=True, latency_ns=700)
        a.sips(0, 3, "request", latency_ns=1000)
        b.sips(0, 3, "request", latency_ns=1000)
        b.coherence_miss(1, 2, write=True, latency_ns=700)
        assert a.digest == b.digest
        assert a.snapshot() == b.snapshot()

    def test_window_of(self):
        ch = self._channels(window=200)
        assert ch.window_of(0) == 0
        assert ch.window_of(199) == 0
        assert ch.window_of(200) == 1

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            CellChannels({}, 0)


class TestShardGolden:
    """HIVE_SHARDS must be a pure perf toggle: byte-identical counters."""

    def test_small_sharded_matches_sequential(self):
        seq = run_throughput("small", seed=11, channels=True)
        assert seq["shards"] == 0
        for shards in (2, 4):
            row = run_throughput("small", seed=11, shards=shards)
            assert row["shards"] == shards
            for key in SHARD_EQUIV_KEYS:
                assert row[key] == seq[key], (
                    f"shards={shards} diverged on {key!r}: "
                    f"{row[key]!r} != {seq[key]!r}")
            # The shard machinery must actually have engaged — a
            # trivially-passing gate (no parks, no windows) would prove
            # nothing.
            shard = row["shard"]
            assert shard["parks"] > 0
            assert shard["replayed_wakeups"] > 0
            assert shard["windows_closed"] > 0
            assert row["channels"]["violations"] == 0

    def test_compare_shards_reports_match(self):
        result = compare_shards("small", 2, seed=7)
        assert result["match"], result["mismatches"]
        assert not result["mismatches"]
        assert result["replayed_wakeups"] > 0

    def test_env_flag_drives_bench(self, monkeypatch):
        monkeypatch.setenv("HIVE_SHARDS", "2")
        row = run_throughput("small", seed=11)
        assert row["shards"] == 2
        assert row["shard"]["shards"] == 2
