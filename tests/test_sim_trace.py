"""Tests for the event-tracing utility."""

import pytest

from repro.core.hive import boot_hive
from repro.core.kfaults import CORRUPT_OFF_BY_ONE_WORD, KernelFaultInjector
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.sim.trace import (
    CAT_DETECT,
    CAT_FAULT,
    CAT_PROC,
    CAT_RECOVER,
    NULL_TRACE,
    TraceLog,
    attach_tracing,
)

from tests.helpers import run_program


class TestTraceLog:
    def test_emit_and_select(self):
        log = TraceLog()
        log.emit(100, "a", 0, "first")
        log.emit(200, "b", 1, "second")
        assert len(log.select()) == 2
        assert [e.message for e in log.select(category="a")] == ["first"]
        assert [e.message for e in log.select(cell=1)] == ["second"]
        assert [e.message for e in log.select(since_ns=150)] == ["second"]

    def test_category_filter(self):
        log = TraceLog(categories=["a"])
        log.emit(0, "a", None, "kept")
        log.emit(0, "b", None, "dropped")
        assert len(log.events) == 1

    def test_capacity_bound_keeps_newest(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.emit(i, "a", None, str(i))
        assert len(log.events) == 2
        assert log.dropped == 3
        # Ring buffer: the *end* of the timeline survives, not the start.
        assert [e.message for e in log.events] == ["3", "4"]

    def test_render_format(self):
        log = TraceLog()
        log.emit(1_500_000, "fault", 3, "boom")
        text = log.render()
        assert "1.500 ms" in text
        assert "cell 3" in text and "boom" in text

    def test_null_trace_is_inert(self):
        NULL_TRACE.emit(0, "x", None, "ignored")
        assert not NULL_TRACE.wants("x")

    def test_counts_by_category(self):
        log = TraceLog()
        log.emit(0, "a", None, "")
        log.emit(0, "a", None, "")
        log.emit(0, "b", None, "")
        assert log.counts_by_category() == {"a": 2, "b": 1}


class TestSystemTracing:
    def test_fault_timeline_recorded(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=9))
        log = attach_tracing(hive)
        hive.injector.inject_at(50_000_000, FaultInjector.NODE_FAILURE, 3)
        sim.run(until=sim.now + 2_000_000_000)
        assert log.select(category=CAT_FAULT)
        assert log.select(category=CAT_DETECT)
        recover = log.select(category=CAT_RECOVER)
        assert recover and "dead=[3]" in recover[0].message
        # The timeline is ordered.
        times = [e.time_ns for e in log.events]
        assert times == sorted(times)

    def test_panic_traced(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=9))
        log = attach_tracing(hive)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_anon(32)
            for i in range(32):
                yield from ctx.touch(region, i, write=True)
                yield from ctx.compute(10_000_000)
            out["late"] = True

        cell = hive.cell(2)
        proc = cell.create_process("victim")
        cell.start_thread(proc, prog)
        sim.run(until=sim.now + 20_000_000)
        KernelFaultInjector(hive).corrupt_address_map(
            2, CORRUPT_OFF_BY_ONE_WORD, wild_writes=0)
        sim.run(until=sim.now + 2_000_000_000)
        panics = [e for e in log.select(category=CAT_PROC)
                  if "PANIC" in e.message]
        assert panics and panics[0].cell == 2

    def test_cell_registered_after_attach_is_traced(self):
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(seed=9),
                         reintegrate=True)
        log = attach_tracing(hive)
        hive.injector.inject_at(50_000_000, FaultInjector.NODE_FAILURE, 3)
        sim.run(until=sim.now + 60_000_000_000)
        cell3 = hive.registry.cell_object(3)
        assert cell3.alive and cell3.incarnation == 1
        # The reintegrated cell was registered *after* attach_tracing; the
        # registry observer must have wired its hint path.
        assert cell3.detector.observers
        before = len(log.select(category=CAT_DETECT))
        cell3.failure_hint(0, "synthetic hint from reintegrated cell")
        after = log.select(category=CAT_DETECT)
        assert len(after) == before + 1
        assert after[-1].cell == 3
