"""Unit and property tests for the coherence controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.coherence import CoherenceController
from repro.hardware.errors import BusError, FirewallViolation
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import PhysicalMemory
from repro.hardware.params import HardwareParams


def make_coherence(num_nodes=4, firewall=True):
    params = HardwareParams(num_nodes=num_nodes)
    mem = PhysicalMemory(params, firewall_enabled=firewall)
    return params, mem, CoherenceController(params, mem,
                                            Interconnect(params))


class TestLatencies:
    def test_first_read_is_a_miss(self):
        params, _mem, coh = make_coherence()
        assert coh.read(0, 0x1000) == params.mem_latency_ns

    def test_repeat_read_is_a_hit(self):
        params, _mem, coh = make_coherence()
        coh.read(0, 0x1000)
        assert coh.read(0, 0x1000) == params.cycles(1)

    def test_local_write_miss_pays_firewall_check(self):
        params, _mem, coh = make_coherence()
        lat = coh.write(0, 0x1000)
        assert lat == params.mem_latency_ns + params.firewall_check_ns

    def test_write_hit_by_owner_is_cheap(self):
        params, _mem, coh = make_coherence()
        coh.write(0, 0x1000)
        assert coh.write(0, 0x1000) == params.cycles(1)

    def test_firewall_disabled_removes_check_latency(self):
        params, _mem, coh = make_coherence(firewall=False)
        assert coh.write(0, 0x1000) == params.mem_latency_ns

    def test_remote_write_needs_grant(self):
        params, mem, coh = make_coherence()
        addr = params.memory_per_node  # node 1's memory
        with pytest.raises(FirewallViolation):
            coh.write(0, addr)
        mem.firewalls[1].grant_node(params.pages_per_node, 1, 0)
        lat = coh.write(0, addr)
        assert lat == params.mem_latency_ns + params.firewall_check_ns

    def test_read_of_failed_node_bus_errors(self):
        params, mem, coh = make_coherence()
        mem.fail_node(1)
        with pytest.raises(BusError):
            coh.read(0, params.memory_per_node)


class TestProtocol:
    def test_write_invalidates_sharers(self):
        params, _mem, coh = make_coherence()
        coh.read(0, 0x2000)
        coh.read(1, 0x2000)
        coh.write(0, 0x2000)
        assert coh.stats.invalidations >= 1
        # The invalidated sharer must now miss; the line is dirty at the
        # writer, so the read also pays the writeback firewall check.
        assert coh.read(1, 0x2000) == (params.mem_latency_ns
                                       + params.firewall_check_ns)

    def test_dirty_remote_intervention_downgrades_owner(self):
        params, _mem, coh = make_coherence()
        addr = params.memory_per_node + 0x2000  # node 1's own memory
        coh.write(1, addr)
        # Reader fetches from the dirty owner; both end up sharers.  The
        # owner's writeback passes a firewall check, which is charged.
        assert coh.read(0, addr) == (params.mem_latency_ns
                                     + params.firewall_check_ns)
        assert coh.read(1, addr) == params.cycles(1)

    def test_clock_line_ping_pong(self):
        """The heartbeat line: writer dirties it each tick, monitor's
        read always misses — the 0.7 us in the careful-reference cost."""
        params, _mem, coh = make_coherence()
        addr = params.memory_per_node + 0x40
        miss_lat = params.mem_latency_ns + params.firewall_check_ns
        for _tick in range(5):
            coh.write(1, addr)
            assert coh.read(0, addr) == miss_lat

    def test_remote_write_miss_stats(self):
        params, mem, coh = make_coherence()
        mem.firewalls[1].grant_node(params.pages_per_node, 1, 0)
        coh.write(0, params.memory_per_node)
        assert coh.stats.remote_write_misses == 1
        assert coh.stats.avg_remote_write_miss_ns == (
            params.mem_latency_ns + params.firewall_check_ns)


class TestFailureInteraction:
    def test_dirty_lines_of_failed_node_reported(self):
        params, mem, coh = make_coherence()
        mem.firewalls[0].grant_node(0, 0, 1)
        coh.write(1, 0x80)  # cpu 1 dirties a line in node 0's frame 0
        frames = coh.frames_with_dirty_lines_owned_by_node(1)
        assert frames == {0}

    def test_lost_frames_subset_of_writable_property(self):
        """Fault-model guarantee: a node can only lose lines it was
        authorized to write (firewall checked every ownership request)."""
        params, mem, coh = make_coherence()
        granted = set()
        for frame in range(3):
            mem.firewalls[0].grant_node(frame, 0, 1)
            granted.add(frame)
        for frame in granted:
            coh.write(1, frame * params.page_size)
        lost = coh.frames_with_dirty_lines_owned_by_node(1)
        writable = set(mem.frames_writable_by_node(1)) | set(
            range(params.pages_per_node, 2 * params.pages_per_node))
        assert lost <= writable

    @given(ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 15),
                                  st.booleans()), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_lost_lines_always_authorized(self, ops):
        """Property over arbitrary access interleavings."""
        params, mem, coh = make_coherence(firewall=True)
        # Grant everyone everything on node 0's first 16 frames so writes
        # succeed; the property is about dirty-ownership accounting.
        for frame in range(16):
            for node in range(1, 4):
                mem.firewalls[0].grant_node(frame, 0, node)
        for cpu, frame, is_write in ops:
            addr = frame * params.page_size
            if is_write:
                coh.write(cpu, addr)
            else:
                coh.read(cpu, addr)
        for node in range(4):
            lo = node * params.cpus_per_node
            hi = lo + params.cpus_per_node
            for frame in coh.frames_with_dirty_lines_owned_by_node(node):
                assert any(mem.write_allowed(frame, cpu)
                           for cpu in range(lo, hi))

    def test_drop_node_cache_state(self):
        params, mem, coh = make_coherence()
        coh.write(0, 0x100)
        coh.drop_node_cache_state(0)
        assert coh.frames_with_dirty_lines_owned_by_node(0) == set()

    def test_invalidate_frame(self):
        params, _mem, coh = make_coherence()
        coh.read(0, 0x100)
        coh.invalidate_frame(0)
        assert coh.read(0, 0x100) == params.mem_latency_ns


def _lines_per_node(params):
    return params.memory_per_node // params.cache_line_size


def _stats_key(coh):
    s = coh.stats
    return (s.read_hits, s.read_misses, s.write_hits, s.write_misses,
            s.remote_write_misses, s.invalidations, s.firewall_checks)


def _scalar_replay(coh, params, cpu, lines, ops):
    """Reference semantics: the plain per-line scalar loop."""
    total = 0
    for line, op in zip(lines, ops):
        addr = line * params.cache_line_size
        total += coh.write(cpu, addr) if op else coh.read(cpu, addr)
    return total


class TestBatchedAccess:
    """access_batch/access_prepared must be bit-equivalent to the
    scalar loop in latency, stats, and directory state."""

    def _mixed_case(self, n=96):
        """Unique local lines, warmed so the batch mixes hits/misses."""
        params, mem, coh = make_coherence()
        lines = list(range(0, 2 * n, 2))[:n]
        ops = [(i % 3 == 0) for i in range(n)]  # every third a write
        # Warm half the lines so the batch mixes hits and misses.
        for line in lines[::2]:
            coh.read(0, line * params.cache_line_size)
        return params, mem, coh, lines, ops

    def _compare(self, make_case, vector_min_hit=False):
        params, _m, coh_a, lines, ops = make_case()
        _p, _m2, coh_b, _l, _o = make_case()
        lat_batch = coh_a.access_batch(0, lines, ops)
        lat_scalar = _scalar_replay(coh_b, params, 0, lines, ops)
        assert lat_batch == lat_scalar
        assert _stats_key(coh_a) == _stats_key(coh_b)
        assert coh_a.last_batch_completed == len(lines)
        for line in lines:
            a, b = coh_a._lines.get(line), coh_b._lines.get(line)
            assert (a.owner, a.sharers) == (b.owner, b.sharers)
        return coh_a

    def test_vectorized_tier_matches_scalar(self):
        coh = self._compare(self._mixed_case)
        # n >= BATCH_VECTOR_MIN and unique lines: the dense mirrors were
        # built, and they must agree with the sparse directory.
        assert coh._owner_arr is not None
        assert coh.verify_batch_index() == []

    def test_inline_tier_matches_scalar(self):
        def small_case():
            params, mem, coh, lines, ops = self._mixed_case(n=12)
            return params, mem, coh, lines, ops
        coh = self._compare(small_case)
        assert coh._owner_arr is None  # below BATCH_VECTOR_MIN

    def test_duplicate_lines_match_scalar(self):
        def dup_case():
            params, mem, coh, lines, ops = self._mixed_case()
            lines[1] = lines[0]  # duplicates force the inline tier
            return params, mem, coh, lines, ops
        self._compare(dup_case)

    def test_scalar_fallback_when_disabled(self):
        def disabled_case():
            params, mem, coh, lines, ops = self._mixed_case()
            coh.batch_enabled = False  # the HIVE_BATCH=0 escape hatch
            return params, mem, coh, lines, ops
        self._compare(disabled_case)

    def test_mirror_stays_consistent_after_scalar_traffic(self):
        params, _m, coh, lines, ops = self._mixed_case()
        coh.access_batch(0, lines, ops)
        # Scalar reads/writes from other CPUs mutate the directory; the
        # mirrors must track every mutation site.
        coh.read(1, lines[0] * params.cache_line_size)
        coh.write(0, lines[1] * params.cache_line_size)
        coh.write(1, (lines[2] + _lines_per_node(params))
                  * params.cache_line_size)  # another node entirely
        coh.drop_node_cache_state(2)
        assert coh.verify_batch_index() == []

    def test_firewall_violation_at_exact_position(self):
        params, mem, coh = make_coherence()
        remote = _lines_per_node(params)  # node 1's first line
        lines = list(range(70)) + [remote] + list(range(70, 80))
        ops = [0] * 70 + [1] + [0] * 10
        _p2, _m2, coh_b = make_coherence()
        with pytest.raises(FirewallViolation):
            coh.access_batch(0, lines, ops)
        with pytest.raises(FirewallViolation):
            _scalar_replay(coh_b, params, 0, lines, ops)
        assert coh.last_batch_completed == 70
        assert _stats_key(coh) == _stats_key(coh_b)

    def test_bus_error_under_faults_at_exact_position(self):
        params, mem, coh = make_coherence()
        _p2, mem_b, coh_b = make_coherence()
        for m in (mem, mem_b):
            m.fail_node(1)
        lines = list(range(10)) + [_lines_per_node(params)] + list(range(10, 20))
        ops = [0] * len(lines)
        with pytest.raises(BusError):
            coh.access_batch(0, lines, ops)
        with pytest.raises(BusError):
            _scalar_replay(coh_b, params, 0, lines, ops)
        assert coh.last_batch_completed == 10
        assert _stats_key(coh) == _stats_key(coh_b)

    def test_out_of_range_line_raises_like_scalar(self):
        from repro.hardware.errors import InvalidPhysicalAddress
        params, _m, coh = make_coherence()
        total_lines = params.num_nodes * _lines_per_node(params)
        lines = [0, 1, total_lines + 5, 2]
        with pytest.raises(InvalidPhysicalAddress):
            coh.access_batch(0, lines, [0, 0, 0, 0])
        assert coh.last_batch_completed == 2


class TestPreparedBatch:
    def test_memo_replay_matches_fresh_run(self):
        params, _m, coh = make_coherence()
        _p2, _m2, coh_b = make_coherence()
        lines = list(range(32))
        ops = [i % 2 for i in range(32)]
        prep = coh.prepare_batch(lines, ops)
        first = coh.access_prepared(0, prep)
        replay = coh.access_prepared(0, prep)  # all-hit: memoized
        assert prep.memo is not None
        scalar_first = _scalar_replay(coh_b, params, 0, lines, ops)
        scalar_replay = _scalar_replay(coh_b, params, 0, lines, ops)
        assert (first, replay) == (scalar_first, scalar_replay)
        assert _stats_key(coh) == _stats_key(coh_b)

    def test_memo_invalidated_by_foreign_write(self):
        params, mem, coh = make_coherence()
        mem.firewalls[0].grant_node(0, 0, 1)  # let node 1 write frame 0
        lines = list(range(8))
        prep = coh.prepare_batch(lines, [0] * 8)
        coh.access_prepared(0, prep)
        coh.access_prepared(0, prep)
        assert prep.memo is not None
        # CPU 1 steals line 0: the home node's generation advances and
        # the memo must not replay stale hit counts.
        coh.write(1, 0)
        hits_before = coh.stats.read_hits
        misses_before = coh.stats.read_misses
        coh.access_prepared(0, prep)
        assert coh.stats.read_misses == misses_before + 1  # re-fetched
        assert coh.stats.read_hits == hits_before + 7

    def test_prepare_rejects_out_of_range(self):
        params, _m, coh = make_coherence()
        total_lines = params.num_nodes * _lines_per_node(params)
        with pytest.raises(ValueError):
            coh.prepare_batch([total_lines], [0])
