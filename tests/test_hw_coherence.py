"""Unit and property tests for the coherence controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.coherence import CoherenceController
from repro.hardware.errors import BusError, FirewallViolation
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import PhysicalMemory
from repro.hardware.params import HardwareParams


def make_coherence(num_nodes=4, firewall=True):
    params = HardwareParams(num_nodes=num_nodes)
    mem = PhysicalMemory(params, firewall_enabled=firewall)
    return params, mem, CoherenceController(params, mem,
                                            Interconnect(params))


class TestLatencies:
    def test_first_read_is_a_miss(self):
        params, _mem, coh = make_coherence()
        assert coh.read(0, 0x1000) == params.mem_latency_ns

    def test_repeat_read_is_a_hit(self):
        params, _mem, coh = make_coherence()
        coh.read(0, 0x1000)
        assert coh.read(0, 0x1000) == params.cycles(1)

    def test_local_write_miss_pays_firewall_check(self):
        params, _mem, coh = make_coherence()
        lat = coh.write(0, 0x1000)
        assert lat == params.mem_latency_ns + params.firewall_check_ns

    def test_write_hit_by_owner_is_cheap(self):
        params, _mem, coh = make_coherence()
        coh.write(0, 0x1000)
        assert coh.write(0, 0x1000) == params.cycles(1)

    def test_firewall_disabled_removes_check_latency(self):
        params, _mem, coh = make_coherence(firewall=False)
        assert coh.write(0, 0x1000) == params.mem_latency_ns

    def test_remote_write_needs_grant(self):
        params, mem, coh = make_coherence()
        addr = params.memory_per_node  # node 1's memory
        with pytest.raises(FirewallViolation):
            coh.write(0, addr)
        mem.firewalls[1].grant_node(params.pages_per_node, 1, 0)
        lat = coh.write(0, addr)
        assert lat == params.mem_latency_ns + params.firewall_check_ns

    def test_read_of_failed_node_bus_errors(self):
        params, mem, coh = make_coherence()
        mem.fail_node(1)
        with pytest.raises(BusError):
            coh.read(0, params.memory_per_node)


class TestProtocol:
    def test_write_invalidates_sharers(self):
        params, _mem, coh = make_coherence()
        coh.read(0, 0x2000)
        coh.read(1, 0x2000)
        coh.write(0, 0x2000)
        assert coh.stats.invalidations >= 1
        # The invalidated sharer must now miss; the line is dirty at the
        # writer, so the read also pays the writeback firewall check.
        assert coh.read(1, 0x2000) == (params.mem_latency_ns
                                       + params.firewall_check_ns)

    def test_dirty_remote_intervention_downgrades_owner(self):
        params, _mem, coh = make_coherence()
        addr = params.memory_per_node + 0x2000  # node 1's own memory
        coh.write(1, addr)
        # Reader fetches from the dirty owner; both end up sharers.  The
        # owner's writeback passes a firewall check, which is charged.
        assert coh.read(0, addr) == (params.mem_latency_ns
                                     + params.firewall_check_ns)
        assert coh.read(1, addr) == params.cycles(1)

    def test_clock_line_ping_pong(self):
        """The heartbeat line: writer dirties it each tick, monitor's
        read always misses — the 0.7 us in the careful-reference cost."""
        params, _mem, coh = make_coherence()
        addr = params.memory_per_node + 0x40
        miss_lat = params.mem_latency_ns + params.firewall_check_ns
        for _tick in range(5):
            coh.write(1, addr)
            assert coh.read(0, addr) == miss_lat

    def test_remote_write_miss_stats(self):
        params, mem, coh = make_coherence()
        mem.firewalls[1].grant_node(params.pages_per_node, 1, 0)
        coh.write(0, params.memory_per_node)
        assert coh.stats.remote_write_misses == 1
        assert coh.stats.avg_remote_write_miss_ns == (
            params.mem_latency_ns + params.firewall_check_ns)


class TestFailureInteraction:
    def test_dirty_lines_of_failed_node_reported(self):
        params, mem, coh = make_coherence()
        mem.firewalls[0].grant_node(0, 0, 1)
        coh.write(1, 0x80)  # cpu 1 dirties a line in node 0's frame 0
        frames = coh.frames_with_dirty_lines_owned_by_node(1)
        assert frames == {0}

    def test_lost_frames_subset_of_writable_property(self):
        """Fault-model guarantee: a node can only lose lines it was
        authorized to write (firewall checked every ownership request)."""
        params, mem, coh = make_coherence()
        granted = set()
        for frame in range(3):
            mem.firewalls[0].grant_node(frame, 0, 1)
            granted.add(frame)
        for frame in granted:
            coh.write(1, frame * params.page_size)
        lost = coh.frames_with_dirty_lines_owned_by_node(1)
        writable = set(mem.frames_writable_by_node(1)) | set(
            range(params.pages_per_node, 2 * params.pages_per_node))
        assert lost <= writable

    @given(ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 15),
                                  st.booleans()), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_lost_lines_always_authorized(self, ops):
        """Property over arbitrary access interleavings."""
        params, mem, coh = make_coherence(firewall=True)
        # Grant everyone everything on node 0's first 16 frames so writes
        # succeed; the property is about dirty-ownership accounting.
        for frame in range(16):
            for node in range(1, 4):
                mem.firewalls[0].grant_node(frame, 0, node)
        for cpu, frame, is_write in ops:
            addr = frame * params.page_size
            if is_write:
                coh.write(cpu, addr)
            else:
                coh.read(cpu, addr)
        for node in range(4):
            lo = node * params.cpus_per_node
            hi = lo + params.cpus_per_node
            for frame in coh.frames_with_dirty_lines_owned_by_node(node):
                assert any(mem.write_allowed(frame, cpu)
                           for cpu in range(lo, hi))

    def test_drop_node_cache_state(self):
        params, mem, coh = make_coherence()
        coh.write(0, 0x100)
        coh.drop_node_cache_state(0)
        assert coh.frames_with_dirty_lines_owned_by_node(0) == set()

    def test_invalidate_frame(self):
        params, _mem, coh = make_coherence()
        coh.read(0, 0x100)
        coh.invalidate_frame(0)
        assert coh.read(0, 0x100) == params.mem_latency_ns
