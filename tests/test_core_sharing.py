"""Tests for logical-level and physical-level memory sharing (Section 5)."""

import pytest

from repro.core.sharing import LOCAL_RESERVE_FRAMES
from repro.unix.errors import FileError, StaleGenerationError
from repro.unix.fs import PAGE

from tests.helpers import run_program


def make_remote_file(hive, path="/shared/f", npages=4, home_node=1):
    """Create a file on cell 1's FS (2-cell hive) and warm it."""
    hive.namespace.mount("/shared", home_node)
    owner = hive.cell(home_node)
    data = bytes([(i * 7) % 256 for i in range(npages * PAGE)])

    def setup(ctx):
        fd = yield from ctx.open(path, "w", create=True)
        yield from ctx.write(fd, data)
        yield from ctx.close(fd)

    run_program(hive, home_node, setup)
    return data


class TestLogicalSharing:
    def test_remote_fault_imports_page(self, hive2):
        make_remote_file(hive2)
        client = hive2.cell(0)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f")
            pte = yield from ctx.touch(region, 0)
            out["frame"] = pte.frame
            out["data_home"] = pte.data_home
            # While mapped, the client holds an extended pfdat in its
            # hash (it is released again when the process exits).
            pf = client.pfdats.by_frame(pte.frame)
            out["extended"] = pf is not None and pf.extended
            out["imported_from"] = pf.imported_from if pf else None

        run_program(hive2, 0, prog)
        assert out["data_home"] == 1
        # The frame belongs to node 1 (the data home's memory).
        assert hive2.params.node_of_frame(out["frame"]) == 1
        assert out["extended"]
        assert out["imported_from"] == 1

    def test_data_home_records_client_in_export(self, hive2):
        make_remote_file(hive2)
        owner = hive2.cell(1)

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f")
            yield from ctx.touch(region, 0)

        run_program(hive2, 0, prog)
        exported = [pf for pf in owner.pfdats.all_pfdats()
                    if 0 in pf.exported_to]
        assert exported, "export must record the client cell"

    def test_second_fault_hits_client_hash(self, hive2):
        """Section 5.2: later faults avoid the RPC."""
        make_remote_file(hive2)
        client = hive2.cell(0)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f")
            yield from ctx.touch(region, 0)
            ctx.process.aspace.unmap_page(client.kernel_id,
                                          region.start_vpn)
            before = client.metrics.counter("faults.remote").value
            t0 = ctx.sim.now
            yield from ctx.touch(region, 0)
            out["latency"] = ctx.sim.now - t0
            out["new_remote"] = (
                client.metrics.counter("faults.remote").value - before)

        run_program(hive2, 0, prog)
        assert out["new_remote"] == 0
        assert out["latency"] == 6_900  # the local-hit fast path

    def test_remote_fault_latency_matches_table_5_2(self, hive2):
        make_remote_file(hive2)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f")
            t0 = ctx.sim.now
            yield from ctx.touch(region, 1)
            out["latency"] = ctx.sim.now - t0

        run_program(hive2, 0, prog)
        assert out["latency"] == 50_700

    def test_writable_import_grants_firewall(self, hive2):
        data = make_remote_file(hive2)
        client = hive2.cell(0)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f", writable=True)
            pte = yield from ctx.touch(region, 0, write=True)
            # The client CPU can now really write node 1's frame.
            client.machine.memory.write_bytes(pte.frame, 0, b"NEW",
                                              cpu=ctx.cpu)
            out["ok"] = True

        run_program(hive2, 0, prog)
        assert out["ok"]
        assert hive2.cell(1).firewall_mgr.remotely_writable_pages() >= 1

    def test_readonly_import_gets_no_grant(self, hive2):
        make_remote_file(hive2)

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f", writable=False)
            yield from ctx.touch(region, 0)

        run_program(hive2, 0, prog)
        assert hive2.cell(1).firewall_mgr.remotely_writable_pages() == 0

    def test_release_returns_page_to_data_home(self, hive2):
        make_remote_file(hive2)
        client, owner = hive2.cell(0), hive2.cell(1)

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f", writable=True)
            yield from ctx.touch(region, 0, write=True)
            # exit: teardown drops the mapping, releasing the import

        run_program(hive2, 0, prog)
        hive2.sim.run(until=hive2.sim.now + 50_000_000)
        # Extended pfdat gone on the client...
        assert not any(pf.extended for pf in client.pfdats.all_pfdats())
        # ...and the data home revoked the write grant.
        assert owner.firewall_mgr.remotely_writable_pages() == 0

    def test_remote_read_write_syscalls(self, hive2):
        data = make_remote_file(hive2, npages=8)
        out = {}

        def prog(ctx):
            fd = yield from ctx.open("/shared/f", "r")
            out["read"] = yield from ctx.read(fd, len(data))
            yield from ctx.close(fd)
            fd = yield from ctx.open("/shared/g", "w", create=True)
            out["wrote"] = yield from ctx.write(fd, b"q" * PAGE * 2)
            yield from ctx.close(fd)

        run_program(hive2, 0, prog)
        assert out["read"] == data
        assert out["wrote"] == 2 * PAGE
        # The written data really lives at the data home.
        owner = hive2.cell(1)
        fs = owner.local_fs_for("/shared/g")
        inode = fs.lookup("/shared/g")
        assert inode.size == 2 * PAGE

    def test_stale_generation_on_remote_fault(self, hive2):
        make_remote_file(hive2)
        owner = hive2.cell(1)
        out = {}

        def prog(ctx):
            region = yield from ctx.map_file("/shared/f")
            fs = owner.local_fs_for("/shared/f")
            fs.bump_generation(fs.lookup("/shared/f"))
            try:
                yield from ctx.touch(region, 0)
            except StaleGenerationError:
                out["stale"] = True

        run_program(hive2, 0, prog)
        assert out["stale"]

    def test_remote_open_missing_file(self, hive2):
        hive2.namespace.mount("/shared", 1)
        out = {}

        def prog(ctx):
            try:
                yield from ctx.open("/shared/missing", "r")
            except FileError as exc:
                out["errno"] = exc.errno

        run_program(hive2, 0, prog)
        assert out["errno"] == "ENOENT"

    def test_remote_unlink(self, hive2):
        make_remote_file(hive2)

        def prog(ctx):
            yield from ctx.unlink("/shared/f")

        run_program(hive2, 0, prog)
        assert not hive2.cell(1).local_fs_for("/shared/f").exists("/shared/f")


class TestCrossCellAnonymous:
    def test_remote_fork_cow_search_imports_parent_page(self, hive2):
        out = {}

        def child(ctx):
            region = ctx.process.aspace.regions[0]
            pte = yield from ctx.touch(region, 0)
            out["data"] = ctx.kernel.machine.memory.read_bytes(
                pte.frame, 0, 5)
            out["child_cell"] = ctx.kernel.kernel_id

        def parent(ctx):
            region = yield from ctx.map_anon(4)
            pte = yield from ctx.touch(region, 0, write=True)
            ctx.kernel.machine.memory.write_bytes(pte.frame, 0, b"SCENE",
                                                  cpu=ctx.cpu)
            pid = yield from ctx.spawn(child, "kid", target_cell=1)
            out["status"] = yield from ctx.waitpid(pid)

        run_program(hive2, 0, parent)
        assert out["child_cell"] == 1
        assert out["data"] == b"SCENE"
        assert out["status"] == 0

    def test_child_write_breaks_cow_locally(self, hive2):
        out = {}

        def child(ctx):
            region = ctx.process.aspace.regions[0]
            pte = yield from ctx.touch(region, 0, write=True)
            out["child_frame_node"] = ctx.kernel.machine.params.node_of_frame(
                pte.frame)

        def parent(ctx):
            region = yield from ctx.map_anon(2)
            yield from ctx.touch(region, 0, write=True)
            pid = yield from ctx.spawn(child, "kid", target_cell=1)
            yield from ctx.waitpid(pid)

        run_program(hive2, 0, parent)
        # The private copy is allocated on the child's cell.
        assert out["child_frame_node"] == 1


class TestPhysicalSharing:
    def test_borrow_and_return(self, hive2):
        borrower, lender = hive2.cell(0), hive2.cell(1)
        out = {}

        def prog():
            result = yield from borrower.rpc.call(
                1, "borrow_frames", {"count": 4})
            out["frames"] = result["frames"]
            for frame in result["frames"]:
                pf = borrower.pfdats.alloc_extended(frame)
                pf.borrowed_from = 1
                borrower.return_borrowed_frame(pf)

        proc = hive2.sim.process(prog())
        hive2.sim.run_until_event(proc,
                                  deadline=hive2.sim.now + 10_000_000_000)
        hive2.sim.run(until=hive2.sim.now + 50_000_000)
        assert len(out["frames"]) == 4
        assert lender.pfdats.reserved == {}

    def test_lender_keeps_deadlock_reserve(self, hive2):
        lender = hive2.cell(1)
        free_before = lender.pfdats.free_count
        borrower = hive2.cell(0)

        def prog():
            got = 0
            while True:
                result = yield from borrower.rpc.call(
                    1, "borrow_frames", {"count": 256})
                if not result["frames"]:
                    return got
                got += len(result["frames"])

        proc = hive2.sim.process(prog())
        hive2.sim.run_until_event(proc,
                                  deadline=hive2.sim.now + 600_000_000_000)
        assert proc.value == free_before - LOCAL_RESERVE_FRAMES
        assert lender.pfdats.free_count == LOCAL_RESERVE_FRAMES

    def test_borrowed_frame_firewall_update_via_rpc(self, hive2):
        """Section 5.4: the borrower must RPC the memory home to change
        firewall state on a borrowed frame."""
        borrower, lender = hive2.cell(0), hive2.cell(1)

        def prog():
            result = yield from borrower.rpc.call(
                1, "borrow_frames", {"count": 1})
            frame = result["frames"][0]
            pf = borrower.pfdats.alloc_extended(frame)
            pf.borrowed_from = 1
            # Borrower (data home) exports the page writable... to itself
            # is implicit; grant a third party via the memory home.
            yield from borrower.rpc.call(
                1, "firewall_update",
                {"frame": frame, "grantee": 0, "grant": True})
            return frame

        proc = hive2.sim.process(prog())
        hive2.sim.run_until_event(proc,
                                  deadline=hive2.sim.now + 10_000_000_000)
        frame = proc.value
        assert hive2.machine.memory.write_allowed(frame,
                                                  borrower.cpu_ids[0])

    def test_non_borrower_cannot_flip_firewall(self, hive2):
        from repro.core.rpc import RpcRemoteError

        lender = hive2.cell(1)
        attacker = hive2.cell(0)
        frame = next(iter(lender.pfdats.owned_frames))

        def prog():
            try:
                yield from attacker.rpc.call(
                    1, "firewall_update",
                    {"frame": frame, "grantee": 0, "grant": True})
            except RpcRemoteError as exc:
                return exc.errno

        proc = hive2.sim.process(prog())
        hive2.sim.run_until_event(proc,
                                  deadline=hive2.sim.now + 10_000_000_000)
        assert proc.value == "EPERM"

    def test_loaned_frame_reimport_reuses_regular_pfdat(self, hive2):
        """Section 5.5: a loaned frame imported back by its memory home
        reuses the preexisting pfdat."""
        memory_home, data_home = hive2.cell(0), hive2.cell(1)

        def prog():
            result = yield from data_home.rpc.call(
                0, "borrow_frames", {"count": 1})
            return result["frames"][0]

        proc = hive2.sim.process(prog())
        hive2.sim.run_until_event(proc,
                                  deadline=hive2.sim.now + 10_000_000_000)
        frame = proc.value
        reserved_pf = memory_home.pfdats.reserved[frame]
        imported = memory_home.import_page(frame, data_home=1,
                                           logical_id=(("file", 1, 99), 0),
                                           is_writable=False)
        assert imported is reserved_pf
        assert imported.loaned_to == 1          # physical state intact
        assert imported.imported_from == 1      # logical state added
