"""Unit tests for hardware parameters, node model, and namespace routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hive import boot_hive
from repro.hardware.node import REMAP_REGION_PAGES, Cpu, Node
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.costs import KernelCosts
from repro.unix.kernel import GlobalNamespace

from tests.helpers import run_program


class TestHardwareParams:
    def test_defaults_match_paper_machine(self):
        p = HardwareParams()
        assert p.num_nodes == 4
        assert p.memory_per_node == 32 * 1024 * 1024
        assert p.page_size == 4096
        assert p.cache_line_size == 128
        assert p.mem_latency_ns == 700
        assert p.ipi_latency_ns == 700
        assert p.sips_latency_ns() == 1000

    def test_frame_geometry(self):
        p = HardwareParams()
        assert p.pages_per_node == 8192
        assert p.node_of_frame(0) == 0
        assert p.node_of_frame(8192) == 1
        assert p.frame_of_addr(4096 * 3 + 17) == 3
        with pytest.raises(ValueError):
            p.node_of_frame(p.total_pages)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareParams(num_nodes=0).validate()
        with pytest.raises(ValueError):
            HardwareParams(memory_per_node=4097).validate()
        with pytest.raises(ValueError):
            HardwareParams(page_size=100).validate()

    @given(st.integers(min_value=0, max_value=4 * 8192 - 1))
    @settings(max_examples=50, deadline=None)
    def test_frame_node_roundtrip(self, frame):
        p = HardwareParams()
        node = p.node_of_frame(frame)
        assert frame in p.node_frame_range(node)

    def test_cycles(self):
        p = HardwareParams()
        assert p.cycles(1) == 5
        assert p.cycles(200) == 1000  # 1 us at 200 MHz


class TestNode:
    def test_remap_region_is_node_local(self):
        """Table 8.1: the remap region resolves to node-local frames on
        every node, so each cell has private trap vectors."""
        p = HardwareParams()
        frames = [list(Node(p, n).remap_frames()) for n in range(4)]
        for n, fr in enumerate(frames):
            assert len(fr) == REMAP_REGION_PAGES
            assert all(p.node_of_frame(f) == n for f in fr)
        # Pairwise disjoint: no node's vectors alias another's.
        flat = [f for fr in frames for f in fr]
        assert len(flat) == len(set(flat))

    def test_halt_and_revive(self):
        node = Node(HardwareParams(), 1)
        node.halt()
        assert node.halted and all(c.halted for c in node.cpus)
        with pytest.raises(Exception):
            node.check_running()
        node.revive()
        node.check_running()

    def test_cpu_identity(self):
        p = HardwareParams(cpus_per_node=2)
        node = Node(p, 1)
        assert [c.cpu_id for c in node.cpus] == [2, 3]


class TestGlobalNamespaceHashing:
    def test_distribution_covers_all_nodes(self):
        ns = GlobalNamespace(4)
        nodes = {ns.node_for(f"/dir{i}/file") for i in range(64)}
        assert nodes == {0, 1, 2, 3}

    def test_same_top_dir_same_node(self):
        ns = GlobalNamespace(4)
        assert ns.node_for("/var/a") == ns.node_for("/var/b/c")


class TestHeterogeneousCells:
    def test_per_cell_costs(self):
        """Section 8: different cells can run differently-configured
        kernels — here cell 1 runs with a 1 ms scheduler quantum while
        the rest keep the default 10 ms."""
        fast = KernelCosts(scheduler_quantum_ns=1_000_000)
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         per_cell_costs={1: fast})
        assert hive.cell(1).costs.scheduler_quantum_ns == 1_000_000
        assert hive.cell(0).costs.scheduler_quantum_ns == 10_000_000
        # Both kernels interoperate: a cross-cell spawn works.
        out = {}

        def child(ctx):
            yield from ctx.compute(25_000_000)
            out["quantum"] = ctx.kernel.costs.scheduler_quantum_ns

        def parent(ctx):
            pid = yield from ctx.spawn(child, "kid", target_cell=1)
            out["status"] = yield from ctx.waitpid(pid)

        run_program(hive, 0, parent)
        assert out["status"] == 0
        assert out["quantum"] == 1_000_000
