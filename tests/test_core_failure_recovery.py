"""Tests for failure detection, agreement, and recovery (Sections 4.2/4.3)."""

import pytest

from repro.core.agreement import OracleAgreement, VotingAgreement
from repro.core.failure import StrikeBook
from repro.core.hive import boot_hive
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE

from tests.helpers import run_program


def boot4(agreement="voting", reintegrate=False, seed=1):
    sim = Simulator()
    return boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(seed=seed),
                     agreement=agreement, reintegrate=reintegrate)


def settle(hive, ms=400):
    hive.sim.run(until=hive.sim.now + ms * 1_000_000)


class TestClockMonitoring:
    def test_monitor_ring_wiring(self, hive4):
        ring = {c.kernel_id: c.detector.monitored_cell
                for c in hive4.cells}
        assert ring == {0: 1, 1: 2, 2: 3, 3: 0}

    def test_heartbeats_advance(self, hive4):
        settle(hive4, ms=100)
        assert all(c.heartbeat_value >= 8 for c in hive4.cells)

    def test_halted_node_detected_by_monitor(self):
        hive = boot4()
        hive.machine.halt_node(2)
        settle(hive)
        assert not hive.registry.is_live(2)
        assert [r for r in hive.coordinator.records
                if r.dead_cells == {2}]

    def test_processor_only_halt_detected_by_stall(self):
        """Clock monitoring catches halted CPUs whose memory still works
        (no bus error available — the stall heuristic must fire)."""
        hive = boot4()
        hive.machine.halt_processor_only(2)
        settle(hive)
        assert not hive.registry.is_live(2)

    def test_panicked_cell_detected(self):
        hive = boot4()
        hive.cell(2).panic("injected corruption")
        settle(hive)
        assert not hive.registry.is_live(2)

    def test_ring_rewired_after_death(self):
        hive = boot4()
        hive.machine.halt_node(2)
        settle(hive)
        ring = {c: hive.cell(c).detector.monitored_cell for c in (0, 1, 3)}
        assert ring == {0: 1, 1: 3, 3: 0}


class TestAgreement:
    def test_voting_confirms_dead_cell(self):
        hive = boot4()
        hive.machine.halt_node(3)

        def prog():
            result = yield from VotingAgreement(hive.registry).run(0, {3})
            return result

        proc = hive.sim.process(prog())
        hive.sim.run_until_event(proc, deadline=hive.sim.now + 10**10)
        assert proc.value.confirmed_dead == {3}

    def test_voting_rejects_live_suspect(self):
        hive = boot4()

        def prog():
            result = yield from VotingAgreement(hive.registry).run(0, {3})
            return result

        proc = hive.sim.process(prog())
        hive.sim.run_until_event(proc, deadline=hive.sim.now + 10**10)
        assert proc.value.confirmed_dead == set()

    def test_oracle_matches_ground_truth(self):
        hive = boot4(agreement="oracle")
        hive.machine.halt_node(1)

        def prog():
            return (yield from OracleAgreement(hive.registry).run(0, {1}))

        proc = hive.sim.process(prog())
        hive.sim.run_until_event(proc, deadline=hive.sim.now + 10**10)
        assert proc.value.confirmed_dead == {1}

    def test_false_accusation_strikes_accuser_out(self):
        """Two voted-down alerts for the same suspect mark the accuser
        corrupt and it is rebooted by its peers (Section 4.3)."""
        hive = boot4()
        accuser = hive.cell(0)
        accuser.detector.hint(2, "spurious alert")
        settle(hive, ms=100)
        assert hive.registry.is_live(0) and hive.registry.is_live(2)
        accuser.detector.hint(2, "spurious alert again")
        settle(hive, ms=200)
        # The accuser, not the accused, was taken down.
        assert hive.registry.is_live(2)
        assert not hive.registry.is_live(0)

    def test_strike_book(self):
        book = StrikeBook(limit=2)
        assert not book.voted_down(1, 2)
        assert book.voted_down(1, 2)
        book.clear_cell(1)
        assert book.count(1, 2) == 0


class TestRecovery:
    def _shared_setup(self, hive):
        """Cell 0 writes a file served by cell 1; cell 3 write-imports it."""
        hive.namespace.mount("/srv", 1)
        data = b"d" * (PAGE * 2)

        def writer(ctx):
            fd = yield from ctx.open("/srv/file", "w", create=True)
            yield from ctx.write(fd, data)
            yield from ctx.close(fd)

        run_program(hive, 1, writer)

        hold = {}

        def importer(ctx):
            region = yield from ctx.map_file("/srv/file", writable=True)
            yield from ctx.touch(region, 0, write=True)
            hold["region"] = region
            yield from ctx.compute(10_000_000_000)  # keep it mapped

        cell3 = hive.cell(3)
        proc = cell3.create_process("importer")
        cell3.start_thread(proc, importer)
        hive.sim.run(until=hive.sim.now + 200_000_000)
        return hold

    def test_discard_bumps_generation_of_dirty_exports(self):
        hive = boot4()
        self._shared_setup(hive)
        owner = hive.cell(1)
        fs = owner.local_fs_for("/srv/file")
        assert fs.lookup("/srv/file").generation == 0
        hive.machine.halt_node(3)
        settle(hive)
        record = hive.coordinator.records[-1]
        assert record.dead_cells == {3}
        assert record.discarded_pages >= 1
        assert fs.lookup("/srv/file").generation == 1

    def test_firewall_grants_revoked_in_recovery(self):
        hive = boot4()
        self._shared_setup(hive)
        owner = hive.cell(1)
        assert owner.firewall_mgr.remotely_writable_pages() >= 1
        hive.machine.halt_node(3)
        settle(hive)
        assert owner.firewall_mgr.remotely_writable_pages() == 0

    def test_survivor_count_and_liveness(self):
        hive = boot4()
        self._shared_setup(hive)
        hive.machine.halt_node(3)
        settle(hive)
        assert hive.registry.live_cell_ids() == [0, 1, 2]
        for c in (0, 1, 2):
            assert hive.cell(c).alive

    def test_imports_from_dead_cell_dropped(self):
        hive = boot4()
        hive.namespace.mount("/victim", 3)
        data = b"v" * PAGE

        def writer(ctx):
            fd = yield from ctx.open("/victim/f", "w", create=True)
            yield from ctx.write(fd, data)
            yield from ctx.close(fd)

        run_program(hive, 3, writer)

        def importer(ctx):
            region = yield from ctx.map_file("/victim/f")
            yield from ctx.touch(region, 0)
            yield from ctx.compute(10_000_000_000)

        c0 = hive.cell(0)
        proc = c0.create_process("imp")
        c0.start_thread(proc, importer)
        hive.sim.run(until=hive.sim.now + 100_000_000)
        assert any(pf.extended for pf in c0.pfdats.all_pfdats())
        hive.machine.halt_node(3)
        settle(hive)
        assert not any(pf.extended for pf in c0.pfdats.all_pfdats())

    def test_user_processes_resume_after_recovery(self):
        hive = boot4()
        out = {}

        def busy(ctx):
            yield from ctx.compute(600_000_000)
            out["finished"] = ctx.sim.now

        c0 = hive.cell(0)
        proc = c0.create_process("busy")
        c0.start_thread(proc, busy)
        hive.sim.schedule(50_000_000, hive.machine.halt_node, 3)
        settle(hive, ms=1500)
        assert "finished" in out
        assert not c0.user_suspended

    def test_double_barrier_ordering(self):
        """All survivors pass barrier 1 before any passes barrier 2."""
        hive = boot4()
        from repro.core.recovery import BarrierService

        order = []
        orig_join = BarrierService.join

        def spy(self, key, cell_id, participants):
            order.append((key[1], cell_id))
            return orig_join(self, key, cell_id, participants)

        BarrierService.join = spy
        try:
            hive.machine.halt_node(3)
            settle(hive)
        finally:
            BarrierService.join = orig_join
        firsts = [i for i, (phase, _c) in enumerate(order) if phase == 1]
        seconds = [i for i, (phase, _c) in enumerate(order) if phase == 2]
        assert len(firsts) == 3 and len(seconds) == 3
        assert max(firsts) < min(seconds)

    def test_reintegration_reboots_cell(self):
        hive = boot4(reintegrate=True)
        hive.machine.halt_node(3)
        hive.sim.run(until=hive.sim.now + 4_000_000_000)
        assert hive.registry.is_live(3)
        assert hive.cell(3).incarnation == 1
        assert hive.coordinator.records[-1].rebooted
        # The reborn cell serves RPCs again.
        c0 = hive.cell(0)

        def prog():
            return (yield from c0.rpc.call(3, "ping", {}))

        proc = hive.sim.process(prog())
        hive.sim.run_until_event(proc, deadline=hive.sim.now + 10**10)
        assert proc.value == "alive"

    def test_platters_survive_reintegration(self):
        hive = boot4(reintegrate=True)
        hive.namespace.mount("/persist", 3)
        payload = b"durable" + b"\x00" * (PAGE - 7)

        def writer(ctx):
            fd = yield from ctx.open("/persist/f", "w", create=True)
            yield from ctx.write(fd, payload)
            yield from ctx.close(fd)

        run_program(hive, 3, writer)
        # Push it to stable storage before the crash.
        proc = hive.sim.process(hive.cell(3).sync_all())
        hive.sim.run_until_event(proc, deadline=hive.sim.now + 10**11)
        hive.machine.halt_node(3)
        hive.sim.run(until=hive.sim.now + 4_000_000_000)
        out = {}

        def reader(ctx):
            fd = yield from ctx.open("/persist/f", "r")
            out["data"] = yield from ctx.read(fd, PAGE)

        run_program(hive, 3, reader)
        assert out["data"] == payload
