"""Workload tests: shrunk configurations of the Table 7.1 workloads."""

import pytest

from repro.core.hive import boot_hive, boot_irix
from repro.hardware.machine import MachineConfig
from repro.hardware.params import NS_PER_MS, HardwareParams
from repro.sim.engine import Simulator
from repro.workloads import (
    OceanWorkload,
    Platform,
    PmakeWorkload,
    RaytraceWorkload,
)
from repro.workloads.base import pattern_bytes


def small_pmake():
    return PmakeWorkload(num_files=3, concurrency=2,
                         compute_per_job_ns=40 * NS_PER_MS)


def small_ocean():
    return OceanWorkload(nthreads=4, shared_pages=96, iterations=2,
                         compute_per_iter_ns=20 * NS_PER_MS)


def small_raytrace():
    return RaytraceWorkload(num_workers=4, scene_pages=64,
                            compute_per_worker_ns=30 * NS_PER_MS)


def irix_platform():
    sim = Simulator()
    k = boot_irix(sim)
    k.namespace.mount("/tmp", 1)
    k.namespace.mount("/usr", 2)
    k.namespace.mount("/results", 0)
    return Platform(k)


def hive_platform(ncells=4):
    sim = Simulator()
    hive = boot_hive(sim, num_cells=ncells)
    hive.namespace.mount("/tmp", 1)
    hive.namespace.mount("/usr", 2)
    hive.namespace.mount("/results", 0)
    return Platform(hive)


class TestPatternBytes:
    def test_deterministic(self):
        assert pattern_bytes("/a", 100) == pattern_bytes("/a", 100)

    def test_path_dependent(self):
        assert pattern_bytes("/a", 100) != pattern_bytes("/b", 100)

    def test_exact_length(self):
        assert len(pattern_bytes("/x", 12345)) == 12345


class TestPmake:
    def test_completes_on_irix(self):
        result = small_pmake().run(irix_platform())
        assert result.jobs_completed == 3
        assert result.jobs_failed == 0
        assert result.outputs_ok

    def test_completes_on_four_cells(self):
        result = small_pmake().run(hive_platform(4))
        assert result.jobs_completed == 3
        assert result.outputs_ok

    def test_hive_generates_remote_traffic(self):
        platform = hive_platform(4)
        small_pmake().run(platform)
        hive = platform.target
        assert hive.total_counter("faults.remote") > 0
        assert any(c.metrics.counter("opens.remote").value > 0
                   for c in hive.cells)

    def test_output_verification_catches_corruption(self):
        platform = hive_platform(4)
        wl = small_pmake()
        result = wl.run(platform)
        assert result.outputs_ok
        # Corrupt one output page on the platter + cache and re-verify.
        path = next(iter(wl.expected_outputs))
        kernel = platform.fs_owner_kernel(path)
        fs = kernel.local_fs_for(path)
        inode = fs.lookup(path)
        tag = ("file", fs.fs_id, inode.ino)
        pf = kernel.pfdats.lookup((tag, 0))
        assert pf is not None
        kernel.machine.memory.write_bytes(pf.frame, 10, b"CORRUPT")
        errors = platform.verify_file(path, wl.expected_outputs[path])
        assert errors


class TestOcean:
    def test_completes_on_irix_threads(self):
        result = small_ocean().run(irix_platform())
        assert result.jobs_completed == 4
        assert result.jobs_failed == 0

    def test_spanning_task_on_four_cells(self):
        platform = hive_platform(4)
        result = small_ocean().run(platform)
        assert result.jobs_completed == 4
        hive = platform.target
        # First-touch placement spread pages over all cells.
        task = hive.registry.task(1)
        homes = set(task.page_homes.values())
        assert homes == {0, 1, 2, 3}

    def test_write_shared_pages_become_remotely_writable(self):
        platform = hive_platform(4)
        hive = platform.target
        peak = {"v": 0}

        def sampler():
            while True:
                yield hive.sim.timeout(5_000_000)
                total = sum(c.firewall_mgr.remotely_writable_pages()
                            for c in hive.cells if c.alive)
                peak["v"] = max(peak["v"], total)

        hive.sim.process(sampler(), name="sampler")
        small_ocean().run(platform)
        # Most of the 96-page segment is write-imported across cells.
        assert peak["v"] >= 48


class TestRaytrace:
    def test_completes_on_irix(self):
        result = small_raytrace().run(irix_platform())
        assert result.jobs_completed == 4
        assert result.outputs_ok

    def test_workers_fork_across_cells(self):
        platform = hive_platform(4)
        result = small_raytrace().run(platform)
        assert result.jobs_completed == 4
        assert result.outputs_ok
        hive = platform.target
        # Scene pages were imported via the cross-cell COW search.
        remote_anon = sum(
            c.rpc.metrics.counter("calls").value for c in hive.cells)
        assert remote_anon > 0

    def test_scene_faults_use_careful_reference(self):
        platform = hive_platform(4)
        small_raytrace().run(platform)
        hive = platform.target
        careful_reads = sum(c.careful.reads for c in hive.cells)
        assert careful_reads > 0


class TestCrossConfigConsistency:
    def test_pmake_times_ordered_across_configs(self):
        """IRIX <= 1-cell << multi-cell (the Table 7.2 ordering), even
        at the shrunk scale."""
        t_irix = small_pmake().run(irix_platform()).elapsed_ns
        t_hive1 = small_pmake().run(hive_platform(1)).elapsed_ns
        t_hive4 = small_pmake().run(hive_platform(4)).elapsed_ns
        assert abs(t_hive1 - t_irix) / t_irix < 0.05
        assert t_hive4 > t_irix

    def test_ocean_insensitive_to_cells(self):
        t_irix = small_ocean().run(irix_platform()).elapsed_ns
        t_hive4 = small_ocean().run(hive_platform(4)).elapsed_ns
        assert abs(t_hive4 - t_irix) / t_irix < 0.30
