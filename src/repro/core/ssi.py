"""Single-system image: remote fork, distributed process groups and
signal delivery, spanning tasks, and process migration (Sections 3.2/3.3).

The prototype's SSI provided "forks across cell boundaries, distributed
process groups and signal delivery, and a shared file system name space";
spanning tasks were architecturally defined ("a single parallel process
can run threads on multiple cells at the same time ... Shared process
state such as the address space map is kept consistent among the
component processes") but not yet implemented — we implement them, since
the ocean/raytrace workloads and Wax are specified to run as spanning
tasks.

Modelling note: program code is shipped in RPC payloads as a Python
callable standing in for the (path, argv) an exec would carry; the RPC
accounting charges the marshalling of an exec-sized argument block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.core.rpc import QUEUED, RpcHandlerError, RpcRemoteError
from repro.unix.address_space import ANON_REGION, Region
from repro.unix.errors import FileError, ProcessKilled, RpcTimeout
from repro.unix.kernel import ProcContext
from repro.unix.process import Process, SIGKILL


@dataclass
class SpanningTask:
    """Shared state of one spanning task (kept consistent across cells)."""

    task_id: int
    #: pid -> cell of each component process (several components may run
    #: on one cell when there are more threads than cells)
    components: Dict[int, int] = field(default_factory=dict)
    #: (share_key, page_index) -> data-home cell for first-touch placement
    page_homes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: shared segment sizes: share_key -> npages
    segments: Dict[int, int] = field(default_factory=dict)
    dead: bool = False

    def cells(self) -> List[int]:
        return sorted(set(self.components.values()))

    def pids(self) -> List[int]:
        return sorted(self.components)


class SsiMixin:
    """Cross-cell process operations for a Hive cell."""

    def _init_ssi(self) -> None:
        #: pid -> event, resolved when a *remote* child we spawned exits
        self._remote_children: Dict[int, object] = {}
        self._remote_child_status: Dict[int, int] = {}
        self.rpc.register("spawn_program", self._h_spawn_program, QUEUED)
        self.rpc.register("child_exited", self._h_child_exited)
        self.rpc.register("post_signal", self._h_post_signal)
        self.rpc.register("signal_pgroup", self._h_signal_pgroup)
        self.rpc.register("spawn_component", self._h_spawn_component,
                          QUEUED)
        self.rpc.register("kill_task", self._h_kill_task)

    # ------------------------------------------------------------------
    # remote fork (fork + exec on another cell)
    # ------------------------------------------------------------------

    def spawn_remote(self, ctx: ProcContext, program: Callable, name: str,
                     target_cell: int) -> Generator:
        """Fork a child onto another cell.

        The parent's COW leaf is split locally; the child cell allocates
        its leaf pointing (by kernel address) at the old leaf here, so the
        child's anonymous faults search back across the boundary
        (Section 5.3's distributed COW tree).
        """
        yield self.sim.timeout(self.costs.remote_fork_extra_ns)
        yield from self.recovery_gate()
        parent = ctx.process
        old_leaf = self._resolve_local_cow(parent.cow_leaf_addr)
        if old_leaf is None:
            self.panic(f"corrupt COW leaf in pid {parent.pid} at fork")
            raise ProcessKilled(parent.pid, "cell panic")
        # Split: parent moves to a fresh local leaf; the old leaf becomes
        # interior.  The child's ref on the old leaf is taken here and
        # handed to the remote cell.
        parent_leaf, child_stub = self.cow.split_leaf(old_leaf)
        parent.cow_leaf_addr = parent_leaf.kaddr
        for region in parent.aspace.regions:
            if region.kind == ANON_REGION and region.task_id is None:
                region.cow_leaf_addr = parent_leaf.kaddr
        # The stub allocated locally by split_leaf is not used for a
        # remote child; transfer its reference to the remote leaf.
        self.cow.deref(child_stub)
        old_leaf.refs += 1  # the remote child leaf's reference
        anon_regions = [
            (r.start_vpn, r.npages, r.writable)
            for r in parent.aspace.regions
            if r.kind == ANON_REGION and r.task_id is None
        ]
        try:
            result = yield from self.rpc.call(
                target_cell, "spawn_program",
                {"name": name, "program": program,
                 "parent_pid": parent.pid,
                 "parent_cell": self.kernel_id,
                 "cow_parent_addr": old_leaf.kaddr,
                 "anon_regions": anon_regions},
                arg_bytes=512)
        except RpcRemoteError as exc:
            old_leaf.refs -= 1
            raise FileError(exc.errno, str(exc))
        pid = result["pid"]
        self._remote_children[pid] = self.sim.event(f"rwait.{pid}")
        self.metrics.counter("spawns.remote").add()
        return pid

    def _h_spawn_program(self, src_cell: int, args: dict) -> Generator:
        program = args.get("program")
        name = args.get("name")
        if not callable(program) or not isinstance(name, str):
            raise RpcHandlerError("EINVAL", "bad spawn request")
        cow_parent = args.get("cow_parent_addr")
        if not isinstance(cow_parent, int):
            raise RpcHandlerError("EINVAL", "bad COW parent address")
        yield self.sim.timeout(self.costs.fork_ns + self.costs.exec_ns)
        self.publish_phase("process_creation")
        child = self.create_process(name)
        # Rebind the child's anonymous ancestry across the cell boundary.
        old_root = self._resolve_local_cow(child.cow_leaf_addr)
        if old_root is not None:
            self.cow.deref(old_root)
        leaf = self.cow.adopt_remote_child(cow_parent, src_cell)
        child.cow_leaf_addr = leaf.kaddr
        child.cow_leaf_cell = self.kernel_id
        child.dependencies.add(src_cell)
        # Inherit the parent's anonymous regions (same virtual layout) so
        # pre-fork pages resolve through the COW search.
        for start_vpn, npages, writable in args.get("anon_regions", []):
            if (not isinstance(start_vpn, int) or not isinstance(npages, int)
                    or npages <= 0 or npages > 1_000_000):
                raise RpcHandlerError("EINVAL", "bad inherited region")
            region = Region(start_vpn, npages, ANON_REGION, bool(writable))
            region.cow_leaf_addr = leaf.kaddr
            region.cow_leaf_cell = self.kernel_id
            self.heap.alloc(region, "region")
            child.aspace.add_region(region)
            child.aspace._next_vpn = max(child.aspace._next_vpn,
                                         start_vpn + npages + 16)
        child.notify_parent = (src_cell, args.get("parent_pid"))
        self.start_thread(child, program)
        return {"pid": child.pid}

    # -- exit notification / remote wait --------------------------------------

    def _reap_process(self, proc: Process, status: int) -> None:
        # Release remote pages held by still-open descriptors before the
        # fd table is torn down.
        for fd in list(proc.fds.values()):
            release = getattr(self, "release_fd_imports", None)
            if release is not None:
                release(fd)
        super()._reap_process(proc, status)
        notify = getattr(proc, "notify_parent", None)
        if notify is not None and self.alive:
            cell, _ppid = notify
            self.sim.process(
                self._notify_exit(cell, proc.pid, status),
                name=f"c{self.kernel_id}.exitnotify")
        task_id = proc.task_id
        if task_id is not None:
            self.registry.task_component_exited(task_id, self.kernel_id,
                                                proc.pid, status)

    def _notify_exit(self, cell: int, pid: int, status: int) -> Generator:
        try:
            yield from self.rpc.call(cell, "child_exited",
                                     {"pid": pid, "status": status})
        except (RpcTimeout, RpcRemoteError):
            pass

    def _h_child_exited(self, src_cell: int, args: dict) -> Generator:
        pid = args.get("pid")
        status = args.get("status")
        yield self.sim.timeout(self.costs.wait_ns)
        if not isinstance(pid, int) or not isinstance(status, int):
            raise RpcHandlerError("EINVAL", "bad exit notification")
        self._remote_child_status[pid] = status
        ev = self._remote_children.get(pid)
        if ev is not None and not ev.triggered:
            ev.succeed(status)
        return None

    def sys_waitpid(self, ctx: ProcContext, pid: int) -> Generator:
        if pid in self.processes:
            return (yield from super().sys_waitpid(ctx, pid))
        if pid in self._remote_child_status:
            yield self.sim.timeout(self.costs.syscall_overhead_ns
                                   + self.costs.wait_ns)
            return self._remote_child_status.pop(pid)
        ev = self._remote_children.get(pid)
        if ev is None:
            return (yield from super().sys_waitpid(ctx, pid))
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.wait_ns)
        status = yield from ctx.block(self._wait_on(ev))
        self._remote_children.pop(pid, None)
        self._remote_child_status.pop(pid, None)
        return status

    # ------------------------------------------------------------------
    # signals across cells
    # ------------------------------------------------------------------

    def signal_remote(self, ctx: ProcContext, pid: int, sig: int) -> Generator:
        target_cell = self.registry.cell_of_pid(pid)
        if target_cell is None or target_cell == self.kernel_id:
            raise FileError("ESRCH", f"no such process {pid}")
        try:
            yield from self.rpc.call(target_cell, "post_signal",
                                     {"pid": pid, "sig": sig})
        except RpcRemoteError as exc:
            raise FileError(exc.errno, str(exc))
        return True

    def _h_post_signal(self, src_cell: int, args: dict) -> Generator:
        pid = args.get("pid")
        sig = args.get("sig")
        if not isinstance(pid, int) or not isinstance(sig, int) \
                or not 1 <= sig <= 64:
            raise RpcHandlerError("EINVAL", "bad signal")
        yield self.sim.timeout(self.costs.signal_deliver_ns)
        target = self.processes.get(pid)
        if target is None:
            raise RpcHandlerError("ESRCH", f"no pid {pid} here")
        target.post_signal(sig)
        return None

    def signal_pgroup(self, ctx: ProcContext, pgid: int,
                      sig: int) -> Generator:
        """Deliver a signal to every member of a (distributed) group."""
        yield self.sim.timeout(self.costs.syscall_overhead_ns)
        delivered = self._post_local_pgroup(pgid, sig)
        for cell_id in self.registry.live_cell_ids():
            if cell_id == self.kernel_id:
                continue
            try:
                result = yield from self.rpc.call(
                    cell_id, "signal_pgroup", {"pgid": pgid, "sig": sig})
                if isinstance(result, int):
                    delivered += result
            except (RpcTimeout, RpcRemoteError):
                continue
        return delivered

    def _post_local_pgroup(self, pgid: int, sig: int) -> int:
        count = 0
        for proc in list(self.processes.values()):
            if proc.pgid == pgid and not proc.exited:
                proc.post_signal(sig)
                count += 1
        return count

    def _h_signal_pgroup(self, src_cell: int, args: dict) -> Generator:
        pgid = args.get("pgid")
        sig = args.get("sig")
        if not isinstance(pgid, int) or not isinstance(sig, int) \
                or not 1 <= sig <= 64:
            raise RpcHandlerError("EINVAL", "bad pgroup signal")
        yield self.sim.timeout(self.costs.signal_deliver_ns)
        return self._post_local_pgroup(pgid, sig)

    # ------------------------------------------------------------------
    # spanning tasks (Section 3.2)
    # ------------------------------------------------------------------

    def spawn_spanning_task(self, ctx: ProcContext,
                            program_factory: Callable[[int, int], Callable],
                            cells: List[int],
                            shared_segments: Dict[int, int],
                            name: str = "task") -> Generator:
        """Create a spanning task with a component process per cell.

        ``program_factory(component_index, ncomponents)`` returns the
        program for each component; ``shared_segments`` maps a share key
        to a page count — each component maps every segment at the same
        virtual range, backed by first-touch-placed shared pages.
        Returns the :class:`SpanningTask` record.
        """
        yield self.sim.timeout(self.costs.syscall_overhead_ns)
        task = self.registry.new_task()
        task.segments.update(shared_segments)
        base_vpn = 0x4000_0
        layout = {}
        for key, npages in sorted(shared_segments.items()):
            layout[key] = (base_vpn, npages)
            base_vpn += npages + 16
        for index, cell_id in enumerate(cells):
            if cell_id == self.kernel_id:
                pid = self._spawn_component_local(
                    program_factory(index, len(cells)),
                    f"{name}.{index}", task.task_id, layout)
            else:
                yield from self.recovery_gate()
                try:
                    result = yield from self.rpc.call(
                        cell_id, "spawn_component",
                        {"program": program_factory(index, len(cells)),
                         "name": f"{name}.{index}",
                         "task_id": task.task_id,
                         "layout": layout},
                        arg_bytes=512)
                except RpcRemoteError as exc:
                    raise FileError(exc.errno, str(exc))
                pid = result["pid"]
            task.components[pid] = cell_id
            self._remote_children.setdefault(
                pid, self.sim.event(f"rwait.{pid}"))
        self.metrics.counter("spanning_tasks").add()
        return task

    def _spawn_component_local(self, program: Callable, name: str,
                               task_id: int, layout: dict) -> int:
        proc = self.create_process(name)
        proc.task_id = task_id
        for key, (start_vpn, npages) in sorted(layout.items()):
            region = Region(start_vpn, npages, ANON_REGION,
                            writable=True, shared=True)
            region.task_id = task_id
            region.share_key = key
            self.heap.alloc(region, "region")
            proc.aspace.add_region(region)
            proc.aspace._next_vpn = max(proc.aspace._next_vpn,
                                        start_vpn + npages + 16)
        proc.notify_parent = None
        self.start_thread(proc, program)
        return proc.pid

    def _h_spawn_component(self, src_cell: int, args: dict) -> Generator:
        program = args.get("program")
        task_id = args.get("task_id")
        layout = args.get("layout")
        if not callable(program) or not isinstance(task_id, int) \
                or not isinstance(layout, dict):
            raise RpcHandlerError("EINVAL", "bad component spawn")
        yield self.sim.timeout(self.costs.fork_ns + self.costs.exec_ns)
        self.publish_phase("process_creation")
        pid = self._spawn_component_local(
            program, str(args.get("name", "task.c")), task_id, layout)
        proc = self.processes[pid]
        proc.notify_parent = (src_cell, None)
        proc.dependencies.add(src_cell)
        return {"pid": pid}

    def kill_task_components(self, task_id: int, reason: str) -> int:
        """Kill local components of a task (used when the task dies)."""
        killed = 0
        for proc in list(self.processes.values()):
            if proc.task_id == task_id and not proc.exited:
                proc.post_signal(SIGKILL)
                killed += 1
        return killed

    def _h_kill_task(self, src_cell: int, args: dict) -> Generator:
        task_id = args.get("task_id")
        if not isinstance(task_id, int):
            raise RpcHandlerError("EINVAL", "bad task id")
        yield self.sim.timeout(self.costs.signal_deliver_ns)
        return self.kill_task_components(task_id, "task kill")

    # ------------------------------------------------------------------
    # sequential process migration (Section 3.2)
    # ------------------------------------------------------------------

    def migrate_process(self, ctx: ProcContext, program: Callable,
                        name: str, target_cell: int) -> Generator:
        """Move the *rest* of a sequential process to another cell.

        Modelled as the spanning-task mechanism the paper says supports
        migration: the continuation runs as a remote child COW-linked to
        the current process, and the local process exits.
        """
        pid = yield from self.spawn_remote(ctx, program, name, target_cell)
        self.metrics.counter("migrations").add()
        return pid
