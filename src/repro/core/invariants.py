"""System-wide consistency invariants, checkable at any quiescent point.

These encode the correctness conditions the paper's mechanisms maintain;
the property-based tests drive random fault/workload sequences and assert
them after every recovery round:

* **frame ownership**: every frame a kernel owns is in exactly one
  state — free, cached/mapped (hashed or referenced), or loaned out;
* **no dangling intercell references**: no pfdat imports from or exports
  to a dead cell; no frames loaned to dead cells;
* **firewall consistency**: a cell's record of who can write its pages
  agrees with the hardware firewall vectors;
* **heap accounting**: live kernel objects equal allocations minus frees;
* **membership**: live cells agree with ground truth (no live cell marked
  dead, no dead cell serving RPCs).
"""

from __future__ import annotations

from typing import List


def check_cell(cell) -> List[str]:
    """All single-cell invariants; returns a list of violations."""
    problems: List[str] = []
    if not cell.alive:
        return problems
    problems += _check_frame_states(cell)
    problems += _check_firewall_agreement(cell)
    if cell.heap.live_objects != cell.heap.allocs - cell.heap.frees:
        problems.append(
            f"cell {cell.kernel_id}: heap accounting mismatch "
            f"({cell.heap.live_objects} live, "
            f"{cell.heap.allocs}-{cell.heap.frees})")
    return problems


def _check_frame_states(cell) -> List[str]:
    problems: List[str] = []
    table = cell.pfdats
    free = set()
    probe = list(table._free)
    for frame in probe:
        if frame in free:
            problems.append(
                f"cell {cell.kernel_id}: frame {frame} on free list twice")
        free.add(frame)
    for frame in table.owned_frames:
        pf = table.by_frame(frame)
        on_free = frame in free and (pf is None or pf.on_free_list)
        reserved = frame in table.reserved
        hashed = pf is not None and pf.logical_id is not None
        states = sum((on_free, reserved))
        if on_free and reserved:
            problems.append(
                f"cell {cell.kernel_id}: frame {frame} free AND reserved")
        if on_free and hashed and not pf.on_free_list:
            problems.append(
                f"cell {cell.kernel_id}: frame {frame} free AND hashed")
        if pf is not None and pf.refcount < 0:
            problems.append(
                f"cell {cell.kernel_id}: frame {frame} refcount "
                f"{pf.refcount}")
    return problems


def _check_firewall_agreement(cell) -> List[str]:
    """The OS export records must match the hardware firewall."""
    problems: List[str] = []
    params = cell.machine.params
    for pf in cell.pfdats.all_pfdats():
        if pf.extended:
            continue
        node = params.node_of_frame(pf.frame)
        if node not in cell.node_ids:
            continue
        fw = cell.machine.memory.firewalls[node]
        for grantee in pf.export_writable:
            grantee_cpu = (cell.registry.nodes_of(grantee)[0]
                           * params.cpus_per_node)
            if not fw.allows(pf.frame, grantee_cpu):
                problems.append(
                    f"cell {cell.kernel_id}: pfdat says cell {grantee} "
                    f"can write frame {pf.frame}, firewall disagrees")
    return problems


def check_no_dead_references(cell, dead_cells) -> List[str]:
    """After recovery: nothing may still reference a dead cell."""
    problems: List[str] = []
    if not cell.alive:
        return problems
    dead = set(dead_cells)
    for pf in cell.pfdats.all_pfdats():
        if pf.imported_from in dead:
            problems.append(
                f"cell {cell.kernel_id}: frame {pf.frame} still imported "
                f"from dead cell {pf.imported_from}")
        if pf.borrowed_from in dead:
            problems.append(
                f"cell {cell.kernel_id}: frame {pf.frame} still borrowed "
                f"from dead cell {pf.borrowed_from}")
        if pf.export_writable & dead:
            problems.append(
                f"cell {cell.kernel_id}: frame {pf.frame} still writable "
                f"by dead cells {pf.export_writable & dead}")
    for pf in cell.pfdats.reserved.values():
        if pf.loaned_to in dead:
            problems.append(
                f"cell {cell.kernel_id}: frame {pf.frame} still loaned "
                f"to dead cell {pf.loaned_to}")
    return problems


def check_system(system) -> List[str]:
    """All invariants across a HiveSystem."""
    problems: List[str] = []
    registry = system.registry
    dead = [c for c in registry.all_cell_ids() if not registry.is_live(c)]
    for cell_id in registry.all_cell_ids():
        cell = registry.cell_object(cell_id)
        if cell is None:
            continue
        if registry.is_live(cell_id) != cell.alive:
            problems.append(
                f"membership mismatch for cell {cell_id}: registry says "
                f"{registry.is_live(cell_id)}, cell says {cell.alive}")
        problems += check_cell(cell)
        problems += check_no_dead_references(cell, dead)
    return problems
