"""Hive: the paper's contribution — a multicellular kernel architecture.

The modules here extend the UNIX substrate (:mod:`repro.unix`) into the
system of Sections 3-6 of the paper:

* :mod:`repro.core.rpc` — intercell RPC on the SIPS hardware primitive:
  an interrupt-level fast path and a queued server-pool slow path
  (Section 6);
* :mod:`repro.core.careful` — the careful reference protocol for direct
  reads of a remote cell's kernel structures (Section 4.1);
* :mod:`repro.core.cell` — the cell kernel: a :class:`LocalKernel`
  extended with intercell hooks, clock monitoring, and panic wiring;
* :mod:`repro.core.sharing` — logical-level (export/import/release) and
  physical-level (loan/borrow/return) memory sharing on extended pfdats
  (Section 5);
* :mod:`repro.core.wildwrite` — firewall management policy and the
  preemptive-discard bookkeeping (Section 4.2);
* :mod:`repro.core.failure` — failure hints (RPC timeout, bus error,
  clock monitoring, careful-reference check failures) and the two-strike
  corrupt-accuser rule (Section 4.3);
* :mod:`repro.core.agreement` — distributed agreement on the live set,
  plus the oracle the paper used for its experiments;
* :mod:`repro.core.recovery` — double-global-barrier recovery, preemptive
  discard, recovery-master election, diagnostics, reboot/reintegration;
* :mod:`repro.core.ssi` — the single-system image: remote fork,
  distributed process groups and signals, spanning tasks;
* :mod:`repro.core.wax` — the user-level resource policy process;
* :mod:`repro.core.kfaults` — kernel-data corruption injection
  (the Table 7.4 software fault experiments);
* :mod:`repro.core.hive` — :class:`HiveSystem`, the boot/assembly facade
  (also builds the IRIX baseline configuration).
"""

from repro.core.hive import HiveSystem, boot_hive, boot_irix

__all__ = ["HiveSystem", "boot_hive", "boot_irix"]
