"""Failure recovery: the double global barrier, preemptive discard,
recovery-master election, diagnostics, and reintegration (Sections 4.2-4.3).

Flow after a confirmed failure:

1. All user-level processes on surviving cells are suspended (kernel-level
   processes keep running so recovery can take kernel locks).
2. Each cell flushes its TLBs and removes every remote mapping — so a
   future access to a discarded page "will fault and send an RPC to the
   owner of the page, where it can be checked" — then joins **barrier 1**.
   Page faults arriving after a cell joined barrier 1 are held up on the
   client side.
3. After barrier 1, no valid remote accesses are pending, so each cell
   revokes the firewall write permission it granted to other cells and
   cleans its virtual memory structures.  "It is during this operation
   that the virtual memory subsystem detects pages that were writable by
   a failed cell and notifies the file system, which increments its
   generation count on the file to record the loss" — **preemptive
   discard**: every page writable by a failed cell is dropped,
   pessimistically assumed corrupt.
4. Each cell joins **barrier 2** after VM cleanup; cells that exit it
   resume normal operation.
5. A recovery master is elected from the new live set, runs hardware
   diagnostics on the failed nodes, and — if they pass — reboots and
   reintegrates the failed cells.

Because the page-fault server side never takes blocking locks against
recovery, faults that hit in the file cache stay serviceable at interrupt
level (the property Section 5.2's latency depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.obs.recorder import NULL_RECORDER, OBS_RECOVERY
from repro.sim.engine import Event, Simulator


class BarrierService:
    """Named global barriers over a fixed participant set.

    Models the tree-barrier the recovery algorithms use; participants are
    the live cells of one recovery round.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._rounds: Dict[tuple, dict] = {}

    def join(self, key: tuple, cell_id: int,
             participants: Set[int]) -> Event:
        state = self._rounds.get(key)
        if state is None:
            state = {"joined": set(), "event": self.sim.event(f"bar{key}"),
                     "participants": set(participants)}
            self._rounds[key] = state
        if state["participants"] != set(participants):
            raise ValueError(f"barrier {key}: participant set mismatch")
        state["joined"].add(cell_id)
        if state["joined"] >= state["participants"]:
            if not state["event"].triggered:
                state["event"].succeed()
        return state["event"]

    def forget(self, key: tuple) -> None:
        self._rounds.pop(key, None)


@dataclass
class RecoveryRecord:
    """Everything measured about one failure-recovery round."""

    round_id: int
    dead_cells: Set[int]
    hint_time_ns: int
    detection_reason: str
    #: per-cell time it *entered* recovery (Table 7.4's metric)
    entry_times: Dict[int, int] = field(default_factory=dict)
    agreement_ns: int = 0
    recovery_done_ns: int = 0
    discarded_pages: int = 0
    files_lost: int = 0
    killed_processes: int = 0
    #: processes still alive on surviving cells when the round completed
    #: (the availability report's killed-vs-survived denominator)
    surviving_processes: int = 0
    rebooted: bool = False

    @property
    def last_entry_ns(self) -> int:
        return max(self.entry_times.values()) if self.entry_times else 0


class RecoveryCoordinator:
    """System-wide orchestration of hint → agreement → recovery rounds.

    The coordinator object is a modelling convenience: it sequences the
    same broadcast/vote/barrier traffic the cells would exchange, charging
    the corresponding SIPS and barrier latencies, while keeping rounds
    deterministic.
    """

    def __init__(self, registry, agreement, strike_book,
                 reintegrate: bool = True):
        self.registry = registry
        self.agreement = agreement
        self.strike_book = strike_book
        self.reintegrate = reintegrate
        self.barriers = BarrierService(registry.sim)
        self.records: List[RecoveryRecord] = []
        self._round_counter = 0
        self._active_round: Optional[int] = None
        self._pending_suspects: Set[int] = set()
        #: observers notified with each finished RecoveryRecord
        self.observers: List = []
        #: flight recorder handle; replaced by attach_flight_recorder
        self.obs = NULL_RECORDER

    # -- hint entry --------------------------------------------------------

    def report_hint(self, hint) -> None:
        """A cell broadcast a failure alert."""
        if self._active_round is not None:
            self._pending_suspects.add(hint.suspect)
            return
        self._round_counter += 1
        self._active_round = self._round_counter
        self.registry.sim.process(
            self._round(self._round_counter, hint, forced=False),
            name=f"recovery.round{self._round_counter}")

    def force_round(self, suspect: int, reason: str) -> None:
        """Two-strike rule: peers reboot a corrupt accuser without a vote."""

        class _FakeHint:
            pass

        hint = _FakeHint()
        hint.reporter = -1
        hint.suspect = suspect
        hint.reason = reason
        hint.time_ns = self.registry.sim.now
        if self._active_round is not None:
            self._pending_suspects.add(suspect)
            return
        self._round_counter += 1
        self._active_round = self._round_counter
        self.registry.sim.process(
            self._round(self._round_counter, hint, forced=True),
            name=f"recovery.round{self._round_counter}")

    # -- the round ------------------------------------------------------------

    def _round(self, round_id: int, hint, forced: bool) -> Generator:
        sim = self.registry.sim
        record = RecoveryRecord(
            round_id=round_id,
            dead_cells=set(),
            hint_time_ns=hint.time_ns,
            detection_reason=hint.reason,
        )
        obs = self.obs
        round_span = None
        if obs.enabled:
            round_span = obs.begin("recovery.round", OBS_RECOVERY,
                                   round=round_id, suspect=hint.suspect,
                                   reason=hint.reason, forced=forced)
        outcome = "aborted"
        try:
            # 1. Suspend user level everywhere.  Threads park at their
            # next kernel entry or quantum boundary, so quiescing the
            # machine costs up to one scheduler quantum.
            live = self.registry.live_cell_ids()
            quantum = 10_000_000
            for cell_id in live:
                cell = self.registry.cell_object(cell_id)
                if cell is not None and cell.alive:
                    cell.suspend_user()
                    quantum = cell.costs.scheduler_quantum_ns
            yield sim.timeout(quantum)
            # 2. Agreement.
            t0 = sim.now
            suspects = {hint.suspect} | self._pending_suspects
            self._pending_suspects.clear()
            agree_span = None
            if obs.enabled:
                agree_span = obs.begin("recovery.agreement", OBS_RECOVERY,
                                       parent=round_span, round=round_id,
                                       suspects=sorted(suspects))
            if forced:
                dead = set(suspects)
                yield sim.timeout(self.registry.params.sips_latency_ns())
                obs.end(agree_span, dead=sorted(dead), rounds=0)
            else:
                result = yield from self.agreement.run(hint.reporter,
                                                       suspects)
                dead = set(result.confirmed_dead)
                obs.end(agree_span, dead=sorted(dead),
                        rounds=getattr(result, "rounds", 0))
            record.agreement_ns = sim.now - t0
            if not dead:
                outcome = "voted_down"
                # Voted down: resume, and strike the accuser.
                self._resume_all()
                if hint.reporter >= 0 and self.strike_book.voted_down(
                        hint.reporter, hint.suspect):
                    self._active_round = None
                    self.force_round(
                        hint.reporter,
                        f"voted down twice accusing {hint.suspect}")
                    return
                self._active_round = None
                self._drain_pending()
                return
            record.dead_cells = dead
            # 3. Declare the dead cells down.
            for cell_id in dead:
                self.registry.mark_dead(cell_id, "confirmed by agreement")
            # Wax uses resources from all cells, so it dies with any cell.
            self.registry.kill_wax("cell failure")
            # 4. Per-cell recovery with the double barrier.
            survivors = [c for c in self.registry.live_cell_ids()
                         if c not in dead]
            procs = []
            for cell_id in survivors:
                cell = self.registry.cell_object(cell_id)
                if cell is None or not cell.alive:
                    continue
                record.entry_times[cell_id] = sim.now
                parent_id = round_span.span_id if round_span else 0
                procs.append(sim.process(
                    cell.run_recovery(round_id, dead, set(survivors),
                                      self.barriers, record,
                                      parent_span=parent_id),
                    name=f"recover.c{cell_id}.r{round_id}"))
            if procs:
                yield sim.all_of(procs)
            record.recovery_done_ns = sim.now
            for cell_id in survivors:
                cell = self.registry.cell_object(cell_id)
                if cell is None or not cell.alive:
                    continue
                record.surviving_processes += sum(
                    1 for proc in cell.processes.values()
                    if not proc.exited)
            outcome = "recovered"
            self.barriers.forget((round_id, 1))
            self.barriers.forget((round_id, 2))
            # 5. Resume user level; the round is complete at this point
            # (diagnostics/reboot are follow-on master activity).
            self._resume_all()
            self.records.append(record)
            for callback in list(self.observers):
                callback(record)
            # A fresh Wax incarnation forks to the surviving cells and
            # rebuilds its view from scratch (Section 3.2).
            self.registry.restart_wax()
            # 6. Recovery master: diagnostics and reboot.
            if survivors:
                master = min(survivors)
                master_cell = self.registry.cell_object(master)
                if master_cell is not None and master_cell.alive:
                    yield from self._master_phase(master_cell, dead, record)
        finally:
            obs.end(round_span, outcome=outcome,
                    dead=sorted(record.dead_cells))
            self._active_round = None
            self._drain_pending()

    def _drain_pending(self) -> None:
        if self._pending_suspects:
            suspect = min(self._pending_suspects)
            self._pending_suspects.discard(suspect)

            class _H:
                pass

            h = _H()
            h.reporter = -1
            h.suspect = suspect
            h.reason = "queued during previous round"
            h.time_ns = self.registry.sim.now
            self.report_hint(h)

    def _resume_all(self) -> None:
        for cell_id in self.registry.live_cell_ids():
            cell = self.registry.cell_object(cell_id)
            if cell is not None and cell.alive:
                cell.resume_user()

    def _master_phase(self, master_cell, dead: Set[int],
                      record: RecoveryRecord) -> Generator:
        """Diagnostics on failed nodes; reboot + reintegrate on success."""
        sim = self.registry.sim
        costs = master_cell.costs
        obs = self.obs
        span = None
        if obs.enabled:
            span = obs.begin("recovery.master", OBS_RECOVERY,
                             cell=master_cell.kernel_id,
                             round=record.round_id, dead=sorted(dead))
        yield sim.timeout(costs.diagnostics_ns)
        ok = all(
            master_cell.machine.run_diagnostics(node)
            for cell_id in dead
            for node in self.registry.nodes_of(cell_id)
        )
        if not ok or not self.reintegrate:
            obs.end(span, rebooted=False, diagnostics_ok=ok)
            return
        yield sim.timeout(costs.reboot_ns)
        for cell_id in sorted(dead):
            self.registry.reboot_cell(cell_id)
            self.strike_book.clear_cell(cell_id)
        record.rebooted = True
        obs.end(span, rebooted=True, diagnostics_ok=True)
        # A fresh Wax incarnation forks to all cells and rebuilds its
        # picture of the system state from scratch (Section 3.2).
        self.registry.restart_wax()
