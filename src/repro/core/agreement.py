"""Distributed agreement on the live cell set (Section 4.3).

"Consensus among the surviving cells is required to reboot a failed cell.
When a hint alert is broadcast, all cells temporarily suspend processes
running at user level and run a distributed agreement algorithm."

The paper notes this "is an instance of the well-studied group membership
problem, so Hive will use a standard algorithm (probably [Ricciardi &
Birman])" and that the prototype "is simulated by an oracle for the
experiments reported in this paper".  We provide both:

* :class:`VotingAgreement` — a synchronous probe-and-vote round in the
  Ricciardi/Birman group-membership style: every live cell probes each
  suspect (heartbeat read plus a ping RPC with a short timeout), votes,
  and the round commits the majority decision.  Cells that fail to vote
  within the round timeout are added to the suspect set and the round
  restarts, so cascaded failures during agreement converge.
* :class:`OracleAgreement` — consults ground truth with a fixed modelled
  latency, reproducing the paper's experimental method ("the machine
  model provides an oracle that indicates unambiguously to each cell the
  set of cells that have failed").
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.hardware.errors import BusError
from repro.obs.recorder import NULL_RECORDER, OBS_AGREEMENT
from repro.unix.errors import RpcTimeout

#: ping timeout while probing a suspect (short: an alive cell answers an
#: interrupt-level ping within tens of microseconds).
PROBE_TIMEOUT_NS = 2_000_000
#: how long the round waits for peer votes before suspecting the voter.
VOTE_TIMEOUT_NS = 5_000_000


class AgreementResult:
    """Outcome of one agreement round."""

    def __init__(self, confirmed_dead: Set[int], live: Set[int],
                 rounds: int, duration_ns: int):
        self.confirmed_dead = confirmed_dead
        self.live = live
        self.rounds = rounds
        self.duration_ns = duration_ns

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<AgreementResult dead={sorted(self.confirmed_dead)} "
                f"live={sorted(self.live)} rounds={self.rounds}>")


class VotingAgreement:
    """Probe-and-vote group membership."""

    name = "voting"

    def __init__(self, registry):
        self.registry = registry
        self.rounds_run = 0
        #: flight recorder handle; replaced by attach_flight_recorder
        self.obs = NULL_RECORDER

    def run(self, initiator: int, suspects: Set[int]) -> Generator:
        """Coroutine: returns an :class:`AgreementResult`."""
        sim = self.registry.sim
        start = sim.now
        suspects = set(suspects)
        rounds = 0
        while True:
            rounds += 1
            self.rounds_run += 1
            if self.obs.enabled:
                self.obs.event("agree.round", OBS_AGREEMENT,
                               cell=initiator if initiator >= 0 else None,
                               round=rounds, suspects=sorted(suspects))
            voters = [c for c in self.registry.live_cell_ids()
                      if c not in suspects]
            if not voters:
                # Everyone is suspect: nothing to agree; treat ground
                # truth via individual probes from the initiator alone.
                voters = [initiator]
            votes: Dict[int, Dict[int, bool]] = {s: {} for s in suspects}
            slow_voters: Set[int] = set()
            for voter_id in voters:
                voter = self.registry.cell_object(voter_id)
                if voter is None or not voter.alive:
                    slow_voters.add(voter_id)
                    continue
                if self.registry.machine.nodes[voter.node_ids[0]].halted:
                    # The voter's processors are halted: its vote never
                    # arrives, so the round suspects it too.
                    yield sim.timeout(VOTE_TIMEOUT_NS)
                    slow_voters.add(voter_id)
                    continue
                for suspect in suspects:
                    dead = yield from self._probe(voter, suspect)
                    votes[suspect][voter_id] = dead
                # Vote exchange: one SIPS broadcast per voter.
                yield sim.timeout(
                    self.registry.params.sips_latency_ns())
            if slow_voters:
                suspects |= slow_voters
                continue  # restart with the grown suspect set
            confirmed: Set[int] = set()
            for suspect, ballot in votes.items():
                yea = sum(1 for dead in ballot.values() if dead)
                if yea * 2 > len(ballot):
                    confirmed.add(suspect)
            live = set(self.registry.live_cell_ids()) - confirmed
            return AgreementResult(confirmed, live, rounds, sim.now - start)

    def _probe(self, voter, suspect: int) -> Generator:
        """One cell's liveness probe of one suspect; True means dead."""
        sim = self.registry.sim
        target = self.registry.cell_object(suspect)
        if target is None:
            return True
        # Heartbeat read (cheap, catches halted nodes via bus error).
        try:
            voter.machine.coherence.read(voter.cpu_ids[0],
                                         target.heartbeat_addr)
        except BusError:
            return True
        if not target.alive:
            # A panicked cell has engaged its memory cutoff and stopped
            # answering pings; the ping below would time out — model the
            # timeout cost then vote dead.
            yield sim.timeout(PROBE_TIMEOUT_NS)
            return True
        try:
            result = yield from voter.rpc.call(
                suspect, "ping", {}, timeout_ns=PROBE_TIMEOUT_NS)
        except RpcTimeout:
            return True
        return result != "alive"


class OracleAgreement:
    """The experimental oracle from Section 7.2."""

    name = "oracle"

    #: modelled latency of the oracle consultation.
    ORACLE_LATENCY_NS = 100_000

    def __init__(self, registry):
        self.registry = registry
        self.rounds_run = 0
        #: flight recorder handle; replaced by attach_flight_recorder
        self.obs = NULL_RECORDER

    def run(self, initiator: int, suspects: Set[int]) -> Generator:
        sim = self.registry.sim
        start = sim.now
        self.rounds_run += 1
        if self.obs.enabled:
            self.obs.event("agree.round", OBS_AGREEMENT,
                           cell=initiator if initiator >= 0 else None,
                           round=1, suspects=sorted(suspects))
        yield sim.timeout(self.ORACLE_LATENCY_NS)
        dead: Set[int] = set()
        for cell_id in self.registry.all_cell_ids():
            cell = self.registry.cell_object(cell_id)
            if cell is None or not cell.alive:
                dead.add(cell_id)
                continue
            node0 = cell.node_ids[0]
            if cell.machine.nodes[node0].halted:
                dead.add(cell_id)
            elif cell.machine.nodes[node0].memory_failed:
                dead.add(cell_id)
        live = set(self.registry.all_cell_ids()) - dead
        return AgreementResult(dead & set(self.registry.all_cell_ids()),
                               live, 1, sim.now - start)
