"""Memory sharing among cells (Section 5): logical and physical levels.

*Logical-level* sharing lets a process on one cell use a data page cached
by another: the data home ``export``s the page (recording the client cell
in its pfdat and adjusting the firewall) and the client ``import``s it
(allocating an *extended pfdat* and inserting it into its own pfdat hash
so later faults hit locally).  ``release`` undoes an import and tells the
data home, which keeps the page on *its* free list for reuse.

*Physical-level* sharing lets a cell under memory pressure *borrow* page
frames: the memory home moves the frame to a reserved list and ignores it
"until the data home frees it or fails"; the borrower manages it as one of
its own through an extended pfdat, except firewall changes go by RPC to
the memory home.

The two levels compose (Section 5.5): a frame can be simultaneously
borrowed and exported, or loaned out and *reimported* by its memory home —
in which case the preexisting regular pfdat is reused because the two
state machines use separate pfdat storage.

This module is a mixin over :class:`~repro.unix.kernel.LocalKernel`: it
overrides the remote hooks (`fault_page`, `open_remote`, `read_remote`,
`write_remote`, ...) and registers the data-home RPC handlers.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.hardware.errors import BusError
from repro.core.rpc import MUST_QUEUE, QUEUED, RpcHandlerError, RpcRemoteError
from repro.unix.address_space import ANON_REGION, FILE_REGION, Pte, Region
from repro.unix.cow import COW_NODE_TAG, CowNode
from repro.unix.errors import (
    CarefulReferenceFault,
    FileError,
    ProcessKilled,
    RpcTimeout,
    StaleGenerationError,
)
from repro.unix.fs import PAGE
from repro.unix.kernel import ProcContext
from repro.unix.pfdat import NoFreeFrames, Pfdat
from repro.unix.process import FileDescriptor

#: pages moved per bulk file-I/O RPC (amortizes RPC cost across a big
#: read/write, giving Table 7.3's modest 1.1-1.2x remote ratios).
BULK_PAGES = 16
#: keep at least this many local free frames before borrowing, and never
#: lend below it ("preserving enough local free memory to avoid
#: deadlock", Section 3.2).
LOCAL_RESERVE_FRAMES = 64
#: frames fetched per borrow RPC.
BORROW_BATCH = 16


class SharingMixin:
    """Intercell memory sharing for a Hive cell."""

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _init_sharing(self) -> None:
        #: borrowed free frames ready for allocation
        self._borrowed_free: List[Pfdat] = []
        self.metrics.counter("faults.remote")
        self.metrics.counter("faults.local_hit")
        self.rpc.register("ping", self._h_ping)
        self.rpc.register("ping_queued", self._h_ping, QUEUED)
        self.rpc.register("export_page", self._h_export_page)
        self.rpc.register("export_page_slow", self._h_export_page_slow,
                          QUEUED)
        self.rpc.register("release_page", self._h_release_page)
        self.rpc.register("export_anon_page", self._h_export_anon_page)
        self.rpc.register("cow_deref", self._h_cow_deref)
        self.rpc.register("open_file", self._h_open_file, QUEUED)
        self.rpc.register("unlink_file", self._h_unlink_file, QUEUED)
        self.rpc.register("bulk_pages", self._h_bulk_pages, QUEUED)
        self.rpc.register("file_extend", self._h_file_extend)
        self.rpc.register("borrow_frames", self._h_borrow_frames)
        self.rpc.register("return_frame", self._h_return_frame)
        self.rpc.register("firewall_update", self._h_firewall_update)

    # ------------------------------------------------------------------
    # import / export / release (Table 5.1 primitives)
    # ------------------------------------------------------------------

    def import_page(self, frame: int, data_home: int, logical_id: tuple,
                    is_writable: bool) -> Pfdat:
        """Bind a remote page into the local page cache (Table 5.1).

        Allocates an extended pfdat — or, if ``frame`` is one of our own
        frames loaned out and now coming back as data, reuses the
        preexisting regular pfdat (the Section 5.5 CC-NUMA reimport).
        """
        existing = self.pfdats.reserved.get(frame)
        if existing is not None:
            pf = existing  # loaned frame reimported: reuse regular pfdat
        else:
            pf = self.pfdats.by_frame(frame)
            if pf is None:
                pf = self.pfdats.alloc_extended(frame)
        if pf.logical_id is None:
            self.pfdats.insert(pf, logical_id)
        pf.imported_from = data_home
        self.sharing_metrics.counter("imports").add()
        prov = self.prov
        if prov.enabled:
            prov.page_imported(self.kernel_id, data_home, frame)
        return pf

    def release_page(self, pf: Pfdat) -> None:
        """Release an import: free the extended pfdat, notify data home.

        "release frees the extended pfdat and sends an RPC to the data
        home, which places the page on the data home free list if no
        other references remain" (Section 5.2).
        """
        data_home = pf.imported_from
        frame = pf.frame
        logical_id = pf.logical_id
        pf.imported_from = None
        self.sharing_metrics.counter("releases").add()
        if pf.extended:
            self.pfdats.release_extended(pf)
        else:
            # Reimported loaned frame: drop the logical binding only.
            self.pfdats.remove(pf)
        if data_home is None or not self.registry.is_live(data_home):
            return
        self.sim.process(
            self._notify_release(data_home, frame, logical_id),
            name=f"c{self.kernel_id}.release")

    def _notify_release(self, data_home: int, frame: int,
                        logical_id) -> Generator:
        try:
            yield from self.rpc.call(data_home, "release_page",
                                     {"frame": frame,
                                      "client": self.kernel_id})
        except (RpcTimeout, RpcRemoteError):
            pass  # data home failing is handled by recovery

    def release_imported_page(self, pf: Pfdat) -> None:
        """Hook from the base kernel when an import's last mapping drops."""
        if pf.imported_from is not None:
            self.release_page(pf)

    def release_fd_imports(self, fd) -> None:
        """Release pages imported for a descriptor's I/O (at close/exit)."""
        for pf in fd.imported_pfdats:
            if pf.imported_from is not None and pf.refcount == 0:
                self.release_page(pf)
        fd.imported_pfdats.clear()

    def sys_close(self, ctx: ProcContext, fdnum: int) -> Generator:
        fd = ctx.process.fds.get(fdnum)
        result = yield from super().sys_close(ctx, fdnum)
        if fd is not None:
            self.release_fd_imports(fd)
        return result

    def export_page_local(self, pf: Pfdat, client_cell: int,
                          is_writable: bool) -> Generator:
        """Data-home side of an export (Table 5.1's ``export``)."""
        pf.exported_to.add(client_cell)
        self.sharing_metrics.counter("exports").add()
        if is_writable:
            self.sharing_metrics.counter("exports_writable").add()
        prov = self.prov
        if prov.enabled:
            prov.page_exported(self.kernel_id, client_cell, pf.frame,
                               is_writable)
        if is_writable:
            yield from self.firewall_mgr.grant_write(pf, client_cell)
            # The client can now dirty the page without telling us:
            # pessimistically treat it as dirty (discard correctness).
            pf.dirty = True
        return None

    # ------------------------------------------------------------------
    # data-home RPC handlers
    # ------------------------------------------------------------------

    def _h_ping(self, src_cell: int, args: dict) -> Generator:
        yield self.sim.timeout(0)
        return "alive"

    def _find_cached_page(self, logical_id: tuple) -> Optional[Pfdat]:
        pf = self.pfdats.lookup(logical_id)
        if pf is not None and pf.imported_from is None:
            return pf
        return None

    def _h_export_page(self, src_cell: int, args: dict) -> Generator:
        """Interrupt-level export attempt: page-cache hit path.

        "page faults that hit in the file cache [are] serviced entirely
        in an interrupt handler" (Section 4.3) — possible because this
        path takes no blocking locks against recovery.
        """
        logical_id = self._check_logical_id(args)
        writable = bool(args.get("writable"))
        yield self.sim.timeout(self.costs.fault_home_misc_vm_ns)
        pf = self._find_cached_page(logical_id)
        if pf is None:
            return MUST_QUEUE  # disk I/O needed: queued service
        yield self.sim.timeout(self.costs.fault_home_export_ns)
        yield from self.export_page_local(pf, src_cell, writable)
        generation = self._generation_of(logical_id)
        return {"frame": pf.frame, "generation": generation}

    def _h_export_page_slow(self, src_cell: int, args: dict) -> Generator:
        """Queued export: fill from disk at the data home, then export."""
        logical_id = self._check_logical_id(args)
        writable = bool(args.get("writable"))
        tag = logical_id[0]
        if tag[0] != "file":
            raise RpcHandlerError("EINVAL", "slow path is for file pages")
        _, fs_id, ino = tag
        fs = self.filesystems.get(fs_id)
        if fs is None:
            raise RpcHandlerError("ESTALE", f"fs {fs_id} not here")
        inode = fs.inode(ino)
        pf = yield from self.get_file_page(fs, inode, logical_id[1])
        yield self.sim.timeout(self.costs.fault_home_export_ns)
        yield from self.export_page_local(pf, src_cell, writable)
        return {"frame": pf.frame, "generation": inode.generation}

    def _check_logical_id(self, args: dict) -> tuple:
        """Sanity-check an RPC-supplied logical id (bad-message defense)."""
        lid = args.get("logical_id")
        if (not isinstance(lid, (tuple, list)) or len(lid) != 2
                or not isinstance(lid[1], int) or lid[1] < 0
                or not isinstance(lid[0], (tuple, list))):
            raise RpcHandlerError("EINVAL", f"bad logical id {lid!r}")
        return (tuple(lid[0]), lid[1])

    def _generation_of(self, logical_id: tuple) -> int:
        tag = logical_id[0]
        if tag[0] == "file":
            fs = self.filesystems.get(tag[1])
            if fs is not None:
                try:
                    return fs.inode(tag[2]).generation
                except FileError:
                    return -1
        return 0

    def _h_release_page(self, src_cell: int, args: dict) -> Generator:
        frame = args.get("frame")
        if not isinstance(frame, int):
            raise RpcHandlerError("EINVAL", "bad frame")
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        pf = self.pfdats.by_frame(frame)
        if pf is None:
            return None
        pf.exported_to.discard(src_cell)
        if src_cell in pf.export_writable:
            yield from self.firewall_mgr.revoke_write(pf, src_cell)
        # The page data stays cached at the data home ("the data page
        # remains in memory until the page frame is reallocated,
        # providing fast access if the client cell faults to it again").
        return None

    def _h_export_anon_page(self, src_cell: int, args: dict) -> Generator:
        """Export one anonymous page after a remote COW search hit."""
        node_id = args.get("cow_node")
        page_index = args.get("page_index")
        if not isinstance(node_id, int) or not isinstance(page_index, int):
            raise RpcHandlerError("EINVAL", "bad anon export request")
        node = self.cow.node(node_id)
        if node is None or page_index not in node.pages:
            raise RpcHandlerError("ENOENT",
                                  f"cow node {node_id} lacks page")
        logical_id = (node.anon_tag(), page_index)
        if logical_id in getattr(self, "poisoned_anon", set()):
            raise RpcHandlerError("EIO", "page was discarded")
        pf = self._find_cached_page(logical_id)
        if pf is None:
            # The frame was reclaimed: restore from swap (or zero).
            pf = yield from self._get_anon_page(logical_id)
        yield self.sim.timeout(self.costs.fault_home_export_ns)
        yield from self.export_page_local(pf, src_cell,
                                          bool(args.get("writable")))
        return {"frame": pf.frame, "generation": 0}

    def _h_cow_deref(self, src_cell: int, args: dict) -> Generator:
        addr = args.get("addr")
        if not isinstance(addr, int):
            raise RpcHandlerError("EINVAL", "bad addr")
        resolved = self.heap.resolve(addr)
        yield self.sim.timeout(self.costs.careful_check_ns)
        if resolved is None or resolved[0] != COW_NODE_TAG:
            return None
        self._release_cow_chain(resolved[1])
        return None

    def remote_cow_deref(self, cell: int, addr: int) -> None:
        if not self.registry.is_live(cell):
            return
        self.sim.process(self._send_cow_deref(cell, addr),
                         name=f"c{self.kernel_id}.cowderef")

    def _send_cow_deref(self, cell: int, addr: int) -> Generator:
        try:
            yield from self.rpc.call(cell, "cow_deref", {"addr": addr})
        except (RpcTimeout, RpcRemoteError):
            pass

    # ------------------------------------------------------------------
    # the remote page-fault path (Table 5.2)
    # ------------------------------------------------------------------

    def fault_page(self, ctx: ProcContext, region: Region, vpn: int,
                   write: bool) -> Generator:
        self.metrics.counter("faults").add()
        if region.kind == FILE_REGION and region.data_home != self.kernel_id:
            return (yield from self._fault_file_remote(
                ctx, region, vpn, write))
        if region.kind == ANON_REGION and getattr(region, "shared", False) \
                and region.task_id is not None:
            return (yield from self._fault_task_shared(
                ctx, region, vpn, write))
        yield self.sim.timeout(self.costs.local_fault_ns)
        if region.kind == FILE_REGION:
            return (yield from self._fault_file_local(ctx, region, vpn, write))
        return (yield from self._fault_anon(ctx, region, vpn, write))

    def recovery_gate(self) -> Generator:
        """Hold client-side intercell traffic while we are in recovery."""
        while self.in_recovery and self.alive:
            yield self.recovery_done_event
        return None

    def _fault_file_remote(self, ctx: ProcContext, region: Region,
                           vpn: int, write: bool) -> Generator:
        # The firewall management policy grants write access when a page
        # is faulted into a *writable region*, regardless of whether the
        # first access is a read (Section 4.2): "the address space region
        # is marked writable only if the process had explicitly requested
        # a writable mapping".
        want_write = region.writable
        tag = ("file", region.fs_id, region.ino)
        idx = region.file_page_index(vpn)
        logical_id = (tag, idx)
        # Fast path: "Further faults to that page can hit quickly in the
        # client cell's hash table and avoid sending an RPC."
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        pf = self.pfdats.lookup(logical_id)
        if pf is not None and pf.imported_from is not None:
            if not want_write or self._have_write_grant(pf):
                self.metrics.counter("faults.local_hit").add()
                yield self.sim.timeout(self.costs.local_fault_ns)
                return self._map(ctx, region, vpn, pf, want_write,
                                 data_home=pf.imported_from)
        self.metrics.counter("faults.remote").add()
        # Client-cell work before the RPC (Table 5.2 components).
        yield self.sim.timeout(self.costs.fault_client_fs_ns
                               + self.costs.fault_client_locking_ns
                               + self.costs.fault_client_misc_vm_ns)
        yield from self.recovery_gate()
        result = yield from self._call_export(
            region.data_home, logical_id, want_write)
        if result["generation"] != region.generation:
            raise StaleGenerationError(f"fs{region.fs_id}/ino{region.ino}",
                                       region.generation,
                                       result["generation"])
        yield self.sim.timeout(self.costs.fault_client_import_ns)
        pf = self.import_page(result["frame"], region.data_home,
                              logical_id, want_write)
        if want_write:
            pf.export_writable.add(self.kernel_id)  # client-side record
        proc = ctx.process
        proc.dependencies.add(region.data_home)
        return self._map(ctx, region, vpn, pf, want_write,
                         data_home=region.data_home)

    def _have_write_grant(self, pf: Pfdat) -> bool:
        return self.kernel_id in pf.export_writable

    def _call_export(self, data_home: int, logical_id: tuple,
                     write: bool) -> Generator:
        """export_page with the interrupt→queued fallback handled."""
        args = {"logical_id": logical_id, "writable": write,
                "client": self.kernel_id}
        try:
            result = yield from self.rpc.call(
                data_home, "export_page", args, arg_bytes=160)
        except RpcRemoteError as exc:
            raise FileError(exc.errno, str(exc))
        if isinstance(result, dict):
            return result
        # MUST_QUEUE is resolved transparently inside the server; a dict
        # always comes back unless the handler errored.
        raise FileError("EIO", f"export_page returned {result!r}")

    # ------------------------------------------------------------------
    # anonymous pages across cells (Section 5.3)
    # ------------------------------------------------------------------

    def _fault_anon(self, ctx: ProcContext, region: Region, vpn: int,
                    write: bool) -> Generator:
        """COW fault; the search may cross cell boundaries."""
        self.publish_phase("cow_search")
        page_index = vpn - region.start_vpn
        leaf = self._resolve_local_cow(region.cow_leaf_addr)
        if leaf is None:
            self.panic(
                f"corrupt COW leaf pointer {region.cow_leaf_addr:#x} in "
                f"address map of pid {ctx.process.pid}")
            raise ProcessKilled(ctx.process.pid, "cell panic")
        owner, owner_cell = yield from self._cow_search(ctx, leaf,
                                                        page_index)
        if owner is None:
            # First touch anywhere in the ancestry: zero-fill at the leaf
            # (or restore from swap if the clock hand evicted it).
            pf = yield from self._get_anon_page(
                (leaf.anon_tag(), page_index), ctx)
            self.cow.record_page(leaf, page_index)
            pf.dirty = True
            return self._map(ctx, region, vpn, pf, region.writable,
                             data_home=self.kernel_id)
        if owner_cell == self.kernel_id:
            return (yield from self._fault_anon_local_owner(
                ctx, region, vpn, write, leaf, owner, page_index))
        # Remote owner: RPC to set up the export/import binding ("If it
        # finds the page recorded in a remote node of the tree, it sends
        # an RPC to the cell that owns that node", Section 5.3).
        logical_id = (("anon", owner_cell, owner.node_id), page_index)
        yield from self.recovery_gate()
        try:
            result = yield from self.rpc.call(
                owner_cell, "export_anon_page",
                {"cow_node": owner.node_id, "page_index": page_index,
                 "writable": False},  # anon imports are always read-only;
                                      # writes break COW with a local copy
                arg_bytes=160)
        except RpcRemoteError as exc:
            raise ProcessKilled(ctx.process.pid,
                                f"anonymous page lost: {exc}")
        yield self.sim.timeout(self.costs.fault_client_import_ns)
        src = self.import_page(result["frame"], owner_cell, logical_id,
                               is_writable=False)
        ctx.process.dependencies.add(owner_cell)
        if write:
            # COW break: private local copy recorded at our leaf.
            pf = yield from self.alloc_frame(ctx)
            yield self.sim.timeout(self.costs.page_copy_ns)
            data = self.machine.memory.read_page(src.frame, cpu=ctx.cpu)
            self.machine.memory.write_page(pf.frame, data,
                                           cpu=self._dma_cpu(pf.frame))
            self.cow.record_page(leaf, page_index)
            self.pfdats.insert(pf, (leaf.anon_tag(), page_index))
            pf.dirty = True
            if src.refcount == 0:
                self.release_imported_page(src)
            return self._map(ctx, region, vpn, pf, True,
                             data_home=self.kernel_id)
        return self._map(ctx, region, vpn, src, False,
                         data_home=owner_cell)

    def _fault_anon_local_owner(self, ctx, region, vpn, write, leaf,
                                owner, page_index) -> Generator:
        """Owner node is local: same as the single-kernel path."""
        src = yield from self._get_anon_page(
            (owner.anon_tag(), page_index), ctx)
        if (owner.anon_tag(), page_index) in self.poisoned_anon:
            raise ProcessKilled(ctx.process.pid,
                                "anonymous page was discarded")
        if write and owner is not leaf:
            pf = yield from self.alloc_frame(ctx)
            yield self.sim.timeout(self.costs.page_copy_ns)
            data = self.machine.memory.read_page(src.frame, cpu=ctx.cpu)
            self.machine.memory.write_page(pf.frame, data,
                                           cpu=self._dma_cpu(pf.frame))
            self.cow.record_page(leaf, page_index)
            self.pfdats.insert(pf, (leaf.anon_tag(), page_index))
            pf.dirty = True
            return self._map(ctx, region, vpn, pf, True,
                             data_home=self.kernel_id)
        if write:
            src.dirty = True
        return self._map(ctx, region, vpn, src, write,
                         data_home=self.kernel_id)

    def _cow_search(self, ctx: ProcContext, leaf: CowNode,
                    page_index: int) -> Generator:
        """Walk up the COW tree, crossing cells with careful reference.

        Returns ``(owner_node, owner_cell)`` or ``(None, -1)``.  A failed
        careful-reference check retries after a clock tick — the remote
        cell may be corrupt; if it is, recovery will resolve the wait
        (possibly by killing this process).
        """
        retries = 0
        while True:
            try:
                return (yield from self._cow_search_once(leaf, page_index))
            except CarefulReferenceFault:
                retries += 1
                if retries >= 50:
                    raise ProcessKilled(
                        ctx.process.pid,
                        "anonymous memory unreachable (corrupt COW tree)")
                yield self.sim.timeout(self.costs.clock_tick_ns)
                ctx.thread.check_killed()
                yield from self.user_gate(ctx.thread)

    def _cow_search_once(self, leaf: CowNode, page_index: int) -> Generator:
        node: Optional[CowNode] = leaf
        node_cell = self.kernel_id
        hops = 0
        while node is not None:
            if page_index in node.pages:
                return node, node_cell
            if node.parent_addr == 0:
                return None, -1
            parent_cell = node.parent_cell
            yield self.sim.timeout(self.costs.cow_tree_hop_ns)
            if parent_cell == self.kernel_id:
                resolved = self.heap.resolve(node.parent_addr)
                if resolved is None or resolved[0] != COW_NODE_TAG:
                    # Corruption in our own tree: internal kernel error.
                    self.panic(
                        f"corrupt COW parent pointer "
                        f"{node.parent_addr:#x}")
                    raise ProcessKilled(0, "cell panic")
                node = resolved[1]
                node_cell = self.kernel_id
            else:
                node = yield from self.careful.read_object(
                    parent_cell, node.parent_addr, COW_NODE_TAG,
                    copy_words=16)
                node_cell = parent_cell
            hops += 1
            if hops > 10_000:
                raise CarefulReferenceFault(node_cell, "loop",
                                            "COW ancestry too deep")
        return None, -1

    # ------------------------------------------------------------------
    # spanning-task shared anonymous pages
    # ------------------------------------------------------------------

    def _fault_task_shared(self, ctx: ProcContext, region: Region,
                           vpn: int, write: bool) -> Generator:
        """Fault on a write-shared segment of a spanning task.

        Placement is first-touch: the faulting cell becomes the data home
        for the page, recorded in the task's shared map (shared process
        state kept consistent across the component processes).
        """
        yield self.sim.timeout(self.costs.local_fault_ns)
        page_index = vpn - region.start_vpn
        task = self.registry.task(region.task_id)
        if task is None:
            raise ProcessKilled(ctx.process.pid, "spanning task torn down")
        key = (region.share_key, page_index)
        data_home = task.page_homes.get(key)
        logical_id = (("task", region.task_id, region.share_key), page_index)
        if data_home is None:
            # First touch: allocate locally and publish in the shared map.
            pf = yield from self.alloc_frame(ctx)
            yield self.sim.timeout(self.costs.page_zero_ns)
            self.machine.memory.zero_page(pf.frame,
                                          cpu=self._dma_cpu(pf.frame))
            if self.pfdats.lookup(logical_id) is None:
                self.pfdats.insert(pf, logical_id)
            task.page_homes[key] = self.kernel_id
            pf.dirty = True
            return self._map(ctx, region, vpn, pf, region.writable,
                             data_home=self.kernel_id)
        if data_home == self.kernel_id:
            pf = self.pfdats.lookup(logical_id)
            if pf is None:
                pf = yield from self.alloc_frame(ctx)
                self.machine.memory.zero_page(pf.frame,
                                              cpu=self._dma_cpu(pf.frame))
                self.pfdats.insert(pf, logical_id)
            if write:
                pf.dirty = True
            return self._map(ctx, region, vpn, pf, write,
                             data_home=self.kernel_id)
        # Remote data home: the full Table 5.2 remote-fault path.  Write
        # permission follows the *region's* writability (the Section 4.2
        # policy) — this is why ocean ends up with its whole write-shared
        # data segment remotely writable.
        want_write = region.writable
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        pf = self.pfdats.lookup(logical_id)
        if pf is not None and pf.imported_from is not None:
            if not want_write or self._have_write_grant(pf):
                self.metrics.counter("faults.local_hit").add()
                return self._map(ctx, region, vpn, pf, want_write,
                                 data_home=data_home)
        self.metrics.counter("faults.remote").add()
        yield self.sim.timeout(self.costs.fault_client_fs_ns
                               + self.costs.fault_client_locking_ns
                               + self.costs.fault_client_misc_vm_ns)
        yield from self.recovery_gate()
        try:
            result = yield from self.rpc.call(
                data_home, "export_page",
                {"logical_id": logical_id, "writable": want_write,
                 "client": self.kernel_id}, arg_bytes=160)
        except RpcRemoteError as exc:
            raise ProcessKilled(ctx.process.pid,
                                f"shared page lost: {exc}")
        yield self.sim.timeout(self.costs.fault_client_import_ns)
        pf = self.import_page(result["frame"], data_home, logical_id,
                              want_write)
        if want_write:
            pf.export_writable.add(self.kernel_id)
        ctx.process.dependencies.add(data_home)
        return self._map(ctx, region, vpn, pf, want_write,
                         data_home=data_home)

    # ------------------------------------------------------------------
    # remote file system operations
    # ------------------------------------------------------------------

    def _data_home_of_node(self, node: int) -> int:
        return self.registry.cell_of_node(node)

    def open_remote(self, ctx: ProcContext, path: str, mode: str,
                    create: bool) -> Generator:
        node = self.fs_node_for(path)
        data_home = self._data_home_of_node(node)
        if data_home == self.kernel_id:
            raise FileError("EIO", f"fs {node} is local but unmounted")
        yield from self.recovery_gate()
        yield self.sim.timeout(self.costs.open_remote_extra_ns)
        try:
            result = yield from self.rpc.call(
                data_home, "open_file",
                {"path": path, "mode": mode, "create": create},
                arg_bytes=200)
        except RpcRemoteError as exc:
            raise FileError(exc.errno, str(exc))
        fd = ctx.process.install_fd(
            result["fs_id"], result["ino"], data_home=data_home,
            mode=mode, generation=result["generation"])
        ctx.process.dependencies.add(data_home)
        self.metrics.counter("opens.remote").add()
        return fd.fd

    def _h_open_file(self, src_cell: int, args: dict) -> Generator:
        path = args.get("path")
        mode = args.get("mode")
        if not isinstance(path, str) or mode not in ("r", "w", "rw"):
            raise RpcHandlerError("EINVAL", f"bad open args {args!r}")
        fs = self.local_fs_for(path)
        if fs is None:
            raise RpcHandlerError("ENODEV", f"{path} not served here")
        yield self.sim.timeout(self.costs.open_local_ns)
        if args.get("create") and not fs.exists(path):
            yield self.sim.timeout(self.costs.create_ns)
            fs.create(path)
        try:
            inode = fs.lookup(path)
        except FileError as exc:
            raise RpcHandlerError(exc.errno, str(exc))
        return {"fs_id": fs.fs_id, "ino": inode.ino,
                "generation": inode.generation, "size": inode.size}

    def unlink_remote(self, ctx: ProcContext, path: str) -> Generator:
        node = self.fs_node_for(path)
        data_home = self._data_home_of_node(node)
        yield from self.recovery_gate()
        try:
            yield from self.rpc.call(data_home, "unlink_file",
                                     {"path": path}, arg_bytes=200)
        except RpcRemoteError as exc:
            raise FileError(exc.errno, str(exc))
        return None

    def _h_unlink_file(self, src_cell: int, args: dict) -> Generator:
        path = args.get("path")
        if not isinstance(path, str):
            raise RpcHandlerError("EINVAL", "bad path")
        fs = self.local_fs_for(path)
        if fs is None:
            raise RpcHandlerError("ENODEV", f"{path} not served here")
        yield self.sim.timeout(self.costs.unlink_ns)
        try:
            inode = fs.unlink(path)
        except FileError as exc:
            raise RpcHandlerError(exc.errno, str(exc))
        self._invalidate_file_cache(fs.fs_id, inode)
        return None

    def map_file_remote(self, ctx: ProcContext, path: str, writable: bool,
                        shared: bool) -> Generator:
        node = self.fs_node_for(path)
        data_home = self._data_home_of_node(node)
        yield from self.recovery_gate()
        try:
            info = yield from self.rpc.call(
                data_home, "open_file",
                {"path": path, "mode": "rw" if writable else "r",
                 "create": False}, arg_bytes=200)
        except RpcRemoteError as exc:
            raise FileError(exc.errno, str(exc))
        aspace = ctx.process.aspace
        npages = max(1, (info["size"] + PAGE - 1) // PAGE)
        region = Region(aspace.allocate_range(npages), npages,
                        FILE_REGION, writable, shared)
        region.fs_id = info["fs_id"]
        region.ino = info["ino"]
        region.data_home = data_home
        region.generation = info["generation"]
        self.heap.alloc(region, "region")
        aspace.add_region(region)
        ctx.process.dependencies.add(data_home)
        return region

    # -- bulk remote read/write ------------------------------------------------

    def read_remote(self, ctx: ProcContext, fd: FileDescriptor,
                    nbytes: int) -> Generator:
        return (yield from self._bulk_io(ctx, fd, nbytes, None))

    def write_remote(self, ctx: ProcContext, fd: FileDescriptor,
                     data: bytes) -> Generator:
        return (yield from self._bulk_io(ctx, fd, len(data), data))

    def _bulk_io(self, ctx: ProcContext, fd: FileDescriptor, nbytes: int,
                 data: Optional[bytes]) -> Generator:
        """Remote read()/write() through batched import (Table 7.3 path).

        Pages are imported in batches of :data:`BULK_PAGES` per RPC; the
        copy itself happens on the client against the (remote or local)
        frames, with the per-page remote surcharge from the cost table.
        """
        is_write = data is not None
        yield from self.recovery_gate()
        if is_write:
            # Size/extension is data-home state; one RPC reserves it.
            try:
                info = yield from self.rpc.call(
                    fd.data_home, "file_extend",
                    {"fs_id": fd.fs_id, "ino": fd.ino,
                     "offset": fd.offset, "nbytes": nbytes,
                     "generation": fd.generation})
            except RpcRemoteError as exc:
                raise FileError(exc.errno, str(exc))
        else:
            try:
                info = yield from self.rpc.call(
                    fd.data_home, "file_extend",
                    {"fs_id": fd.fs_id, "ino": fd.ino,
                     "offset": fd.offset, "nbytes": 0,
                     "generation": fd.generation})
            except RpcRemoteError as exc:
                raise FileError(exc.errno, str(exc))
            nbytes = min(nbytes, max(0, info["size"] - fd.offset))
        out = bytearray()
        moved = 0
        extra = (self.costs.file_write_remote_extra_ns if is_write
                 else self.costs.file_read_remote_extra_ns)
        while moved < nbytes:
            first_page = fd.offset // PAGE
            batch_pages = min(BULK_PAGES,
                              (fd.offset + nbytes - moved - 1) // PAGE
                              - first_page + 1)
            write_range = ((fd.offset, fd.offset + (nbytes - moved))
                           if is_write else None)
            imported = yield from self._import_batch(
                ctx, fd, first_page, batch_pages, is_write, write_range)
            for pf in imported:
                page_off = fd.offset % PAGE
                chunk = min(PAGE - page_off, nbytes - moved)
                if chunk <= 0:
                    break
                cost = (self._write_page_cost(chunk) if is_write
                        else self._read_page_cost(chunk))
                yield self.sim.timeout(cost + extra * chunk // PAGE)
                try:
                    if is_write:
                        # The copy issues ownership requests for the
                        # page's lines (modelled at page granularity):
                        # this is the remote-write-miss traffic the
                        # Section 4.2 firewall measurement sees, and it
                        # leaves dirty lines owned by the client CPU for
                        # the fault model's loss accounting.
                        self.machine.coherence.write(
                            ctx.cpu, pf.frame * PAGE + page_off)
                        self.machine.memory.write_bytes(
                            pf.frame, page_off, data[moved:moved + chunk],
                            cpu=ctx.cpu)
                    else:
                        self.machine.coherence.read(
                            ctx.cpu, pf.frame * PAGE + page_off)
                        out += self.machine.memory.read_bytes(
                            pf.frame, page_off, chunk, cpu=ctx.cpu)
                except BusError as exc:
                    # The data home's node died under us mid-copy: the
                    # access was through a user mapping, so the error is
                    # reflected to the process, not escalated to panic.
                    raise FileError("EIO",
                                    f"remote page lost mid-I/O: {exc}")
                fd.offset += chunk
                moved += chunk
        counter = "file.bytes_written" if is_write else "file.bytes_read"
        self.metrics.counter(counter).add(moved)
        return moved if is_write else bytes(out)

    def _import_batch(self, ctx: ProcContext, fd: FileDescriptor,
                      first_page: int, npages: int, writable: bool,
                      write_range: Optional[tuple] = None) -> Generator:
        """Import a run of file pages with one RPC; returns pfdats."""
        tag = ("file", fd.fs_id, fd.ino)
        needed = []
        have: Dict[int, Pfdat] = {}
        for idx in range(first_page, first_page + npages):
            pf = self.pfdats.lookup((tag, idx))
            if pf is not None and (not writable
                                   or self._have_write_grant(pf)
                                   or pf.imported_from is None):
                have[idx] = pf
            else:
                needed.append(idx)
        if needed:
            try:
                result = yield from self.rpc.call(
                    fd.data_home, "bulk_pages",
                    {"fs_id": fd.fs_id, "ino": fd.ino, "pages": needed,
                     "writable": writable, "generation": fd.generation,
                     "client": self.kernel_id,
                     "write_range": write_range},
                    arg_bytes=200)
            except RpcRemoteError as exc:
                raise FileError(exc.errno, str(exc))
            for idx, frame in zip(needed, result["frames"]):
                pf = self.pfdats.lookup((tag, idx))
                if pf is None:
                    pf = self.import_page(frame, fd.data_home, (tag, idx),
                                          writable)
                if writable:
                    pf.export_writable.add(self.kernel_id)
                    # Write grants obtained for fd I/O live until the
                    # descriptor closes (there is no mapping whose
                    # teardown would otherwise release them).
                    if pf not in fd.imported_pfdats:
                        fd.imported_pfdats.append(pf)
                have[idx] = pf
            ctx.process.dependencies.add(fd.data_home)
        return [have[idx] for idx in sorted(have) if idx >= first_page][:npages]

    def _h_bulk_pages(self, src_cell: int, args: dict) -> Generator:
        fs_id = args.get("fs_id")
        # Sanity-check before using as a dict key: a garbage fs_id may
        # not even be hashable, and a server must survive any request.
        fs = self.filesystems.get(fs_id) if isinstance(fs_id, int) else None
        pages = args.get("pages")
        if fs is None or not isinstance(pages, list) or len(pages) > 64:
            raise RpcHandlerError("EINVAL", "bad bulk request")
        try:
            inode = fs.inode(args.get("ino"))
        except FileError as exc:
            raise RpcHandlerError(exc.errno, str(exc))
        if args.get("generation") != inode.generation:
            raise RpcHandlerError("EIO", "stale generation")
        writable = bool(args.get("writable"))
        write_range = args.get("write_range")
        if write_range is not None and not (
                isinstance(write_range, (tuple, list))
                and len(write_range) == 2
                and all(isinstance(v, int) and v >= 0 for v in write_range)):
            raise RpcHandlerError("EINVAL", "bad write range")
        frames = []
        for idx in pages:
            if not isinstance(idx, int) or idx < 0:
                raise RpcHandlerError("EINVAL", f"bad page index {idx!r}")
            # Pages the client will fully overwrite need no disk fill.
            no_fill = bool(
                write_range is not None
                and write_range[0] <= idx * 4096
                and (idx + 1) * 4096 <= write_range[1])
            pf = yield from self.get_file_page(fs, inode, idx,
                                               no_fill=no_fill)
            yield from self.export_page_local(pf, src_cell, writable)
            frames.append(pf.frame)
        return {"frames": frames}

    def _h_file_extend(self, src_cell: int, args: dict) -> Generator:
        fs_id = args.get("fs_id")
        fs = self.filesystems.get(fs_id) if isinstance(fs_id, int) else None
        if fs is None:
            raise RpcHandlerError("ESTALE", "fs not here")
        try:
            inode = fs.inode(args.get("ino"))
        except FileError as exc:
            raise RpcHandlerError(exc.errno, str(exc))
        if args.get("generation") != inode.generation:
            raise RpcHandlerError("EIO", "stale generation")
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        nbytes = args.get("nbytes", 0)
        offset = args.get("offset", 0)
        if not all(isinstance(v, int) and v >= 0 for v in (nbytes, offset)):
            raise RpcHandlerError("EINVAL", "bad extend args")
        if nbytes:
            inode.size = max(inode.size, offset + nbytes)
        return {"size": inode.size}

    # ------------------------------------------------------------------
    # physical-level sharing: loan / borrow / return (Section 5.4)
    # ------------------------------------------------------------------

    def alloc_frame(self, ctx: Optional[ProcContext] = None,
                    preferred_cell: Optional[int] = None,
                    acceptable_cells: Optional[Set[int]] = None) -> Generator:
        """Allocate a frame, borrowing from another cell under pressure.

        The constraint arguments are the paper's page-allocator extension:
        "a set of cells that are acceptable for the request and one cell
        that is preferred".
        """
        local_ok = acceptable_cells is None or self.kernel_id in acceptable_cells
        want_local_first = (preferred_cell is None
                            or preferred_cell == self.kernel_id)
        if local_ok and want_local_first and \
                self.pfdats.free_count > LOCAL_RESERVE_FRAMES:
            return self.pfdats.alloc_frame()
        # Try borrowed stock, then borrow, then squeeze local.
        if self._borrowed_free:
            return self._borrowed_free.pop()
        borrowed = yield from self._borrow(preferred_cell, acceptable_cells)
        if borrowed:
            return self._borrowed_free.pop()
        if local_ok:
            try:
                return self.pfdats.alloc_frame()
            except NoFreeFrames:
                evicted = yield from self._evict_one(ctx)
                if evicted is not None:
                    return self.pfdats.alloc_frame()
        raise NoFreeFrames(f"cell {self.kernel_id}: no acceptable frames")

    def _borrow_target(self, preferred: Optional[int],
                       acceptable: Optional[Set[int]]) -> Optional[int]:
        hint = self.wax_hints.get("borrow_target")
        candidates = [c for c in self.registry.live_cell_ids()
                      if c != self.kernel_id
                      and (acceptable is None or c in acceptable)]
        if not candidates:
            return None
        if preferred in candidates:
            return preferred
        if hint in candidates:
            return hint
        return candidates[self.metrics.counter("borrows").value
                          % len(candidates)]

    def _borrow(self, preferred: Optional[int],
                acceptable: Optional[Set[int]]) -> Generator:
        target = self._borrow_target(preferred, acceptable)
        if target is None:
            return False
        yield from self.recovery_gate()
        try:
            result = yield from self.rpc.call(
                target, "borrow_frames", {"count": BORROW_BATCH})
        except (RpcTimeout, RpcRemoteError):
            return False
        frames = result.get("frames", []) if isinstance(result, dict) else []
        for frame in frames:
            pf = self.pfdats.alloc_extended(frame)
            pf.borrowed_from = target
            self._borrowed_free.append(pf)
        if frames:
            self.metrics.counter("borrows").add()
            self.sharing_metrics.counter("frames_borrowed").add(len(frames))
        return bool(frames)

    def _h_borrow_frames(self, src_cell: int, args: dict) -> Generator:
        """Memory-home side of a borrow: loan_frame (Table 5.1)."""
        count = args.get("count")
        if not isinstance(count, int) or not 0 < count <= 256:
            raise RpcHandlerError("EINVAL", f"bad count {count!r}")
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        frames = []
        while (len(frames) < count
               and self.pfdats.free_count > LOCAL_RESERVE_FRAMES):
            pf = self.pfdats.alloc_frame()
            self.pfdats.move_to_reserved(pf, src_cell)
            frames.append(pf.frame)
        if frames:
            self.sharing_metrics.counter("frames_loaned").add(len(frames))
            prov = self.prov
            if prov.enabled:
                prov.frames_loaned(self.kernel_id, src_cell, frames)
        return {"frames": frames}

    def return_borrowed_frame(self, pf: Pfdat) -> None:
        """Give a borrowed frame back ("sends a free message to the
        memory home as soon as the data cached in the frame is no longer
        in use", Section 5.4)."""
        memory_home = pf.borrowed_from
        frame = pf.frame
        self.pfdats.remove(pf)
        self.pfdats.release_extended(pf)
        if memory_home is None or not self.registry.is_live(memory_home):
            return
        self.sim.process(self._notify_return(memory_home, frame),
                         name=f"c{self.kernel_id}.return")

    def _notify_return(self, memory_home: int, frame: int) -> Generator:
        try:
            yield from self.rpc.call(memory_home, "return_frame",
                                     {"frame": frame})
        except (RpcTimeout, RpcRemoteError):
            pass

    def _h_return_frame(self, src_cell: int, args: dict) -> Generator:
        frame = args.get("frame")
        if not isinstance(frame, int) or frame not in self.pfdats.reserved:
            raise RpcHandlerError("EINVAL", f"frame {frame!r} not loaned")
        pf = self.pfdats.reserved.get(frame)
        if pf.loaned_to != src_cell:
            raise RpcHandlerError("EPERM", "not the borrower")
        # Reclaim before any yield: a concurrent duplicate return must
        # fail the not-loaned check, not race past it.
        pf = self.pfdats.return_from_reserved(frame)
        self.pfdats.remove(pf)
        pf.refcount = 0
        self.pfdats.free_frame(pf)
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        return None

    def _h_firewall_update(self, src_cell: int, args: dict) -> Generator:
        """A borrower asks us (memory home) to flip firewall bits."""
        frame = args.get("frame")
        grantee = args.get("grantee")
        if (not isinstance(frame, int) or not isinstance(grantee, int)
                or not self.registry.is_valid_cell(grantee)):
            raise RpcHandlerError("EINVAL", "bad firewall update")
        pf = self.pfdats.reserved.get(frame)
        if pf is None or pf.loaned_to != src_cell:
            raise RpcHandlerError("EPERM",
                                  f"frame {frame} not loaned to caller")
        node = self.machine.params.node_of_frame(frame)
        fw = self.machine.memory.firewalls[node]
        for gn in self.registry.nodes_of(grantee):
            if args.get("grant"):
                fw.grant_node(frame, node, gn)
            else:
                fw.revoke_node(frame, node, gn)
        extra = 0 if args.get("grant") else self.machine.params.firewall_revoke_extra_ns
        yield self.sim.timeout(self.machine.params.firewall_update_ns + extra)
        if args.get("grant"):
            pf.export_writable.add(grantee)
        else:
            pf.export_writable.discard(grantee)
        return None
