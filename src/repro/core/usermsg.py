"""User-level messaging on direct SIPS access (Section 6).

"User-level RPCs are implemented at the library level using direct access
to the message send primitive."  This module is that library: processes
bind numbered *ports*; a send goes straight through the SIPS hardware
primitive to the destination cell, where a thin demultiplexer (the only
kernel involvement — the message-arrival interrupt) drops it into the
port's queue.  No kernel RPC stubs, no server pool.

Payloads are limited to one cache line like any SIPS; larger transfers
belong in shared memory, with the message carrying the reference — which
is exactly how Wax's threads coordinate.

The library also provides a user-level RPC veneer (`call`/`serve`) built
from two one-way messages, mirroring how the paper's user-level RPCs
composed the primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.hardware.errors import BusError, SipsQueueFull
from repro.hardware.sips import REQUEST
from repro.sim.resources import FifoStore

#: marker distinguishing user-level SIPS from kernel RPC traffic at the
#: receiving interrupt handler.
USER_CHANNEL = "user-msg"


@dataclass
class UserMessage:
    src_cell: int
    src_pid: int
    port: int
    payload: Any
    sent_at: int


class UserMsgService:
    """Per-cell demultiplexer for user-level SIPS traffic.

    Installed alongside the kernel RPC dispatcher; the message-arrival
    interrupt costs only the dispatch time before the payload lands in
    the destination port's queue (the receiving process reads it at user
    level with no further kernel involvement).
    """

    def __init__(self, cell):
        self.cell = cell
        self.sim = cell.sim
        self._ports: Dict[int, FifoStore] = {}
        self.delivered = 0
        self.dropped = 0

    # -- port management (user-level library calls) ---------------------

    def bind(self, port: int) -> FifoStore:
        if port in self._ports:
            raise ValueError(f"port {port} already bound on cell "
                             f"{self.cell.kernel_id}")
        queue = FifoStore(self.sim, capacity=64,
                          name=f"umsg.c{self.cell.kernel_id}.p{port}",
                          block_on_full=False)
        self._ports[port] = queue
        return queue

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    # -- wire protocol -----------------------------------------------------

    def deliver(self, payload: dict) -> None:
        """Called from the SIPS interrupt path for user-channel messages."""
        port = payload.get("port")
        queue = self._ports.get(port)
        if queue is None or not queue.try_put(UserMessage(
                src_cell=payload.get("src_cell", -1),
                src_pid=payload.get("src_pid", -1),
                port=port,
                payload=payload.get("data"),
                sent_at=payload.get("sent_at", 0))):
            # No listener / queue full: user-level messaging is
            # best-effort; senders needing reliability build acks on top
            # (as this module's call/serve veneer does).
            self.dropped += 1
            return
        self.delivered += 1

    # -- send path -----------------------------------------------------------

    def send(self, ctx, dst_cell: int, port: int, data: Any,
             data_bytes: int = 64) -> Generator:
        """One-way user-level message; costs one SIPS + library time."""
        sips = self.cell.machine.sips
        if data_bytes > sips.params.sips_payload - 32:
            raise ValueError("payload exceeds a SIPS line; pass a "
                             "shared-memory reference instead")
        registry = self.cell.registry
        if not registry.is_valid_cell(dst_cell):
            raise ValueError(f"bad destination cell {dst_cell}")
        dst_node = registry.first_node_of(dst_cell)
        payload = {"channel": USER_CHANNEL, "port": port, "data": data,
                   "src_cell": self.cell.kernel_id,
                   "src_pid": ctx.process.pid if ctx else 0,
                   "sent_at": self.sim.now}
        # Library-side marshalling: far leaner than kernel RPC stubs.
        yield self.sim.timeout(self.cell.costs.careful_on_ns)
        backoff = 2_000
        deadline = self.sim.now + self.cell.costs.rpc_timeout_ns
        while True:
            try:
                sips.send(self.cell.cpu_ids[0], dst_node, payload,
                          data_bytes + 32, kind=REQUEST)
                return True
            except SipsQueueFull:
                if self.sim.now >= deadline:
                    return False
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2, 100_000)
            except BusError:
                return False

    def recv(self, ctx, queue: FifoStore,
             timeout_ns: Optional[int] = None) -> Generator:
        """Block on a bound port; returns a UserMessage or None."""
        get_ev = queue.get()
        if timeout_ns is None:
            msg = yield from ctx.block(_wait(get_ev))
            return msg
        deadline = self.sim.timeout(timeout_ns)
        winner = yield from ctx.block(_wait_any(self.sim, get_ev, deadline))
        if winner is get_ev:
            return get_ev.value
        return None

    # -- user-level RPC veneer --------------------------------------------------

    def call(self, ctx, dst_cell: int, port: int, data: Any,
             reply_port: int, timeout_ns: int = 10_000_000) -> Generator:
        """Two one-way messages composed into a user-level RPC."""
        reply_queue = self.bind(reply_port)
        try:
            ok = yield from self.send(
                ctx, dst_cell, port,
                {"args": data, "reply_port": reply_port,
                 "reply_cell": self.cell.kernel_id})
            if not ok:
                return None
            return (yield from self.recv(ctx, reply_queue, timeout_ns))
        finally:
            self.unbind(reply_port)

    def serve(self, ctx, queue: FifoStore,
              handler: Callable[[Any], Any],
              requests: int) -> Generator:
        """Serve ``requests`` user-level RPCs from a bound port."""
        served = 0
        while served < requests:
            msg = yield from self.recv(ctx, queue)
            body = msg.payload
            result = handler(body.get("args"))
            yield from self.send(ctx, body["reply_cell"],
                                 body["reply_port"], result)
            served += 1
        return served


def _wait(ev) -> Generator:
    value = yield ev
    return value


def _wait_any(sim, *events) -> Generator:
    winner = yield sim.any_of(list(events))
    return winner
