"""Wax: the user-level intercell resource-management process (Section 3.2).

Wax centralizes the allocation decisions that need a global view (Table
3.4: which cells to allocate memory from, clock-hand targeting, gang
scheduling / space sharing, swap victims) while each cell stays
responsible only for its internal correctness.

Architecture as in the paper:

* Wax runs as a spanning task with one thread per cell; the threads
  *read* state from every cell through shared memory and synchronize
  through ordinary user-level locks (modelled here as a shared snapshot
  dictionary refreshed by each thread);
* it pushes *hints*; every cell sanity-checks inputs received from Wax,
  so a damaged Wax "can hurt system performance but not correctness";
* it "uses resources from all cells, so its pages are discarded and it
  exits whenever any cell fails.  The recovery process starts a new
  incarnation of Wax which forks to all cells and rebuilds its picture of
  the system state from scratch."
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.hardware.params import NS_PER_MS


#: how often each Wax thread refreshes its cell's slice of the snapshot.
WAX_PERIOD_NS = 50 * NS_PER_MS


class Wax:
    """One (restartable) incarnation manager for the Wax process."""

    def __init__(self, system):
        self.system = system
        self.sim = system.sim
        self.incarnation = 0
        self._threads: List = []
        self._alive = False
        #: the shared-memory state snapshot Wax threads maintain:
        #: cell_id -> {"free_frames": int, "load": int, ...}
        self.snapshot: Dict[int, Dict[str, int]] = {}
        self.hints_pushed = 0
        self.restarts = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Fork Wax threads to every live cell."""
        if self._alive:
            return
        self._alive = True
        self.incarnation += 1
        self.snapshot = {}
        self._threads = []
        for cell_id in self.system.registry.live_cell_ids():
            proc = self.sim.process(
                self._wax_thread(cell_id, self.incarnation),
                name=f"wax.{self.incarnation}.c{cell_id}")
            self._threads.append(proc)

    def kill(self, reason: str) -> None:
        """Wax exits whenever any cell fails (its pages were discarded)."""
        if not self._alive:
            return
        self._alive = False
        for proc in self._threads:
            if proc.is_alive:
                proc.interrupt(reason)
        self._threads = []
        # Hints die with the incarnation: cells fall back to defaults.
        for cell in self.system.cells:
            if cell.alive:
                cell.wax_hints.clear()

    def restart(self) -> None:
        """New incarnation after recovery (rebuilds state from scratch)."""
        self.kill("restart")
        self.restarts += 1
        self.start()

    # -- the per-cell thread ----------------------------------------------

    def _wax_thread(self, cell_id: int, incarnation: int) -> Generator:
        """Read local state, synchronize via the shared snapshot, push
        hints derived from the global view."""
        try:
            while self._alive and incarnation == self.incarnation:
                cell = self.system.registry.cell_object(cell_id)
                if cell is None or not cell.alive:
                    return
                # Read local cell state (the "State" arrows of Fig. 3.3).
                self.snapshot[cell_id] = {
                    "free_frames": cell.pfdats.free_count,
                    "load": cell.live_process_count(),
                    "borrowed": len(cell._borrowed_free),
                }
                self._push_hints(cell)
                yield self.sim.timeout(WAX_PERIOD_NS)
        except Exception:
            return  # a dying Wax thread must never take a cell with it

    def _push_hints(self, cell) -> None:
        """Derive policy hints from the global snapshot (Table 3.4)."""
        live = self.system.registry.live_cell_ids()
        view = {c: self.snapshot.get(c) for c in live
                if self.snapshot.get(c) is not None and c != cell.kernel_id}
        if not view:
            return
        # Page-allocator hint: borrow from the cell with the most free
        # memory.  The receiving cell sanity-checks the value.
        target = max(view, key=lambda c: view[c]["free_frames"])
        hints = {
            "borrow_target": target,
            # Clock-hand hint: preferentially free pages whose memory
            # home is the most pressured cell (Section 5.7).
            "clockhand_target": min(view,
                                    key=lambda c: view[c]["free_frames"]),
            "incarnation": self.incarnation,
        }
        # Gang scheduling / space sharing (Table 3.4): when one spanning
        # task dominates the machine, grant its components their cells'
        # processors exclusively so the gang runs in lockstep.
        gang = self._pick_gang_task(live)
        if gang is not None:
            hints["gang_task"] = gang
        # Cells sanity-check Wax input (Section 3.2); feed it through the
        # same validation they would apply.
        if cell.validate_wax_hints(hints):
            cell.wax_hints.update(hints)
            if gang is None:
                cell.wax_hints.pop("gang_task", None)
            cell.apply_wax_hints()
            self.hints_pushed += 1

    def _pick_gang_task(self, live) -> Optional[int]:
        registry = self.system.registry
        for task_id, task in sorted(registry._tasks.items()):
            if task.dead or not task.components:
                continue
            if len(task.cells()) * 2 >= len(live):
                return task_id
        return None
