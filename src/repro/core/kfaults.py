"""Kernel-data corruption injection (the Table 7.4 software faults).

"Each software fault injection simulates a kernel bug by corrupting the
contents of a kernel data structure.  To stress the wild write defense and
careful reference protocol, we corrupted pointers in several pathological
ways: to address random physical addresses in the same cell or other
cells, to point one word away from the original address, and to point
back at the data structure itself."

The two injection sites match the paper's:

* a pointer in a **process address map** (the region's COW-leaf address);
* a pointer in a **copy-on-write tree** (a node's parent address).

"Some of the simulated faults resulted in wild writes" — after corrupting
a pointer, the injector can make the buggy kernel issue a burst of writes
through addresses derived from the corrupt value.  Writes to pages the
firewall protects bounce with bus errors (and panic the buggy cell); writes
to pages the cell legitimately had write access to really corrupt memory —
which is exactly what preemptive discard must mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hardware.errors import BusError, FirewallViolation
from repro.sim.rng import RandomStreams
from repro.unix.kheap import KOBJ_ALIGN

CORRUPT_RANDOM_LOCAL = "random_local"
CORRUPT_RANDOM_REMOTE = "random_remote"
CORRUPT_OFF_BY_ONE_WORD = "off_by_one_word"
CORRUPT_SELF_POINTER = "self_pointer"

ALL_MODES = (CORRUPT_RANDOM_LOCAL, CORRUPT_RANDOM_REMOTE,
             CORRUPT_OFF_BY_ONE_WORD, CORRUPT_SELF_POINTER)


@dataclass
class KernelFaultRecord:
    site: str
    mode: str
    cell_id: int
    time_ns: int
    original_value: int
    corrupt_value: int
    wild_writes_attempted: int = 0
    wild_writes_landed: int = 0
    wild_writes_blocked: int = 0


class KernelFaultInjector:
    """Corrupts kernel structures of one victim cell."""

    def __init__(self, system, seed: int = 7):
        self.system = system
        self.sim = system.sim
        self.rng = RandomStreams(seed)
        self.records: List[KernelFaultRecord] = []

    # -- corrupt-value synthesis ------------------------------------------

    def _corrupt_value(self, cell, original: int, mode: str,
                       self_addr: int) -> int:
        params = self.system.params
        if mode == CORRUPT_RANDOM_LOCAL:
            lo, hi = self.system.registry.heap_range_of(cell.kernel_id)
            # Random address in the same cell — any alignment.
            return self.rng.randint("kf.addr", lo, hi - 1)
        if mode == CORRUPT_RANDOM_REMOTE:
            others = [c for c in self.system.registry.all_cell_ids()
                      if c != cell.kernel_id]
            target = self.rng.choice("kf.cell", others)
            lo, hi = self.system.registry.heap_range_of(target)
            return self.rng.randint("kf.addr", lo, hi - 1)
        if mode == CORRUPT_OFF_BY_ONE_WORD:
            return original + 8 if original else self_addr + 8
        if mode == CORRUPT_SELF_POINTER:
            return self_addr
        raise ValueError(f"unknown corruption mode {mode!r}")

    # -- injection sites ------------------------------------------------------

    def corrupt_address_map(self, cell_id: int, mode: str,
                            wild_writes: int = 4) -> Optional[KernelFaultRecord]:
        """Corrupt the COW-leaf pointer in some process's address map."""
        cell = self.system.cell(cell_id)
        victims = [p for p in cell.processes.values()
                   if not p.exited and any(
                       r.kind == "anon" and r.task_id is None
                       for r in p.aspace.regions)]
        if not victims:
            return None
        proc = self.rng.choice("kf.proc", sorted(victims, key=lambda p: p.pid))
        region = next(r for r in proc.aspace.regions
                      if r.kind == "anon" and r.task_id is None)
        original = region.cow_leaf_addr
        corrupt = self._corrupt_value(cell, original, mode, region.kaddr)
        region.cow_leaf_addr = corrupt
        # The process-level leaf pointer is the same map entry.
        if proc.cow_leaf_addr == original:
            proc.cow_leaf_addr = corrupt
        record = KernelFaultRecord(
            site="address_map", mode=mode, cell_id=cell_id,
            time_ns=self.sim.now, original_value=original,
            corrupt_value=corrupt)
        self.records.append(record)
        self._note_corrupt(record)
        if wild_writes:
            self._wild_write_burst(cell, corrupt, wild_writes, record)
        return record

    def corrupt_cow_tree(self, cell_id: int, mode: str,
                         wild_writes: int = 4,
                         prefer_interior: bool = True
                         ) -> Optional[KernelFaultRecord]:
        """Corrupt a parent pointer inside the cell's COW forest.

        ``prefer_interior`` targets non-leaf nodes, which are traversed
        only on faults that miss the leaf — the reason the paper's COW
        corruption took far longer to detect (401-760 ms vs 38-65 ms).
        """
        cell = self.system.cell(cell_id)
        nodes = [n for n in cell.cow._nodes.values() if n.parent_addr != 0]
        if not nodes:
            return None
        interior = [n for n in nodes if n.refs > 1]
        pool = interior if (prefer_interior and interior) else nodes
        node = self.rng.choice("kf.cow",
                               sorted(pool, key=lambda n: n.node_id))
        original = node.parent_addr
        corrupt = self._corrupt_value(cell, original, mode, node.kaddr)
        node.parent_addr = corrupt
        if mode == CORRUPT_SELF_POINTER:
            node.parent_cell = node.owner_cell
        record = KernelFaultRecord(
            site="cow_tree", mode=mode, cell_id=cell_id,
            time_ns=self.sim.now, original_value=original,
            corrupt_value=corrupt)
        self.records.append(record)
        self._note_corrupt(record)
        if wild_writes:
            self._wild_write_burst(cell, corrupt, wild_writes, record)
        return record

    def _note_corrupt(self, record: KernelFaultRecord) -> None:
        rec = getattr(self.system, "recorder", None)
        if rec is not None and rec.enabled:
            rec.event("fault.corrupt", "fault", cell=record.cell_id,
                      site=record.site, mode=record.mode)
        prov = getattr(self.system, "provenance", None)
        if prov is not None and prov.enabled:
            prov.fault_injected(record.cell_id, kind="corrupt",
                                site=record.site, mode=record.mode)

    # -- wild writes ----------------------------------------------------------

    def _wild_write_burst(self, cell, seed_addr: int, count: int,
                          record: KernelFaultRecord) -> None:
        """The buggy kernel writes through garbage derived from the
        corrupt pointer.  The firewall decides what actually lands."""
        params = self.system.params
        registry = self.system.registry
        prov = getattr(self.system, "provenance", None)
        if prov is not None and not prov.enabled:
            prov = None
        cpu = cell.cpu_ids[0]
        addr = seed_addr
        for i in range(count):
            addr = (addr * 1103515245 + 12345) % params.total_memory
            frame = addr // params.page_size
            offset = (addr % params.page_size) & ~7
            record.wild_writes_attempted += 1
            if prov is not None:
                try:
                    home = registry.cell_of_node(params.node_of_frame(frame))
                except KeyError:
                    home = None
            try:
                cell.machine.memory.write_bytes(
                    frame, offset, b"\xde\xad\xbe\xef\xfe\xed\xfa\xce",
                    cpu=cpu)
                record.wild_writes_landed += 1
                if prov is not None:
                    prov.wild_write(cell.kernel_id, home, frame,
                                    landed=True)
            except FirewallViolation:
                record.wild_writes_blocked += 1
                if prov is not None:
                    prov.wild_write(cell.kernel_id, home, frame,
                                    landed=False, defense="firewall")
                # A firewall bus error during kernel execution panics the
                # buggy cell — unless it strikes while the kernel is in a
                # careful section, which wild writes never are.
                cell.panic("bus error on wild write (firewall)")
                return
            except BusError:
                record.wild_writes_blocked += 1
                if prov is not None:
                    prov.wild_write(cell.kernel_id, home, frame,
                                    landed=False, defense="bus_error")
                cell.panic("bus error on wild write")
                return
