"""Wild-write defense: firewall management policy + discard bookkeeping.

Section 4.2's two-part strategy: (1) manage the FLASH firewall "to
minimize the number of pages writable by remote cells", (2) when a cell
failure is detected, "other cells preemptively discard any pages writable
by the failed cell".

The management policy implemented is the paper's: "Write access to a page
is granted to all processors of a cell as a group, when any process on
that cell faults the page into a writable portion of its address space.
Granting access to all processors of the cell allows it to freely
reschedule the process on any of its processors without sending RPCs to
remote cells.  Write permission remains granted as long as any process on
that cell has the page mapped."

This module manages the grants on frames a cell controls: its own frames
(its nodes' firewalls are locally updatable) and frames it has *borrowed*
(the firewall lives at the memory home, so changing it "must send an RPC
to the memory home", Section 5.4).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.unix.pfdat import Pfdat


class FirewallManager:
    """Per-cell firewall grant/revoke with the group-grant policy."""

    def __init__(self, cell):
        self.cell = cell
        self.sim = cell.sim
        self.costs = cell.costs
        self.grants = 0
        self.revokes = 0

    # -- helpers -----------------------------------------------------------

    def _home_node(self, frame: int) -> int:
        return self.cell.machine.params.node_of_frame(frame)

    def _owns_node(self, node: int) -> bool:
        return node in self.cell.node_ids

    # -- grant ---------------------------------------------------------------

    def grant_write(self, pf: Pfdat, client_cell: int) -> Generator:
        """Grant write access on ``pf.frame`` to every CPU of a cell.

        Charged as the uncached writes to the coherence controller
        (Section 7.2's model of a firewall status change).  For a
        borrowed frame the update is an RPC to the memory home.
        """
        if client_cell in pf.export_writable:
            return None
        node = self._home_node(pf.frame)
        client_nodes = self.cell.registry.nodes_of(client_cell)
        if self._owns_node(node):
            fw = self.cell.machine.memory.firewalls[node]
            for cn in client_nodes:
                fw.grant_node(pf.frame, node, cn)
            yield self.sim.timeout(self.cell.machine.params.firewall_update_ns)
        else:
            # Borrowed frame: the memory home flips the bits for us.
            yield from self.cell.rpc.call(
                pf.borrowed_from, "firewall_update",
                {"frame": pf.frame, "grantee": client_cell, "grant": True})
        pf.export_writable.add(client_cell)
        self.grants += 1
        self.cell.firewall_metrics.counter("grants").add()
        channels = self.cell.machine.channels
        if channels is not None:
            # The flip happens at the memory home and changes what the
            # client cell may write: home node -> client, one op per
            # grant (the group-grant covers all the client's CPUs).
            channels.firewall(
                node, client_nodes[0], True,
                self.cell.machine.params.firewall_update_ns)
        obs = self.cell.obs
        if obs.enabled:
            obs.event("firewall.grant", "firewall",
                      cell=self.cell.kernel_id, frame=pf.frame,
                      grantee=client_cell)
        prov = self.cell.prov
        if prov.enabled:
            # A write grant to a tainted cell exposes this frame; the
            # preemptive discard must reclaim it.
            prov.write_granted(self.cell.kernel_id, client_cell, pf.frame)
        return None

    def revoke_write(self, pf: Pfdat, client_cell: int) -> Generator:
        """Revoke a cell's write access (waits for pending writebacks)."""
        if client_cell not in pf.export_writable:
            return None
        node = self._home_node(pf.frame)
        client_nodes = self.cell.registry.nodes_of(client_cell)
        if self._owns_node(node):
            fw = self.cell.machine.memory.firewalls[node]
            for cn in client_nodes:
                fw.revoke_node(pf.frame, node, cn)
            # Revocation must ensure all pending valid writebacks have
            # been delivered (Section 4.2) — the extra network round.
            yield self.sim.timeout(self.cell.machine.params.firewall_update_ns
                                   + self.cell.machine.params.firewall_revoke_extra_ns)
        else:
            try:
                yield from self.cell.rpc.call(
                    pf.borrowed_from, "firewall_update",
                    {"frame": pf.frame, "grantee": client_cell,
                     "grant": False})
            except Exception:
                pass  # memory home died; its firewall died with it
        pf.export_writable.discard(client_cell)
        self.revokes += 1
        self.cell.firewall_metrics.counter("revokes").add()
        channels = self.cell.machine.channels
        if channels is not None:
            params = self.cell.machine.params
            channels.firewall(
                node, client_nodes[0], False,
                params.firewall_update_ns + params.firewall_revoke_extra_ns)
        obs = self.cell.obs
        if obs.enabled:
            obs.event("firewall.revoke", "firewall",
                      cell=self.cell.kernel_id, frame=pf.frame,
                      grantee=client_cell)
        return None

    def revoke_all_local(self, pf: Pfdat) -> None:
        """Recovery fast path: reset a local frame's firewall (no RPC)."""
        node = self._home_node(pf.frame)
        if self._owns_node(node):
            self.cell.machine.memory.firewalls[node].revoke_all_remote(
                pf.frame, node)
        if pf.export_writable:
            self.cell.firewall_metrics.counter("bulk_revokes").add()
        pf.export_writable.clear()

    # -- the Section 4.2 measurement -------------------------------------------

    def remotely_writable_pages(self) -> int:
        """How many of this cell's pages are writable by other cells.

        This is the quantity the paper sampled every 20 ms: ~15 per cell
        under pmake (max 42 on the /tmp file server), ~550 under ocean.
        O(#reserved) via the table's export index, not O(all frames).
        """
        count = self.cell.pfdats.export_writable_count()
        for pf in self.cell.pfdats.reserved.values():
            if pf.export_writable:
                count += 1
        return count

    def frames_writable_by(self, cell_id: int) -> List[Pfdat]:
        """Our pfdats whose frames the given cell can write.

        The preemptive-discard working set: includes pages exported
        writable to the cell and frames loaned to it (it holds full
        control over those).  O(result) via the writable-by-cell index.
        """
        out = self.cell.pfdats.writable_by(cell_id)
        for pf in self.cell.pfdats.reserved.values():
            if pf.loaned_to == cell_id or cell_id in pf.export_writable:
                out.append(pf)
        return out
