"""The Hive cell: one independent kernel cooperating in the multicell.

``Cell`` composes the UNIX substrate with the sharing and SSI mixins and
adds the fault-containment machinery: the RPC subsystem, the careful
reader, the failure detector (with ring clock monitoring), panic wiring,
and the per-cell recovery algorithm with its double global barrier.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

from repro.core.careful import CarefulReader
from repro.core.failure import FailureDetector
from repro.core.rpc import RpcSubsystem
from repro.core.sharing import SharingMixin
from repro.core.ssi import SsiMixin
from repro.core.wildwrite import FirewallManager
from repro.obs.provenance import NULL_PROVENANCE
from repro.obs.recorder import OBS_RECOVERY
from repro.sim.stats import MetricSet
from repro.unix.address_space import ANON_REGION
from repro.unix.kernel import GlobalNamespace, LocalKernel
from repro.unix.process import SIGKILL


class Cell(SharingMixin, SsiMixin, LocalKernel):
    """One cell of a Hive system."""

    def __init__(self, sim, machine, cell_id: int, node_ids: List[int],
                 namespace: GlobalNamespace, registry, costs=None,
                 filesystems=None, incarnation: int = 0):
        self.registry = registry
        self.incarnation = incarnation
        # Per-subsystem metric registries, aggregated system-wide by
        # repro.obs.metrics.snapshot_system.  Created before the kernel
        # substrate so early RPC/detector wiring can record into them.
        self.sharing_metrics = MetricSet(name=f"sharing{cell_id}")
        self.firewall_metrics = MetricSet(name=f"firewall{cell_id}")
        self.recovery_metrics = MetricSet(name=f"recovery{cell_id}")
        self.detection_metrics = MetricSet(name=f"detect{cell_id}")
        super().__init__(sim, machine, cell_id, node_ids, namespace,
                         costs=costs)
        if filesystems is not None:
            # Reintegration: the platters survive the reboot.
            self.filesystems = filesystems
        self.rpc = RpcSubsystem(sim, self, machine.sips, self.costs)
        from repro.core.usermsg import UserMsgService

        self.usermsg = UserMsgService(self)
        self.rpc.usermsg = self.usermsg
        self.careful = CarefulReader(self)
        self.detector = FailureDetector(self)
        self.firewall_mgr = FirewallManager(self)
        #: fault-provenance tracer handle; ``attach_provenance`` swaps
        #: in a live tracer (same discipline as ``obs``).
        self.prov = NULL_PROVENANCE
        #: hints pushed by Wax (sanity-checked on use, Section 3.2)
        self.wax_hints: Dict[str, object] = {}
        #: anonymous logical pages lost to preemptive discard; faults on
        #: them kill the faulting process (the data is unrecoverable)
        self.poisoned_anon: Set[tuple] = set()
        self.in_recovery = False
        self.recovery_done_event = sim.event(f"c{cell_id}.recovered")
        self.recovery_entries: List[int] = []
        self._init_sharing()
        self._init_ssi()

    # ------------------------------------------------------------------
    # detection wiring
    # ------------------------------------------------------------------

    def failure_hint(self, suspect_cell: int, reason: str) -> None:
        self.detector.hint(suspect_cell, reason)

    def validate_wax_hints(self, hints: dict) -> bool:
        """Sanity-check policy input from Wax (Section 3.2).

        "Each cell protects itself by sanity-checking the inputs it
        receives from Wax" — a damaged Wax can cost performance but not
        correctness, so anything suspicious is simply rejected.
        """
        if not isinstance(hints, dict):
            return False
        for key in ("borrow_target", "clockhand_target"):
            value = hints.get(key)
            if value is None:
                continue
            if (not isinstance(value, int)
                    or not self.registry.is_valid_cell(value)
                    or value == self.kernel_id
                    or not self.registry.is_live(value)):
                return False
        gang = hints.get("gang_task")
        if gang is not None:
            if not isinstance(gang, int) or self.registry.task(gang) is None:
                return False
        return True

    def clock_tick_hook(self) -> None:
        """Every tick: run the clock-monitoring heuristic (Section 4.3)."""
        self.detector.clock_check()

    def apply_wax_hints(self) -> None:
        """Act on freshly-pushed Wax hints that need kernel action.

        Gang scheduling / space sharing (Table 3.4): grant this cell's
        processors exclusively to the local components of the hinted
        spanning task; revoke the grant when the hint goes away.  The
        reservation dies automatically with the process.
        """
        gang_task = self.wax_hints.get("gang_task")
        current = getattr(self, "_gang_reserved_pids", set())
        wanted = set()
        if isinstance(gang_task, int):
            task = self.registry.task(gang_task)
            if task is not None and not task.dead:
                wanted = {pid for pid, cell in task.components.items()
                          if cell == self.kernel_id
                          and pid in self.processes
                          and not self.processes[pid].exited}
        for pid in current - wanted:
            self.sched.release_reservation(pid)
        for pid in wanted - current:
            self.sched.reserve_cpus(pid, set(self.cpu_ids))
        self._gang_reserved_pids = wanted

    def clockhand_preferred_source(self):
        """Wax's clock-hand hint: free the pressured cell's memory first
        (Section 5.7).  Sanity-checked like all Wax input."""
        target = self.wax_hints.get("clockhand_target")
        if (isinstance(target, int) and target != self.kernel_id
                and self.registry.is_live(target)):
            return target
        return None

    def panic(self, reason: str) -> None:
        if not self.alive:
            return
        super().panic(reason)
        self.rpc.shutdown()
        if not self.recovery_done_event.triggered:
            self.recovery_done_event.fail(
                RuntimeError(f"cell {self.kernel_id} panicked"))

    def die_confirmed(self, reason: str) -> None:
        """Agreement confirmed this cell failed: finish it off.

        For a software fault the cell has usually already panicked; for a
        hardware fault its node is halted and threads are frozen mid-run —
        they are killed here so the simulation drains.
        """
        if self.alive:
            self.alive = False
            self.panic_reason = reason
            for proc in list(self.processes.values()):
                for thread in list(proc.threads):
                    thread.kill(f"cell declared failed: {reason}")
            self.rpc.shutdown()
            if not self.recovery_done_event.triggered:
                self.recovery_done_event.fail(RuntimeError(reason))

    # ------------------------------------------------------------------
    # recovery (Sections 4.2/4.3)
    # ------------------------------------------------------------------

    def run_recovery(self, round_id: int, dead: Set[int],
                     survivors: Set[int], barriers, record,
                     parent_span: int = 0) -> Generator:
        """This cell's half of the double-barrier recovery round."""
        self.in_recovery = True
        if self.recovery_done_event.triggered:
            self.recovery_done_event = self.sim.event(
                f"c{self.kernel_id}.recovered")
        entered_ns = self.sim.now
        self.recovery_entries.append(entered_ns)
        obs = self.obs
        cell_span = obs.begin("recovery.cell", OBS_RECOVERY,
                              cell=self.kernel_id, parent=parent_span,
                              round=round_id) if obs.enabled else None

        # -- pre-barrier-1: flush TLBs, remove remote mappings ----------
        phase = obs.begin("recovery.flush", OBS_RECOVERY,
                          cell=self.kernel_id, parent=cell_span,
                          round=round_id) if obs.enabled else None
        yield self.sim.timeout(self.costs.tlb_flush_ns * len(self.cpu_ids))
        unmapped = 0
        for proc in list(self.processes.values()):
            if proc.exited:
                continue
            for vpn, pte in proc.aspace.remote_mappings(self.kernel_id):
                proc.aspace.unmap_page(self.kernel_id, vpn)
                if pte.pfdat is not None:
                    pte.pfdat.refcount = max(0, pte.pfdat.refcount - 1)
                unmapped += 1
        # Drop every logical import: the binding must be re-established
        # through a checked RPC after recovery.
        prov = self.prov
        for pf in list(self.pfdats.all_pfdats()):
            if pf.imported_from is not None:
                borrowed_from = pf.borrowed_from
                if prov.enabled:
                    prov.import_dropped(self.kernel_id, pf.frame,
                                        pf.imported_from)
                pf.imported_from = None
                if pf.extended and borrowed_from is None:
                    self.pfdats.release_extended(pf)
                else:
                    self.pfdats.remove(pf)
                unmapped += 1
        for pf in list(self.pfdats.reserved.values()):
            if pf.imported_from is not None and prov.enabled:
                prov.import_dropped(self.kernel_id, pf.frame,
                                    pf.imported_from)
            pf.imported_from = None
        yield self.sim.timeout(self.costs.unmap_page_ns * unmapped)
        if phase is not None:
            obs.end(phase, unmapped=unmapped)

        phase = obs.begin("recovery.barrier1", OBS_RECOVERY,
                          cell=self.kernel_id, parent=cell_span,
                          round=round_id) if obs.enabled else None
        ev = barriers.join((round_id, 1), self.kernel_id, survivors)
        yield ev
        yield self.sim.timeout(self.costs.barrier_round_ns)
        if phase is not None:
            obs.end(phase)

        phase = obs.begin("recovery.cleanup", OBS_RECOVERY,
                          cell=self.kernel_id, parent=cell_span,
                          round=round_id) if obs.enabled else None
        # -- post-barrier-1: firewall revocation + preemptive discard ----
        # No further valid page faults or remote accesses are pending.
        # The VM cleanup walks the whole pfdat table twice (detecting
        # pages writable by failed cells, then revoking grants) — the
        # bulk of the paper's 40-80 ms recovery latency.
        npfdats = len(self.pfdats.owned_frames)
        yield self.sim.timeout(
            2 * npfdats * self.costs.recovery_scan_per_pfdat_ns)
        discarded = yield from self._preemptive_discard(dead, record)
        yield from self._revoke_all_grants()
        killed = self._kill_dependent_processes(dead)
        record.killed_processes += killed
        record.discarded_pages += discarded
        self._resolve_dead_children(dead)
        yield self.sim.timeout(self.costs.recovery_fixed_ns)
        if phase is not None:
            obs.end(phase, discarded=discarded, killed=killed)

        phase = obs.begin("recovery.barrier2", OBS_RECOVERY,
                          cell=self.kernel_id, parent=cell_span,
                          round=round_id) if obs.enabled else None
        ev = barriers.join((round_id, 2), self.kernel_id, survivors)
        yield ev
        yield self.sim.timeout(self.costs.barrier_round_ns)
        if phase is not None:
            obs.end(phase)

        self.in_recovery = False
        if not self.recovery_done_event.triggered:
            self.recovery_done_event.succeed()
        self.metrics.counter("recoveries").add()
        self.recovery_metrics.counter("rounds").add()
        self.recovery_metrics.counter("pages_discarded").add(discarded)
        self.recovery_metrics.counter("procs_killed").add(killed)
        self.recovery_metrics.histogram("duration_ns").record(
            self.sim.now - entered_ns)
        if cell_span is not None:
            obs.end(cell_span, discarded=discarded, killed=killed)
        return None

    def _preemptive_discard(self, dead: Set[int], record) -> Generator:
        """Discard every page the failed cells could have written.

        "Hive makes the pessimistic assumption that all potentially
        damaged pages have been corrupted.  When a cell failure is
        detected, all pages writable by the failed cell are preemptively
        discarded" (Section 3.1).
        """
        discarded = 0
        lost_files: Set[tuple] = set()
        for dead_cell in dead:
            working_set = self.firewall_mgr.frames_writable_by(dead_cell)
            # Batch the cache-line invalidations for the whole discard
            # set; the per-page bookkeeping follows.
            self.machine.coherence.invalidate_frames(
                [pf.frame for pf in working_set])
            for pf in working_set:
                discarded += self._discard_page(pf, dead_cell, lost_files,
                                                invalidate=False)
        # Frames we borrowed from a dead memory home died with it, along
        # with whatever we cached in them.
        for pf in list(self.pfdats.all_pfdats()):
            if pf.extended and pf.borrowed_from in dead:
                discarded += self._discard_page(pf, pf.borrowed_from,
                                                lost_files)
                self._borrowed_free = [b for b in self._borrowed_free
                                       if b is not pf]
                if self.pfdats.by_frame(pf.frame) is pf:
                    self.pfdats.release_extended(pf)
        self._borrowed_free = [b for b in self._borrowed_free
                               if b.borrowed_from not in dead]
        record.files_lost += len(lost_files)
        yield self.sim.timeout(self.costs.discard_per_page_ns * discarded)
        return discarded

    def _discard_page(self, pf, dead_cell: int, lost_files: Set[tuple],
                      invalidate: bool = True) -> int:
        """Discard one potentially-corrupt page."""
        prov = self.prov
        if prov.enabled:
            prov.page_discarded(self.kernel_id, pf.frame, dead_cell)
        if invalidate:
            self.machine.coherence.invalidate_frame(pf.frame)
        logical_id = pf.logical_id
        if logical_id is not None:
            tag, idx = logical_id
            if pf.dirty and tag[0] == "file":
                fs = self.filesystems.get(tag[1])
                if fs is not None:
                    try:
                        inode = fs.inode(tag[2])
                        if (tag[1], tag[2]) not in lost_files:
                            fs.bump_generation(inode)
                            lost_files.add((tag[1], tag[2]))
                    except Exception:
                        pass
            elif tag[0] in ("anon", "task"):
                # Anonymous data has no backing store: it is simply gone.
                self.poisoned_anon.add(logical_id)
            self.pfdats.remove(pf)
        # Remove any local mappings of the frame.
        for proc in list(self.processes.values()):
            if proc.exited:
                continue
            pmap = proc.aspace.ptes.get(self.kernel_id, {})
            stale = [vpn for vpn, pte in pmap.items()
                     if pte.frame == pf.frame]
            for vpn in stale:
                proc.aspace.unmap_page(self.kernel_id, vpn)
        pf.exported_to.clear()
        pf.export_writable.clear()
        pf.dirty = False
        pf.refcount = 0
        if pf.frame in self.pfdats.reserved and pf.loaned_to == dead_cell:
            reclaimed = self.pfdats.return_from_reserved(pf.frame)
            self.pfdats.free_frame(reclaimed)
        elif not pf.extended and not pf.on_free_list \
                and pf.frame in self.pfdats.owned_frames \
                and pf.frame not in self.pfdats.reserved:
            self.pfdats.free_frame(pf)
        return 1

    def _revoke_all_grants(self) -> Generator:
        """Revoke every remote write grant on our frames (no RPCs needed:
        the firewalls are on our own nodes).  The firewall flips are
        batched per home node through the bulk-revoke path."""
        revoked = 0
        frames_by_node: Dict[int, list] = {}
        params = self.machine.params
        for pf in self.pfdats.all_pfdats():
            pf.exported_to.clear()
            if pf.export_writable and not pf.extended:
                node = params.node_of_frame(pf.frame)
                if node in self.node_ids:
                    frames_by_node.setdefault(node, []).append(pf.frame)
                self.firewall_metrics.counter("bulk_revokes").add()
                pf.export_writable.clear()
                revoked += 1
        for pf in self.pfdats.reserved.values():
            if pf.export_writable:
                self.firewall_mgr.revoke_all_local(pf)
                revoked += 1
        for node, frames in frames_by_node.items():
            self.machine.memory.firewalls[node].bulk_revoke_all_remote(
                frames, node)
        yield self.sim.timeout(
            (self.machine.params.firewall_update_ns
             + self.machine.params.firewall_revoke_extra_ns) * revoked)
        return None

    def _resolve_dead_children(self, dead: Set[int]) -> None:
        """Dangling-reference cleanup: waits on children that lived on a
        failed cell complete with an error status (the exit notification
        will never come)."""
        for pid, ev in list(self._remote_children.items()):
            if self.registry.cell_of_pid(pid) in dead:
                self._remote_child_status[pid] = -1
                if not ev.triggered:
                    ev.succeed(-1)

    def _kill_dependent_processes(self, dead: Set[int]) -> int:
        """Kill processes whose irreplaceable state lived on a dead cell.

        Processes that merely *read files* served by a dead cell are kept
        (they get I/O errors later, per the generation-number design);
        processes whose anonymous memory ancestry or spanning task touched
        the dead cell cannot make progress and are killed.
        """
        killed = 0
        for proc in list(self.processes.values()):
            if proc.exited:
                continue
            reason = None
            if proc.task_id is not None:
                task = self.registry.task(proc.task_id)
                if task is not None and (task.dead
                                         or set(task.cells()) & dead):
                    reason = "spanning task lost a cell"
            if reason is None and self._cow_ancestry_touches(proc, dead):
                reason = "anonymous memory lost with failed cell"
            if reason is None:
                mapped = proc.aspace.ptes.get(self.kernel_id, {})
                for pte in mapped.values():
                    pf = pte.pfdat
                    if pf is not None and pf.logical_id in self.poisoned_anon:
                        reason = "mapped page was discarded"
                        break
            if reason:
                if self.prov.enabled:
                    self.prov.process_killed(self.kernel_id, proc.pid,
                                             reason)
                proc.post_signal(SIGKILL)
                killed += 1
        return killed

    def _cow_ancestry_touches(self, proc, dead: Set[int]) -> bool:
        leaf = self._resolve_local_cow(proc.cow_leaf_addr)
        if leaf is None:
            return False
        node = leaf
        hops = 0
        while node is not None and hops < 10_000:
            if node.parent_addr == 0:
                return False
            if node.parent_cell != self.kernel_id:
                return node.parent_cell in dead
            resolved = self.heap.resolve(node.parent_addr)
            if resolved is None or resolved[0] != "cownode":
                return False
            node = resolved[1]
            hops += 1
        return False
