"""Failure detection: hints, clock monitoring, and the two-strike rule.

Section 4.3: a cell is considered *potentially* failed if

* an RPC sent to it times out;
* an attempt to access its memory causes a bus error;
* "a shared memory location which it updates on every clock interrupt
  fails to increment" (clock monitoring — catches halted processors and
  deadlocked kernels);
* data read from its memory fails the careful-reference consistency
  checks (catches software faults).

A hint is only a hint: it triggers the distributed agreement round, which
either confirms the failure or votes the accuser down.  "To prevent a
corrupt cell from repeatedly broadcasting alerts and damaging system
performance over a long period, a cell that broadcasts the same alert
twice but is voted down by the distributed agreement algorithm both times
is considered corrupt by the other cells."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.hardware.errors import BusError


@dataclass
class Hint:
    reporter: int
    suspect: int
    reason: str
    time_ns: int


class FailureDetector:
    """Per-cell hint generation and clock monitoring."""

    #: heartbeat must advance at least once in this many of *our* ticks,
    #: otherwise the monitored cell is suspected.  Two ticks tolerates
    #: phase skew between the cells' clocks.
    STALL_TICKS = 2

    def __init__(self, cell):
        self.cell = cell
        self.hints: List[Hint] = []
        #: stable instrumentation hook: called with each accepted Hint
        #: before it reaches the coordinator (tracing, flight recorder).
        self.observers: List[Callable[[Hint], None]] = []
        #: cell we watch (ring: each cell monitors its successor).
        self.monitored_cell: Optional[int] = None
        self._last_heartbeat: Optional[int] = None
        self._stalled_ticks = 0
        self.clock_checks = 0

    # -- hint entry point ----------------------------------------------

    def hint(self, suspect: int, reason: str) -> None:
        """Record a hint and alert the coordinator (broadcast)."""
        if not self.cell.alive or suspect == self.cell.kernel_id:
            return
        h = Hint(reporter=self.cell.kernel_id, suspect=suspect,
                 reason=reason, time_ns=self.cell.sim.now)
        self.hints.append(h)
        self.cell.detection_metrics.counter("hints").add()
        for obs in list(self.observers):
            obs(h)
        self.cell.registry.coordinator.report_hint(h)

    # -- clock monitoring -----------------------------------------------------

    def set_monitored(self, cell_id: Optional[int]) -> None:
        self.monitored_cell = cell_id
        self._last_heartbeat = None
        self._stalled_ticks = 0

    def clock_check(self) -> None:
        """Run on every local clock tick: read the watched cell's clock.

        The read goes through the careful-reference discipline for bus
        errors; the value comparison is the heuristic check.  The average
        cost measured in the paper for this path is 1.16 us per tick.
        """
        target = self.monitored_cell
        if target is None or not self.cell.alive:
            return
        self.clock_checks += 1
        watched = self.cell.registry.cell_object(target)
        if watched is None:
            return
        try:
            # Memory traffic for the heartbeat line (ping-pongs between
            # the incrementing cell and us every tick: always a miss).
            self.cell.machine.coherence.read(
                self.cell.cpu_ids[0], watched.heartbeat_addr)
        except BusError as exc:
            self.hint(target, f"bus error reading clock word: {exc}")
            return
        value = watched.heartbeat_value
        if self._last_heartbeat is None or value > self._last_heartbeat:
            self._last_heartbeat = value
            self._stalled_ticks = 0
            return
        self._stalled_ticks += 1
        if self._stalled_ticks >= self.STALL_TICKS:
            self._stalled_ticks = 0
            self.hint(target,
                      f"clock word stalled at {value} for "
                      f"{self.STALL_TICKS} ticks")


class StrikeBook:
    """System-wide record of voted-down alerts (two-strike rule).

    Conceptually replicated at every cell (each cell observes every
    agreement outcome); kept as one shared structure for determinism.
    """

    def __init__(self, limit: int = 2):
        self.limit = limit
        self._strikes: Dict[Tuple[int, int], int] = {}

    def voted_down(self, accuser: int, suspect: int) -> bool:
        """Record a voted-down alert; True if the accuser is now corrupt."""
        key = (accuser, suspect)
        self._strikes[key] = self._strikes.get(key, 0) + 1
        return self._strikes[key] >= self.limit

    def clear_cell(self, cell_id: int) -> None:
        """Forget strikes involving a rebooted cell."""
        self._strikes = {
            k: v for k, v in self._strikes.items()
            if cell_id not in k
        }

    def count(self, accuser: int, suspect: int) -> int:
        return self._strikes.get((accuser, suspect), 0)
