"""Intercell RPC on SIPS (Section 6 of the paper).

Two service classes:

* **Interrupt-level RPCs** are serviced entirely in the message-arrival
  interrupt handler — no server process, no blocking locks.  The minimum
  end-to-end null RPC is 7.2 us; the client *spins* for the reply and only
  context-switches after 50 us, "which almost never occurs".
* **Queued RPCs** are handed to a server-process pool for requests that
  may block (disk I/O, lock acquisition).  A queued request is "an initial
  interrupt-level RPC which launches the operation, then a completion RPC
  sent from the server back to the client".  Minimum null latency 34 us,
  "in practice ... much higher because of scheduling delays".

Hive structures common services as "initial best-effort interrupt-level
service routines that fall back to queued service routines only if
required" — handlers here can return the sentinel :data:`MUST_QUEUE` from
their interrupt-level attempt to trigger exactly that fallback.

Marshalling costs follow Table 5.2: arguments beyond one cache line are
sent *by reference* and charged copy + alloc/free time.  "Each cell
sanity-checks all information received from other cells and sets timeouts
whenever waiting for a reply": handlers receive plain dict payloads and
validate them; the client raises :class:`RpcTimeout` — a failure hint —
when no reply arrives in time.

Fast path (PR5)
---------------
``HIVE_RPC_FAST=0`` in the environment restores the original dispatch.
With the fast path on (the default) the simulated latencies and RPC
counters are unchanged, but the client and server sides allocate and
schedule far less per round trip:

* the client waits on the reply event *directly* with a cancellable
  deadline entry instead of building an ``any_of([reply, deadline])``
  pair — the losing deadline is revoked in place when the reply wins;
* the three post-reply cost charges (interrupt dispatch, optional
  context switch, unmarshal stub) coalesce into a single timeout of the
  same total;
* ``_Pending`` records, reply events, and reply payload dicts are
  pooled and recycled;
* interrupt-level service runs on a pooled :class:`_ServiceTask`
  driver instead of spawning a full engine ``Process`` per message.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from repro.hardware.errors import BusError, SipsQueueFull
from repro.hardware.sips import REPLY, REQUEST, SipsFabric, SipsMessage
from repro.sim.engine import Event, Interrupted, Simulator, Timeout
from repro.sim.resources import FifoStore
from repro.sim.stats import MetricSet
from repro.unix.costs import KernelCosts
from repro.unix.errors import RpcTimeout

#: sentinel: an interrupt-level handler could not complete without
#: blocking; re-dispatch through the queued service path.
MUST_QUEUE = object()

#: handlers flagged interrupt-level must never yield blocking events; the
#: queued class may.
INTERRUPT_LEVEL = "interrupt"
QUEUED = "queued"


@dataclass
class RpcError:
    """A handler-raised error shipped back to the caller."""

    errno: str
    message: str


class _RpcDeadline(Exception):
    """Internal sentinel failing a fast-path reply event at its deadline.

    Distinct from :class:`RpcTimeout` so the client can tell its own
    deadline expiry apart from a peer's ``shutdown()`` failing the
    pending event (which delivers RpcTimeout directly).
    """


class _Pending:
    """Client-side record of an in-flight call.  Pooled and recycled."""

    __slots__ = ("op", "event", "sent_at")

    def __init__(self, op: str, event: Any, sent_at: int):
        self.op = op
        self.event = event
        self.sent_at = sent_at


class _ServiceTask:
    """Drives one interrupt-level ``_service`` generator to completion.

    A stripped-down stand-in for :class:`~repro.sim.engine.Process` on
    the server hot path: nobody joins an interrupt-service coroutine, so
    the full Event machinery (trigger bookkeeping, interrupt queue,
    join callbacks) is pure overhead.  Tasks are pooled per subsystem
    and the first generator step runs *inline* from the message-arrival
    interrupt — safe because ``_service`` performs no side effects
    before its first ``yield timeout(...)``, so simulated time and cost
    accounting are unchanged.
    """

    __slots__ = ("sub", "gen", "_cb")

    def __init__(self, sub: "RpcSubsystem"):
        self.sub = sub
        self.gen = None
        self._cb = self._resume

    def start(self, gen: Generator) -> None:
        self.gen = gen
        self._advance(0, None)

    def _resume(self, ev: Event) -> None:
        if type(ev) is Timeout and ev._cb_seen == 1:
            # Mirror Process._resume's recycling: this task was the
            # timeout's only waiter ever, so return it to the pool.
            value = ev._value
            self.sub.sim._timeout_pool.append(ev)
            self._advance(1, value)
        elif ev._ok:
            self._advance(1, ev._value)
        else:
            self._advance(2, ev._value)

    def _advance(self, op: int, arg: Any) -> None:
        sim = self.sub.sim
        try:
            gen = self.gen
            if op == 1:
                target = gen.send(arg)
            elif op == 0:
                target = next(gen)
            else:
                target = gen.throw(arg)
        except StopIteration:
            self.gen = None
            self.sub._task_pool.append(self)
            return
        except Exception:
            self.gen = None
            self.sub._task_pool.append(self)
            if sim.crash_on_process_error:
                raise
            return
        # Inlined target.add_callback(self._resume), as in Process._step.
        if type(target) is Timeout:
            target._cb_seen += 1
        callbacks = target._callbacks
        if callbacks is None:
            sim.schedule(0, self._cb, target)
        else:
            callbacks.append(self._cb)


class RpcSubsystem:
    """One cell's RPC engine (client and server sides)."""

    def __init__(self, sim: Simulator, cell, sips: SipsFabric,
                 costs: KernelCosts, num_servers: int = 4):
        self.sim = sim
        self.cell = cell
        self.sips = sips
        self.costs = costs
        self.metrics = MetricSet(name=f"rpc{cell.kernel_id}")
        # Latency is recorded once, into the histogram; the legacy
        # "latency" timer name stays readable as a view over it.
        self.metrics.timer_view("latency",
                                self.metrics.histogram("latency_ns"))
        #: HIVE_RPC_FAST=0 restores the original (slow) dispatch path.
        self.fast_enabled = os.environ.get("HIVE_RPC_FAST", "1") != "0"
        # Per-call dispatch-path attribution for the profiler; cached
        # Counter objects so the hot path pays one attribute bump.
        self._fast_path_c = self.metrics.counter("fast_path")
        self._slow_path_c = self.metrics.counter("slow_path")
        self._handlers: Dict[str, tuple] = {}
        self._pending: Dict[int, _Pending] = {}
        self._pending_pool: list = []
        self._event_pool: list = []
        self._reply_pool: list = []
        self._task_pool: list = []
        #: the cell's UserMsgService; wired by Cell.__init__ once the
        #: service exists (the RPC subsystem is built first), so the
        #: message-arrival interrupt doesn't getattr() per delivery.
        self.usermsg = None
        self._next_call = cell.kernel_id * 1_000_000 + 1
        self._queue = FifoStore(sim, name=f"rpc{cell.kernel_id}.queue")
        self._servers = [
            sim.process(self._server_loop(i),
                        name=f"rpc{cell.kernel_id}.srv{i}")
            for i in range(num_servers)
        ]
        for node in cell.node_ids:
            sips.register_handler(node, self._on_message)

    # -- registration ----------------------------------------------------

    def register(self, op: str, handler: Callable,
                 service_class: str = INTERRUPT_LEVEL) -> None:
        """Install ``handler(src_cell, args) -> generator`` for ``op``."""
        if service_class not in (INTERRUPT_LEVEL, QUEUED):
            raise ValueError(f"bad service class {service_class}")
        self._handlers[op] = (handler, service_class)

    # -- client side ---------------------------------------------------------

    def call(self, dst_cell_id: int, op: str, args: Optional[dict] = None,
             arg_bytes: int = 64, timeout_ns: Optional[int] = None) -> Generator:
        """Coroutine: invoke ``op`` on another cell and await the reply.

        Raises :class:`RpcTimeout` (a failure hint) if no reply arrives,
        and re-raises handler errors as :class:`RpcRemoteError`.
        """
        obs = self.cell.obs
        prov = self.cell.prov
        # Client side of provenance: calls *into* a tainted cell.  The
        # tainted cell's own outbound requests are classified by the
        # healthy server's handler instead (no double counting).
        track = prov.enabled and prov.is_tainted(dst_cell_id)
        if not obs.enabled and not track:
            result = yield from self._call_inner(dst_cell_id, op, args,
                                                 arg_bytes, timeout_ns, 0)
            return result
        span = None
        if obs.enabled:
            span = obs.begin("rpc.call", "rpc", cell=self.cell.kernel_id,
                             op=op, dst=dst_cell_id)
        try:
            result = yield from self._call_inner(dst_cell_id, op, args,
                                                 arg_bytes, timeout_ns,
                                                 span.span_id
                                                 if span is not None else 0)
        except RpcTimeout:
            obs.end(span, outcome="timeout")
            if track:
                prov.rpc_blocked(self.cell.kernel_id, dst_cell_id, op,
                                 "rpc_timeout")
            raise
        except RpcRemoteError as exc:
            obs.end(span, outcome="remote_error", errno=exc.errno)
            if track:
                prov.rpc_blocked(self.cell.kernel_id, dst_cell_id, op,
                                 f"rpc_sanity:{exc.errno}")
            raise
        except BaseException:
            obs.end(span, outcome="error")
            raise
        obs.end(span, outcome="ok")
        if track:
            prov.rpc_reply(self.cell.kernel_id, dst_cell_id, op)
        return result

    def _call_inner(self, dst_cell_id: int, op: str, args: Optional[dict],
                    arg_bytes: int, timeout_ns: Optional[int],
                    span_id: int) -> Generator:
        if dst_cell_id == self.cell.kernel_id:
            raise ValueError("RPC to self")
        args = args or {}
        dst_node = self.cell.registry.first_node_of(dst_cell_id)
        call_id = self._next_call
        self._next_call += 1
        start = self.sim.now

        # Stub execution + marshalling (Table 5.2 costs).
        stub = self.costs.rpc_null_stub_ns
        oversize = arg_bytes > self.sips.params.sips_payload
        if oversize:
            stub = self.costs.rpc_stub_ns
            yield self.sim.timeout(self.costs.rpc_alloc_ns // 2
                                   + self.costs.rpc_copy_ns // 2)
        yield self.sim.timeout(stub // 2)

        sim = self.sim
        fast = self.fast_enabled and not oversize
        (self._fast_path_c if fast else self._slow_path_c).value += 1
        if fast:
            pool = self._event_pool
            if pool:
                reply_ev = pool.pop()
                reply_ev._callbacks = []
                reply_ev._triggered = False
                reply_ev._ok = True
                reply_ev._value = None
            else:
                reply_ev = Event(sim, "rpc.reply")
        else:
            reply_ev = sim.event(f"rpc.{op}.{call_id}")
        ppool = self._pending_pool
        if ppool:
            pending = ppool.pop()
            pending.op = op
            pending.event = reply_ev
            pending.sent_at = sim.now
        else:
            pending = _Pending(op, reply_ev, sim.now)
        self._pending[call_id] = pending
        payload = {"call": call_id, "op": op, "args": args,
                   "src_cell": self.cell.kernel_id,
                   "reply_node": self.cell.node_ids[0],
                   "oversize": oversize}
        if span_id:
            # Parent link for the server-side span (cross-cell tracing).
            payload["span"] = span_id
        src_cpu = self.cell.cpu_ids[0]
        limit = timeout_ns if timeout_ns is not None else self.costs.rpc_timeout_ns
        send_deadline = self.sim.now + limit
        backoff = self.costs.rpc_null_stub_ns
        obs = self.cell.obs
        while True:
            try:
                self.sips.send(src_cpu, dst_node, payload,
                               min(arg_bytes, self.sips.params.sips_payload),
                               kind=REQUEST)
                break
            except SipsQueueFull:
                # Hardware flow control: the sender stalls and retries —
                # a SIPS is never dropped.  Only a peer that stays
                # unreceptive past the failure timeout becomes a hint.
                if obs.enabled:
                    obs.event("rpc.flow_control", "rpc",
                              cell=self.cell.kernel_id, op=op,
                              dst=dst_cell_id, backoff_ns=backoff)
                self.metrics.counter("send_retries").add()
                if self.sim.now >= send_deadline:
                    self._drop_pending(call_id)
                    if fast:
                        self._event_pool.append(reply_ev)
                    self.metrics.counter("timeouts").add()
                    self.cell.failure_hint(
                        dst_cell_id, f"RPC {op} flow-controlled past "
                        "timeout")
                    raise RpcTimeout(dst_cell_id, op)
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2, 100_000)
            except BusError as exc:
                self._drop_pending(call_id)
                if fast:
                    self._event_pool.append(reply_ev)
                # Only hint about the *destination* — a bus error caused
                # by our own node failing is not evidence against anyone
                # else (a dying cell must not spray accusations).
                if exc.node is None or exc.node not in self.cell.node_ids:
                    self.cell.failure_hint(dst_cell_id,
                                           f"bus error on RPC {op}")
                raise RpcTimeout(dst_cell_id, op)

        if fast:
            # Fast path: wait on the reply event directly with a
            # cancellable deadline entry — no any_of pair, and the loser
            # deadline is revoked in place when the reply wins.
            dl_entry = sim.schedule(limit, self._fast_deadline, reply_ev)
            try:
                result = yield reply_ev
            except _RpcDeadline:
                # Our own deadline fired (the entry is consumed).
                self._drop_pending(call_id)
                self._event_pool.append(reply_ev)
                self.metrics.counter("timeouts").add()
                self.cell.failure_hint(dst_cell_id, f"RPC {op} timed out")
                raise RpcTimeout(dst_cell_id, op)
            except BaseException:
                # Peer shutdown failing the event with RpcTimeout, or a
                # process interrupt.  The deadline entry may still be
                # queued holding a reference to the event, so revoke it
                # and do not recycle the event.
                sim.cancel(dl_entry)
                raise
            sim.cancel(dl_entry)
            self._event_pool.append(reply_ev)
            # Client-side reply processing, coalesced into one timeout of
            # the same total as the slow path's sequential charges.
            waited = sim.now - start
            post = self.costs.rpc_interrupt_dispatch_ns + stub // 2
            if waited > self.costs.rpc_spin_timeout_ns:
                post += self.costs.context_switch_ns
                self.metrics.counter("spin_timeouts").add()
            yield sim.timeout(post)
            self.metrics.counter("calls").add()
            self.metrics.histogram("latency_ns").record(sim.now - start)
            if isinstance(result, RpcError):
                raise RpcRemoteError(dst_cell_id, op, result)
            return result

        deadline = self.sim.timeout(limit)
        winner = yield self.sim.any_of([reply_ev, deadline])
        if winner is deadline:
            self._drop_pending(call_id)
            self.metrics.counter("timeouts").add()
            self.cell.failure_hint(dst_cell_id, f"RPC {op} timed out")
            raise RpcTimeout(dst_cell_id, op)

        result = reply_ev.value
        # Client-side reply processing: the reply-arrival interrupt, spin
        # vs context switch, then the unmarshalling half of the stubs.
        waited = self.sim.now - start
        yield self.sim.timeout(self.costs.rpc_interrupt_dispatch_ns)
        if waited > self.costs.rpc_spin_timeout_ns:
            yield self.sim.timeout(self.costs.context_switch_ns)
            self.metrics.counter("spin_timeouts").add()
        yield self.sim.timeout(stub // 2)
        if oversize:
            yield self.sim.timeout(self.costs.rpc_alloc_ns // 2
                                   + self.costs.rpc_copy_ns // 2)
        self.metrics.counter("calls").add()
        self.metrics.histogram("latency_ns").record(self.sim.now - start)
        if isinstance(result, RpcError):
            raise RpcRemoteError(dst_cell_id, op, result)
        return result

    def _fast_deadline(self, ev: Event) -> None:
        """Scheduled at the call deadline; fails the reply event unless
        the reply (or a shutdown) already triggered it."""
        if not ev._triggered:
            ev.fail(_RpcDeadline())

    def _drop_pending(self, call_id: int) -> None:
        p = self._pending.pop(call_id, None)
        if p is not None and self.fast_enabled:
            p.event = None
            self._pending_pool.append(p)

    # -- server side -----------------------------------------------------------

    def _on_message(self, msg: SipsMessage) -> None:
        """Message-arrival interrupt handler."""
        if not self.cell.alive:
            return
        payload = msg.payload
        if isinstance(payload, dict) and payload.get("channel") == "user-msg":
            # User-level messaging (Section 6): the kernel only demuxes
            # to the destination port; everything else is library code.
            usermsg = self.usermsg
            if usermsg is not None:
                usermsg.deliver(payload)
                self.cell.note_cpu_steal(
                    self.costs.rpc_interrupt_dispatch_ns // 2)
            return
        if msg.kind == REPLY:
            self._complete(msg)
            return
        if self.fast_enabled:
            # No-allocation dispatch: a pooled driver runs the service
            # generator; the first step executes inline (no side effects
            # before _service's first yield, so timing is unchanged).
            pool = self._task_pool
            task = pool.pop() if pool else _ServiceTask(self)
            task.start(self._service(msg))
            return
        self.sim.process(self._service(msg),
                         name=f"rpc{self.cell.kernel_id}.int")

    def _complete(self, msg: SipsMessage) -> None:
        payload = msg.payload
        pending = self._pending.pop(payload.get("call"), None)
        if pending is None:
            return  # late reply after timeout; drop
        event = pending.event
        result = payload.get("result")
        if self.fast_enabled:
            pending.event = None
            self._pending_pool.append(pending)
            # The reply dict has a single consumer; recycle it.
            payload.clear()
            self._reply_pool.append(payload)
        if not event._triggered:
            event.succeed(result)

    def _service(self, msg: SipsMessage) -> Generator:
        """Interrupt-level service attempt (falls back to the queue)."""
        service_start = self.sim.now
        yield self.sim.timeout(self.costs.rpc_interrupt_dispatch_ns)
        payload = msg.payload
        op = payload.get("op")
        obs = self.cell.obs
        span = None
        if obs.enabled:
            span = obs.begin("rpc.serve_int", "rpc",
                             cell=self.cell.kernel_id, op=op,
                             parent=payload.get("span", 0))
        entry = self._handlers.get(op)
        if entry is None:
            obs.end(span, outcome="no_handler")
            self._reply(payload, RpcError("EOPNOTSUPP", f"no handler {op}"))
            return
        handler, service_class = entry
        if service_class == QUEUED:
            self.metrics.counter("queued").add()
            self.cell.note_cpu_steal(self.sim.now - service_start)
            obs.end(span, outcome="queued")
            yield self._queue.put(payload)
            return
        result = yield from self._run_handler(handler, payload)
        self.cell.note_cpu_steal(self.sim.now - service_start)
        if result is MUST_QUEUE:
            # Best-effort interrupt service hit a synchronization
            # condition; requeue for a server process (Section 6).
            self.metrics.counter("queued_fallback").add()
            obs.end(span, outcome="must_queue")
            yield self._queue.put(payload)
            return
        self.metrics.counter("served_interrupt").add()
        obs.end(span, outcome="ok")
        self._reply(payload, result)

    def _server_loop(self, idx: int) -> Generator:
        """A server process: takes queued requests, runs, replies."""
        try:
            yield from self._server_body(idx)
        except Interrupted:
            return

    def _server_body(self, idx: int) -> Generator:
        while True:
            payload = yield self._queue.get()
            if not self.cell.alive:
                return
            # Wakeup + synchronization overhead of the queued path.
            service_start = self.sim.now
            yield self.sim.timeout(self.costs.rpc_queue_extra_ns)
            obs = self.cell.obs
            span = None
            if obs.enabled:
                span = obs.begin("rpc.serve_queued", "rpc",
                                 cell=self.cell.kernel_id,
                                 op=payload.get("op"),
                                 parent=payload.get("span", 0), server=idx)
            entry = self._handlers.get(payload.get("op"))
            if entry is None:
                obs.end(span, outcome="no_handler")
                self._reply(payload,
                            RpcError("EOPNOTSUPP", "no handler"))
                continue
            handler, _cls = entry
            result = yield from self._run_handler(handler, payload,
                                                  queued=True)
            if result is MUST_QUEUE:
                result = RpcError("EDEADLK", "queued handler queued again")
            self.metrics.counter("served_queued").add()
            obs.end(span, outcome="error"
                    if isinstance(result, RpcError) else "ok")
            # Server processes run on this cell's CPUs: their service
            # time is stolen from user computation.  Time blocked on
            # disk is not CPU time, so the steal is capped at the
            # non-blocking service budget.
            self.cell.note_cpu_steal(
                min(self.sim.now - service_start, 200_000))
            self._reply(payload, result)

    def _run_handler(self, handler: Callable, payload: dict,
                     queued: bool = False) -> Generator:
        # Server side of provenance: requests *from* a tainted cell
        # (``rpc_served`` no-ops unless the source is tainted).  The
        # payload dict is recycled by the reply path, so only scalars
        # are read out of it here, never retained.
        prov = self.cell.prov
        try:
            result = yield from handler(payload.get("src_cell"),
                                        payload.get("args") or {})
        except RpcHandlerError as exc:
            if prov.enabled:
                prov.rpc_served(payload.get("src_cell"),
                                self.cell.kernel_id, payload.get("op"),
                                rejected=f"rpc_sanity:{exc.errno}")
            return RpcError(exc.errno, str(exc))
        except BusError as exc:
            if prov.enabled:
                prov.rpc_served(payload.get("src_cell"),
                                self.cell.kernel_id, payload.get("op"),
                                rejected="bus_error")
            return RpcError("EIO", f"bus error in handler: {exc}")
        if prov.enabled:
            prov.rpc_served(payload.get("src_cell"), self.cell.kernel_id,
                            payload.get("op"))
        return result

    def _reply(self, request_payload: dict, result: Any) -> None:
        if not self.cell.alive:
            return
        pool = self._reply_pool
        if pool:
            reply = pool.pop()
            reply["call"] = request_payload.get("call")
            reply["result"] = result
        else:
            reply = {"call": request_payload.get("call"), "result": result}
        src_cpu = self.cell.cpu_ids[0]
        oversize = request_payload.get("oversize", False)
        size = 64 if not oversize else 128
        dst = request_payload["reply_node"]
        try:
            self.sips.send(src_cpu, dst, reply, size, kind=REPLY)
        except SipsQueueFull:
            # Hardware flow control: stall-and-retry in the background
            # until the reply queue drains (a SIPS is never dropped).
            self.sim.process(self._retry_reply(dst, reply, size),
                             name=f"rpc{self.cell.kernel_id}.replyretry")
        except BusError:
            # The caller's node died; its timeout machinery handles it.
            self.metrics.counter("reply_failures").add()

    def _retry_reply(self, dst: int, reply: dict, size: int) -> Generator:
        backoff = self.costs.rpc_null_stub_ns
        deadline = self.sim.now + self.costs.rpc_timeout_ns
        src_cpu = self.cell.cpu_ids[0]
        while self.cell.alive and self.sim.now < deadline:
            yield self.sim.timeout(backoff)
            backoff = min(backoff * 2, 100_000)
            try:
                self.sips.send(src_cpu, dst, reply, size, kind=REPLY)
                return
            except SipsQueueFull:
                continue
            except BusError:
                break
        self.metrics.counter("reply_failures").add()

    # -- teardown -------------------------------------------------------------

    def shutdown(self) -> None:
        for srv in self._servers:
            if srv.is_alive:
                srv.interrupt("rpc shutdown")
        for node in self.cell.node_ids:
            self.sips.unregister_handler(node)
        for pending in self._pending.values():
            if not pending.event.triggered:
                pending.event.fail(
                    RpcTimeout(self.cell.kernel_id, pending.op))
        self._pending.clear()
        # Drop the recycled hot-path objects; a dead cell's subsystem
        # must not pin them (and none are safe to reuse after the
        # pending events were failed above).
        self._pending_pool.clear()
        self._event_pool.clear()
        self._reply_pool.clear()
        self._task_pool.clear()


class RpcHandlerError(Exception):
    """Raised inside a handler to return an errno to the caller."""

    def __init__(self, errno: str, message: str = ""):
        super().__init__(message or errno)
        self.errno = errno


class RpcRemoteError(Exception):
    """The remote handler reported an error."""

    def __init__(self, cell_id: int, op: str, error: RpcError):
        super().__init__(f"RPC {op} to cell {cell_id}: "
                         f"[{error.errno}] {error.message}")
        self.cell_id = cell_id
        self.op = op
        self.errno = error.errno
