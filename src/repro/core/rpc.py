"""Intercell RPC on SIPS (Section 6 of the paper).

Two service classes:

* **Interrupt-level RPCs** are serviced entirely in the message-arrival
  interrupt handler — no server process, no blocking locks.  The minimum
  end-to-end null RPC is 7.2 us; the client *spins* for the reply and only
  context-switches after 50 us, "which almost never occurs".
* **Queued RPCs** are handed to a server-process pool for requests that
  may block (disk I/O, lock acquisition).  A queued request is "an initial
  interrupt-level RPC which launches the operation, then a completion RPC
  sent from the server back to the client".  Minimum null latency 34 us,
  "in practice ... much higher because of scheduling delays".

Hive structures common services as "initial best-effort interrupt-level
service routines that fall back to queued service routines only if
required" — handlers here can return the sentinel :data:`MUST_QUEUE` from
their interrupt-level attempt to trigger exactly that fallback.

Marshalling costs follow Table 5.2: arguments beyond one cache line are
sent *by reference* and charged copy + alloc/free time.  "Each cell
sanity-checks all information received from other cells and sets timeouts
whenever waiting for a reply": handlers receive plain dict payloads and
validate them; the client raises :class:`RpcTimeout` — a failure hint —
when no reply arrives in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.hardware.errors import BusError, SipsQueueFull
from repro.hardware.sips import REPLY, REQUEST, SipsFabric, SipsMessage
from repro.sim.engine import Interrupted, Simulator
from repro.sim.resources import FifoStore
from repro.sim.stats import MetricSet
from repro.unix.costs import KernelCosts
from repro.unix.errors import RpcTimeout

#: sentinel: an interrupt-level handler could not complete without
#: blocking; re-dispatch through the queued service path.
MUST_QUEUE = object()

#: handlers flagged interrupt-level must never yield blocking events; the
#: queued class may.
INTERRUPT_LEVEL = "interrupt"
QUEUED = "queued"


@dataclass
class RpcError:
    """A handler-raised error shipped back to the caller."""

    errno: str
    message: str


@dataclass
class _Pending:
    op: str
    event: Any
    sent_at: int


class RpcSubsystem:
    """One cell's RPC engine (client and server sides)."""

    def __init__(self, sim: Simulator, cell, sips: SipsFabric,
                 costs: KernelCosts, num_servers: int = 4):
        self.sim = sim
        self.cell = cell
        self.sips = sips
        self.costs = costs
        self.metrics = MetricSet(name=f"rpc{cell.kernel_id}")
        self._handlers: Dict[str, tuple] = {}
        self._pending: Dict[int, _Pending] = {}
        self._next_call = cell.kernel_id * 1_000_000 + 1
        self._queue = FifoStore(sim, name=f"rpc{cell.kernel_id}.queue")
        self._servers = [
            sim.process(self._server_loop(i),
                        name=f"rpc{cell.kernel_id}.srv{i}")
            for i in range(num_servers)
        ]
        for node in cell.node_ids:
            sips.register_handler(node, self._on_message)

    # -- registration ----------------------------------------------------

    def register(self, op: str, handler: Callable,
                 service_class: str = INTERRUPT_LEVEL) -> None:
        """Install ``handler(src_cell, args) -> generator`` for ``op``."""
        if service_class not in (INTERRUPT_LEVEL, QUEUED):
            raise ValueError(f"bad service class {service_class}")
        self._handlers[op] = (handler, service_class)

    # -- client side ---------------------------------------------------------

    def call(self, dst_cell_id: int, op: str, args: Optional[dict] = None,
             arg_bytes: int = 64, timeout_ns: Optional[int] = None) -> Generator:
        """Coroutine: invoke ``op`` on another cell and await the reply.

        Raises :class:`RpcTimeout` (a failure hint) if no reply arrives,
        and re-raises handler errors as :class:`RpcRemoteError`.
        """
        obs = self.cell.obs
        if not obs.enabled:
            result = yield from self._call_inner(dst_cell_id, op, args,
                                                 arg_bytes, timeout_ns, 0)
            return result
        span = obs.begin("rpc.call", "rpc", cell=self.cell.kernel_id,
                         op=op, dst=dst_cell_id)
        try:
            result = yield from self._call_inner(dst_cell_id, op, args,
                                                 arg_bytes, timeout_ns,
                                                 span.span_id)
        except RpcTimeout:
            obs.end(span, outcome="timeout")
            raise
        except RpcRemoteError as exc:
            obs.end(span, outcome="remote_error", errno=exc.errno)
            raise
        except BaseException:
            obs.end(span, outcome="error")
            raise
        obs.end(span, outcome="ok")
        return result

    def _call_inner(self, dst_cell_id: int, op: str, args: Optional[dict],
                    arg_bytes: int, timeout_ns: Optional[int],
                    span_id: int) -> Generator:
        if dst_cell_id == self.cell.kernel_id:
            raise ValueError("RPC to self")
        args = args or {}
        dst_node = self.cell.registry.first_node_of(dst_cell_id)
        call_id = self._next_call
        self._next_call += 1
        start = self.sim.now

        # Stub execution + marshalling (Table 5.2 costs).
        stub = self.costs.rpc_null_stub_ns
        oversize = arg_bytes > self.sips.params.sips_payload
        if oversize:
            stub = self.costs.rpc_stub_ns
            yield self.sim.timeout(self.costs.rpc_alloc_ns // 2
                                   + self.costs.rpc_copy_ns // 2)
        yield self.sim.timeout(stub // 2)

        reply_ev = self.sim.event(f"rpc.{op}.{call_id}")
        self._pending[call_id] = _Pending(op=op, event=reply_ev,
                                          sent_at=self.sim.now)
        payload = {"call": call_id, "op": op, "args": args,
                   "src_cell": self.cell.kernel_id,
                   "reply_node": self.cell.node_ids[0],
                   "oversize": oversize}
        if span_id:
            # Parent link for the server-side span (cross-cell tracing).
            payload["span"] = span_id
        src_cpu = self.cell.cpu_ids[0]
        limit = timeout_ns if timeout_ns is not None else self.costs.rpc_timeout_ns
        send_deadline = self.sim.now + limit
        backoff = self.costs.rpc_null_stub_ns
        obs = self.cell.obs
        while True:
            try:
                self.sips.send(src_cpu, dst_node, payload,
                               min(arg_bytes, self.sips.params.sips_payload),
                               kind=REQUEST)
                break
            except SipsQueueFull:
                # Hardware flow control: the sender stalls and retries —
                # a SIPS is never dropped.  Only a peer that stays
                # unreceptive past the failure timeout becomes a hint.
                if obs.enabled:
                    obs.event("rpc.flow_control", "rpc",
                              cell=self.cell.kernel_id, op=op,
                              dst=dst_cell_id, backoff_ns=backoff)
                self.metrics.counter("send_retries").add()
                if self.sim.now >= send_deadline:
                    self._pending.pop(call_id, None)
                    self.metrics.counter("timeouts").add()
                    self.cell.failure_hint(
                        dst_cell_id, f"RPC {op} flow-controlled past "
                        "timeout")
                    raise RpcTimeout(dst_cell_id, op)
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2, 100_000)
            except BusError as exc:
                self._pending.pop(call_id, None)
                # Only hint about the *destination* — a bus error caused
                # by our own node failing is not evidence against anyone
                # else (a dying cell must not spray accusations).
                if exc.node is None or exc.node not in self.cell.node_ids:
                    self.cell.failure_hint(dst_cell_id,
                                           f"bus error on RPC {op}")
                raise RpcTimeout(dst_cell_id, op)

        deadline = self.sim.timeout(limit)
        winner = yield self.sim.any_of([reply_ev, deadline])
        if winner is deadline:
            self._pending.pop(call_id, None)
            self.metrics.counter("timeouts").add()
            self.cell.failure_hint(dst_cell_id, f"RPC {op} timed out")
            raise RpcTimeout(dst_cell_id, op)

        result = reply_ev.value
        # Client-side reply processing: the reply-arrival interrupt, spin
        # vs context switch, then the unmarshalling half of the stubs.
        waited = self.sim.now - start
        yield self.sim.timeout(self.costs.rpc_interrupt_dispatch_ns)
        if waited > self.costs.rpc_spin_timeout_ns:
            yield self.sim.timeout(self.costs.context_switch_ns)
            self.metrics.counter("spin_timeouts").add()
        yield self.sim.timeout(stub // 2)
        if oversize:
            yield self.sim.timeout(self.costs.rpc_alloc_ns // 2
                                   + self.costs.rpc_copy_ns // 2)
        self.metrics.counter("calls").add()
        self.metrics.timer("latency").record(self.sim.now - start)
        self.metrics.histogram("latency_ns").record(self.sim.now - start)
        if isinstance(result, RpcError):
            raise RpcRemoteError(dst_cell_id, op, result)
        return result

    # -- server side -----------------------------------------------------------

    def _on_message(self, msg: SipsMessage) -> None:
        """Message-arrival interrupt handler."""
        if not self.cell.alive:
            return
        payload = msg.payload
        if isinstance(payload, dict) and payload.get("channel") == "user-msg":
            # User-level messaging (Section 6): the kernel only demuxes
            # to the destination port; everything else is library code.
            usermsg = getattr(self.cell, "usermsg", None)
            if usermsg is not None:
                usermsg.deliver(payload)
                self.cell.note_cpu_steal(
                    self.costs.rpc_interrupt_dispatch_ns // 2)
            return
        if msg.kind == REPLY:
            self._complete(msg)
            return
        self.sim.process(self._service(msg),
                         name=f"rpc{self.cell.kernel_id}.int")

    def _complete(self, msg: SipsMessage) -> None:
        call_id = msg.payload.get("call")
        pending = self._pending.pop(call_id, None)
        if pending is None:
            return  # late reply after timeout; drop
        if not pending.event.triggered:
            pending.event.succeed(msg.payload.get("result"))

    def _service(self, msg: SipsMessage) -> Generator:
        """Interrupt-level service attempt (falls back to the queue)."""
        service_start = self.sim.now
        yield self.sim.timeout(self.costs.rpc_interrupt_dispatch_ns)
        payload = msg.payload
        op = payload.get("op")
        obs = self.cell.obs
        span = None
        if obs.enabled:
            span = obs.begin("rpc.serve_int", "rpc",
                             cell=self.cell.kernel_id, op=op,
                             parent=payload.get("span", 0))
        entry = self._handlers.get(op)
        if entry is None:
            obs.end(span, outcome="no_handler")
            self._reply(payload, RpcError("EOPNOTSUPP", f"no handler {op}"))
            return
        handler, service_class = entry
        if service_class == QUEUED:
            self.metrics.counter("queued").add()
            self.cell.note_cpu_steal(self.sim.now - service_start)
            obs.end(span, outcome="queued")
            yield self._queue.put(payload)
            return
        result = yield from self._run_handler(handler, payload)
        self.cell.note_cpu_steal(self.sim.now - service_start)
        if result is MUST_QUEUE:
            # Best-effort interrupt service hit a synchronization
            # condition; requeue for a server process (Section 6).
            self.metrics.counter("queued_fallback").add()
            obs.end(span, outcome="must_queue")
            yield self._queue.put(payload)
            return
        self.metrics.counter("served_interrupt").add()
        obs.end(span, outcome="ok")
        self._reply(payload, result)

    def _server_loop(self, idx: int) -> Generator:
        """A server process: takes queued requests, runs, replies."""
        try:
            yield from self._server_body(idx)
        except Interrupted:
            return

    def _server_body(self, idx: int) -> Generator:
        while True:
            payload = yield self._queue.get()
            if not self.cell.alive:
                return
            # Wakeup + synchronization overhead of the queued path.
            service_start = self.sim.now
            yield self.sim.timeout(self.costs.rpc_queue_extra_ns)
            obs = self.cell.obs
            span = None
            if obs.enabled:
                span = obs.begin("rpc.serve_queued", "rpc",
                                 cell=self.cell.kernel_id,
                                 op=payload.get("op"),
                                 parent=payload.get("span", 0), server=idx)
            entry = self._handlers.get(payload.get("op"))
            if entry is None:
                obs.end(span, outcome="no_handler")
                self._reply(payload,
                            RpcError("EOPNOTSUPP", "no handler"))
                continue
            handler, _cls = entry
            result = yield from self._run_handler(handler, payload,
                                                  queued=True)
            if result is MUST_QUEUE:
                result = RpcError("EDEADLK", "queued handler queued again")
            self.metrics.counter("served_queued").add()
            obs.end(span, outcome="error"
                    if isinstance(result, RpcError) else "ok")
            # Server processes run on this cell's CPUs: their service
            # time is stolen from user computation.  Time blocked on
            # disk is not CPU time, so the steal is capped at the
            # non-blocking service budget.
            self.cell.note_cpu_steal(
                min(self.sim.now - service_start, 200_000))
            self._reply(payload, result)

    def _run_handler(self, handler: Callable, payload: dict,
                     queued: bool = False) -> Generator:
        try:
            result = yield from handler(payload.get("src_cell"),
                                        payload.get("args") or {})
            return result
        except RpcHandlerError as exc:
            return RpcError(exc.errno, str(exc))
        except BusError as exc:
            return RpcError("EIO", f"bus error in handler: {exc}")

    def _reply(self, request_payload: dict, result: Any) -> None:
        if not self.cell.alive:
            return
        reply = {"call": request_payload.get("call"), "result": result}
        src_cpu = self.cell.cpu_ids[0]
        oversize = request_payload.get("oversize", False)
        size = 64 if not oversize else 128
        dst = request_payload["reply_node"]
        try:
            self.sips.send(src_cpu, dst, reply, size, kind=REPLY)
        except SipsQueueFull:
            # Hardware flow control: stall-and-retry in the background
            # until the reply queue drains (a SIPS is never dropped).
            self.sim.process(self._retry_reply(dst, reply, size),
                             name=f"rpc{self.cell.kernel_id}.replyretry")
        except BusError:
            # The caller's node died; its timeout machinery handles it.
            self.metrics.counter("reply_failures").add()

    def _retry_reply(self, dst: int, reply: dict, size: int) -> Generator:
        backoff = self.costs.rpc_null_stub_ns
        deadline = self.sim.now + self.costs.rpc_timeout_ns
        src_cpu = self.cell.cpu_ids[0]
        while self.cell.alive and self.sim.now < deadline:
            yield self.sim.timeout(backoff)
            backoff = min(backoff * 2, 100_000)
            try:
                self.sips.send(src_cpu, dst, reply, size, kind=REPLY)
                return
            except SipsQueueFull:
                continue
            except BusError:
                break
        self.metrics.counter("reply_failures").add()

    # -- teardown -------------------------------------------------------------

    def shutdown(self) -> None:
        for srv in self._servers:
            if srv.is_alive:
                srv.interrupt("rpc shutdown")
        for node in self.cell.node_ids:
            self.sips.unregister_handler(node)
        for pending in self._pending.values():
            if not pending.event.triggered:
                pending.event.fail(
                    RpcTimeout(self.cell.kernel_id, pending.op))
        self._pending.clear()


class RpcHandlerError(Exception):
    """Raised inside a handler to return an errno to the caller."""

    def __init__(self, errno: str, message: str = ""):
        super().__init__(message or errno)
        self.errno = errno


class RpcRemoteError(Exception):
    """The remote handler reported an error."""

    def __init__(self, cell_id: int, op: str, error: RpcError):
        super().__init__(f"RPC {op} to cell {cell_id}: "
                         f"[{error.errno}] {error.message}")
        self.cell_id = cell_id
        self.op = op
        self.errno = error.errno
