"""HiveSystem: boot, cell registry, and whole-system services.

``boot_hive`` partitions the machine's nodes evenly among ``num_cells``
cells (Figure 3.1), wires the failure-detection ring, the agreement
protocol, the recovery coordinator, and (optionally) Wax.  ``boot_irix``
builds the baseline: one kernel owning every node, firewall off — the
configuration the paper compares against (SGI IRIX 5.2 on the same
four-processor machine model).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.core.agreement import OracleAgreement, VotingAgreement
from repro.core.cell import Cell
from repro.core.failure import StrikeBook
from repro.core.recovery import RecoveryCoordinator
from repro.core.ssi import SpanningTask
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import Machine, MachineConfig
from repro.hardware.params import HardwareParams
from repro.obs.recorder import NULL_RECORDER
from repro.sim.engine import Simulator
from repro.unix.kernel import (
    GlobalNamespace,
    KERNEL_RESERVED_PAGES,
    LocalKernel,
    REMAP_PAGES,
)
from repro.unix.kheap import KOBJ_ALIGN


class CellRegistry:
    """Shared static topology plus the live-cell directory.

    The static parts (node assignment, heap address ranges) model boot-
    time configuration every cell knows; the dynamic parts (which cells
    are live) model the membership state the agreement protocol
    maintains.
    """

    def __init__(self, sim: Simulator, machine: Machine,
                 assignment: Dict[int, List[int]]):
        self.sim = sim
        self.machine = machine
        self.params = machine.params
        self.assignment = {c: list(nodes) for c, nodes in assignment.items()}
        self._node_to_cell: Dict[int, int] = {}
        for cell_id, nodes in assignment.items():
            for node in nodes:
                self._node_to_cell[node] = cell_id
        self.cells: Dict[int, Optional[Cell]] = {c: None for c in assignment}
        self._dead: Set[int] = set()
        self.coordinator: Optional[RecoveryCoordinator] = None
        self.wax = None
        self._tasks: Dict[int, SpanningTask] = {}
        self._next_task = 1
        self._rebuild_cell: Optional[Callable[[int], Cell]] = None
        self.reboots = 0
        #: re-derives the clock-monitoring ring after membership changes
        self.rewire_monitors: Callable[[], None] = lambda: None
        #: stable hook: called with every cell that registers (including
        #: cells rebooted during reintegration), so instrumentation like
        #: fault injection, tracing, and the flight recorder can wire new
        #: incarnations without monkey-patching ``register``.
        self.register_observers: List[Callable[[Cell], None]] = []

    # -- static topology ----------------------------------------------

    def all_cell_ids(self) -> List[int]:
        return sorted(self.assignment)

    def is_valid_cell(self, cell_id: int) -> bool:
        return cell_id in self.assignment

    def nodes_of(self, cell_id: int) -> List[int]:
        return self.assignment.get(cell_id, [])

    def first_node_of(self, cell_id: int) -> int:
        return self.assignment[cell_id][0]

    def cell_of_node(self, node: int) -> int:
        return self._node_to_cell[node]

    def cell_of_pid(self, pid: int) -> Optional[int]:
        cell_id = pid // 100_000
        return cell_id if cell_id in self.assignment else None

    def heap_range_of(self, cell_id: int) -> Optional[Tuple[int, int]]:
        """The kernel-data address range of a cell (static layout)."""
        nodes = self.assignment.get(cell_id)
        if not nodes:
            return None
        params = self.params
        base_frame = nodes[0] * params.pages_per_node + REMAP_PAGES + 1
        size = (KERNEL_RESERVED_PAGES - REMAP_PAGES - 1) * params.page_size
        base = base_frame * params.page_size
        return base, base + size

    # -- dynamic state -------------------------------------------------------

    def register(self, cell: Cell) -> None:
        self.cells[cell.kernel_id] = cell
        self._dead.discard(cell.kernel_id)
        for obs in list(self.register_observers):
            obs(cell)

    def cell_object(self, cell_id: int) -> Optional[Cell]:
        return self.cells.get(cell_id)

    def live_cell_ids(self) -> List[int]:
        return [c for c in self.all_cell_ids()
                if c not in self._dead and self.cells.get(c) is not None
                and self.cells[c].alive]

    def is_live(self, cell_id: int) -> bool:
        cell = self.cells.get(cell_id)
        return (cell_id not in self._dead and cell is not None
                and cell.alive)

    def mark_dead(self, cell_id: int, reason: str) -> None:
        self._dead.add(cell_id)
        cell = self.cells.get(cell_id)
        if cell is not None:
            cell.die_confirmed(reason)
        for task in self._tasks.values():
            if cell_id in task.components.values():
                task.dead = True
        self.rewire_monitors()

    def resolve_kernel_address(self, cell_id: int, addr: int):
        cell = self.cells.get(cell_id)
        if cell is None:
            return None
        return cell.heap.resolve(addr)

    # -- spanning tasks -------------------------------------------------------

    def new_task(self) -> SpanningTask:
        task = SpanningTask(task_id=self._next_task)
        self._next_task += 1
        self._tasks[task.task_id] = task
        return task

    def task(self, task_id: int) -> Optional[SpanningTask]:
        return self._tasks.get(task_id)

    def task_component_exited(self, task_id: int, cell_id: int,
                              pid: int, status: int) -> None:
        task = self._tasks.get(task_id)
        if task is None:
            return
        task.components.pop(pid, None)
        if status != 0 and not task.dead:
            # Abnormal component exit kills the whole task.
            task.dead = True
            for other_cell in set(task.components.values()):
                cell = self.cell_object(other_cell)
                if cell is not None and cell.alive:
                    cell.kill_task_components(task_id, "sibling died")

    # -- Wax lifecycle ----------------------------------------------------------

    def kill_wax(self, reason: str) -> None:
        if self.wax is not None:
            self.wax.kill(reason)

    def restart_wax(self) -> None:
        if self.wax is not None:
            self.wax.restart()

    # -- reintegration -------------------------------------------------------------

    def set_rebuild_callback(self, fn: Callable[[int], Cell]) -> None:
        self._rebuild_cell = fn

    def reboot_cell(self, cell_id: int) -> Optional[Cell]:
        """Reboot a failed cell onto its (revived) nodes."""
        if self._rebuild_cell is None:
            return None
        for node in self.assignment[cell_id]:
            self.machine.revive_node(node)
        cell = self._rebuild_cell(cell_id)
        self.register(cell)
        self.reboots += 1
        self.rewire_monitors()
        return cell


class HiveSystem:
    """A booted Hive: cells + coordination + injection + measurement."""

    def __init__(self, sim: Simulator, machine: Machine,
                 registry: CellRegistry, namespace: GlobalNamespace,
                 injector: FaultInjector):
        self.sim = sim
        self.machine = machine
        self.registry = registry
        self.namespace = namespace
        self.injector = injector
        self.params = machine.params
        #: the attached flight recorder (``attach_flight_recorder``
        #: replaces the null default); subsystems without a cell handle
        #: (e.g. the kernel fault injector) emit through this.
        self.recorder = NULL_RECORDER
        #: the attached fault-provenance tracer (``attach_provenance``
        #: sets it); None when containment auditing is off.
        self.provenance = None

    @property
    def cells(self) -> List[Cell]:
        return [self.registry.cells[c]
                for c in self.registry.all_cell_ids()
                if self.registry.cells[c] is not None]

    def cell(self, cell_id: int) -> Cell:
        cell = self.registry.cell_object(cell_id)
        if cell is None:
            raise KeyError(f"cell {cell_id} is not booted")
        return cell

    @property
    def coordinator(self) -> RecoveryCoordinator:
        return self.registry.coordinator

    # -- workload helpers -----------------------------------------------

    def spawn_init(self, cell_id: int, program: Callable,
                   name: str = "init"):
        """Create an init-style process running ``program`` on a cell."""
        cell = self.cell(cell_id)
        proc = cell.create_process(name)
        thread = cell.start_thread(proc, program)
        return proc, thread

    def run_until(self, deadline_ns: int) -> None:
        self.sim.run(until=deadline_ns)

    # -- measurement -------------------------------------------------------

    def total_counter(self, name: str) -> int:
        return sum(c.metrics.counter(name).value for c in self.cells)

    def remotely_writable_by_cell(self) -> Dict[int, int]:
        return {c.kernel_id: c.firewall_mgr.remotely_writable_pages()
                for c in self.cells if c.alive}


def _partition_nodes(num_nodes: int, num_cells: int) -> Dict[int, List[int]]:
    if num_nodes % num_cells:
        raise ValueError(
            f"{num_nodes} nodes do not divide into {num_cells} cells")
    per = num_nodes // num_cells
    return {c: list(range(c * per, (c + 1) * per)) for c in range(num_cells)}


def boot_hive(sim: Simulator, num_cells: int = 4,
              machine: Optional[Machine] = None,
              machine_config: Optional[MachineConfig] = None,
              namespace: Optional[GlobalNamespace] = None,
              agreement: str = "voting",
              reintegrate: bool = False,
              with_wax: bool = False,
              costs=None,
              per_cell_costs: Optional[Dict[int, object]] = None
              ) -> HiveSystem:
    """Boot a Hive system over a (possibly fresh) machine.

    ``agreement`` selects ``"voting"`` (the real protocol) or ``"oracle"``
    (the paper's experimental method).  ``reintegrate`` enables automatic
    reboot of failed cells after diagnostics.  ``per_cell_costs`` gives
    individual cells their own kernel cost configuration — the Section 8
    heterogeneous-resource-management mode where "different cells can
    even run different kernel code"; unlisted cells use ``costs``.
    """
    if machine is None:
        machine = Machine(sim, machine_config or MachineConfig())
    params = machine.params
    if namespace is None:
        namespace = GlobalNamespace(params.num_nodes)
    assignment = _partition_nodes(params.num_nodes, num_cells)
    registry = CellRegistry(sim, machine, assignment)
    strike_book = StrikeBook()
    agreement_impl = (OracleAgreement(registry) if agreement == "oracle"
                      else VotingAgreement(registry))
    registry.coordinator = RecoveryCoordinator(
        registry, agreement_impl, strike_book, reintegrate=reintegrate)

    #: platters survive cell reboots: filesystems are created once per
    #: node and re-handed to reincarnated cells.
    persistent_fs: Dict[int, Dict] = {}

    def build_cell(cell_id: int) -> Cell:
        old = registry.cells.get(cell_id)
        incarnation = (old.incarnation + 1) if old is not None else 0
        cell_costs = costs
        if per_cell_costs and cell_id in per_cell_costs:
            cell_costs = per_cell_costs[cell_id]
        cell = Cell(sim, machine, cell_id, assignment[cell_id], namespace,
                    registry, costs=cell_costs,
                    filesystems=persistent_fs.get(cell_id),
                    incarnation=incarnation)
        persistent_fs[cell_id] = cell.filesystems
        return cell

    registry.set_rebuild_callback(build_cell)
    for cell_id in sorted(assignment):
        registry.register(build_cell(cell_id))
    registry.rewire_monitors = lambda: _wire_monitor_ring(registry)
    registry.rewire_monitors()
    injector = FaultInjector(sim, machine)

    def _wire_injection(cell: Cell) -> None:
        if injector.phase_hit not in cell.phase_hooks:
            cell.phase_hooks.append(injector.phase_hit)

    for cell in registry.cells.values():
        _wire_injection(cell)
    # Reintegrated cells are new objects: wire them on registration.
    registry.register_observers.append(_wire_injection)
    system = HiveSystem(sim, machine, registry, namespace, injector)
    if with_wax:
        from repro.core.wax import Wax

        registry.wax = Wax(system)
        registry.wax.start()
    return system


def _wire_monitor_ring(registry: CellRegistry) -> None:
    """Each cell clock-monitors its successor in the live ring."""
    live = registry.live_cell_ids()
    if len(live) < 2:
        for cell_id in live:
            registry.cells[cell_id].detector.set_monitored(None)
        return
    for i, cell_id in enumerate(live):
        succ = live[(i + 1) % len(live)]
        registry.cells[cell_id].detector.set_monitored(succ)


def boot_irix(sim: Simulator,
              machine: Optional[Machine] = None,
              machine_config: Optional[MachineConfig] = None,
              namespace: Optional[GlobalNamespace] = None,
              costs=None) -> LocalKernel:
    """Boot the IRIX 5.2 baseline: one kernel, all nodes, no firewall."""
    if machine is None:
        cfg = machine_config or MachineConfig(firewall_enabled=False)
        cfg.firewall_enabled = False
        machine = Machine(sim, cfg)
    params = machine.params
    if namespace is None:
        namespace = GlobalNamespace(params.num_nodes)
    return LocalKernel(sim, machine, 0, list(range(params.num_nodes)),
                       namespace, costs=costs)
