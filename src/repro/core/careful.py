"""The careful reference protocol (Section 4.1).

One cell reads another's kernel data structures directly "in cases where
RPCs are too slow, an up-to-date view of the data is required, or the data
needs to be published to a large number of cells".  The protocol:

1. ``careful_on``: capture the current context and record which cell will
   be accessed, so a bus error restores control instead of panicking;
2. check every remote address for alignment and for lying in the expected
   cell's memory range;
3. copy values locally before sanity-checking (defends against values
   changing mid-operation);
4. check the allocator-maintained structure type tag;
5. ``careful_off``: future bus errors again cause a panic.

Failures raise :class:`CarefulReferenceFault` (never a panic) and are
reported to the reading cell as failure *hints* about the remote cell.

Timing: the measured careful clock read is 1.16 us end to end, 0.7 us of
which is the cache miss to the remote line; the protocol software costs
are charged from :class:`~repro.unix.costs.KernelCosts` to land there.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.hardware.errors import BusError
from repro.unix.errors import CarefulReferenceFault
from repro.unix.kheap import KOBJ_ALIGN, KObject


class CarefulReader:
    """Careful-reference machinery for one reading cell."""

    def __init__(self, cell):
        self.cell = cell
        self.sim = cell.sim
        self.costs = cell.costs
        #: targets of currently-open careful sections (one per thread in
        #: a careful section; several threads on different processors of
        #: the cell can be in sections concurrently).  Bus errors while
        #: any section is open against the erroring cell are captured
        #: instead of escalating to panic.
        self._active: List[int] = []
        self.reads = 0
        self.faults_detected = 0

    @property
    def active_target(self) -> Optional[int]:
        return self._active[-1] if self._active else None

    # -- protocol steps ----------------------------------------------------

    def careful_on(self, remote_cell_id: int) -> Generator:
        """Step 1: record the target cell and capture the stack frame."""
        self._active.append(remote_cell_id)
        yield self.sim.timeout(self.costs.careful_on_ns)
        return None

    def careful_off(self) -> Generator:
        """Step 5: restore panic-on-bus-error behaviour."""
        if self._active:
            self._active.pop()
        yield self.sim.timeout(self.costs.careful_off_ns)
        return None

    def _fail(self, remote_cell_id: int, check: str,
              detail: str = "") -> CarefulReferenceFault:
        self.faults_detected += 1
        if remote_cell_id in self._active:
            self._active.remove(remote_cell_id)
        fault = CarefulReferenceFault(remote_cell_id, check, detail)
        prov = self.cell.prov
        if prov.enabled:
            # A check that fires while a fault is live is a near-miss:
            # the protocol blocked tainted state from being consumed.
            prov.careful_blocked(remote_cell_id, self.cell.kernel_id,
                                 check, detail)
        # A failed consistency check is a failure hint (Section 4.3).
        self.cell.failure_hint(remote_cell_id,
                               f"careful reference {check} check: {detail}")
        return fault

    # -- composite reads ---------------------------------------------------

    def read_word(self, remote_cell_id: int, addr: int) -> Generator:
        """Read one word of remote memory under careful protection.

        Used by clock monitoring; returns the latency-accurate read of the
        shared location (here: its current value is produced by the
        owning cell object, the *memory traffic* by the coherence model).
        """
        obs = self.cell.obs
        span = None
        if obs.enabled:
            span = obs.begin("careful.read_word", "careful",
                             cell=self.cell.kernel_id,
                             target=remote_cell_id)
        yield from self.careful_on(remote_cell_id)
        try:
            latency = self.cell.machine.coherence.read(
                self.cell.cpu_ids[0], addr)
        except BusError as exc:
            obs.end(span, outcome="bus_error")
            raise self._fail(remote_cell_id, "bus_error", str(exc))
        yield self.sim.timeout(latency)
        self.reads += 1
        yield from self.careful_off()
        obs.end(span, outcome="ok")
        prov = self.cell.prov
        if prov.enabled:
            prov.careful_ok(remote_cell_id, self.cell.kernel_id)
        return None

    def read_object(self, remote_cell_id: int, addr: int,
                    expected_type: str,
                    copy_words: int = 8) -> Generator:
        """Careful read of a typed kernel structure; returns a snapshot.

        Applies every check of the protocol; the returned object is the
        structure itself (our stand-in for the local copy — callers must
        not mutate it, mirroring the read-only discipline the paper's
        lookup algorithms obey).
        """
        obs = self.cell.obs
        span = None
        if obs.enabled:
            span = obs.begin("careful.read_object", "careful",
                             cell=self.cell.kernel_id,
                             target=remote_cell_id, ktype=expected_type)
        yield from self.careful_on(remote_cell_id)
        try:
            obj = yield from self._read_object_body(remote_cell_id, addr,
                                                    expected_type,
                                                    copy_words)
        except CarefulReferenceFault as exc:
            obs.end(span, outcome="fault", check=exc.check)
            raise
        yield from self.careful_off()
        obs.end(span, outcome="ok")
        prov = self.cell.prov
        if prov.enabled:
            prov.careful_ok(remote_cell_id, self.cell.kernel_id)
        return obj

    def _read_object_body(self, remote_cell_id: int, addr: int,
                          expected_type: str,
                          copy_words: int) -> Generator:
        """Steps 2-4 (caller wraps in on/off for multi-read sections)."""
        # Step 2: alignment and range checks.
        yield self.sim.timeout(self.costs.careful_check_ns)
        if addr % KOBJ_ALIGN != 0:
            raise self._fail(remote_cell_id, "alignment", f"addr={addr:#x}")
        heap_range = self.cell.registry.heap_range_of(remote_cell_id)
        if heap_range is None:
            raise self._fail(remote_cell_id, "range",
                             f"cell {remote_cell_id} unknown")
        lo, hi = heap_range
        if not lo <= addr < hi:
            raise self._fail(
                remote_cell_id, "range",
                f"addr={addr:#x} outside cell {remote_cell_id} "
                f"kernel range [{lo:#x},{hi:#x})")
        # Step 4 (tag read): a real memory access — may bus-error.
        try:
            latency = self.cell.machine.coherence.read(
                self.cell.cpu_ids[0], addr)
        except BusError as exc:
            raise self._fail(remote_cell_id, "bus_error", str(exc))
        yield self.sim.timeout(latency)
        resolved = self.cell.registry.resolve_kernel_address(
            remote_cell_id, addr)
        yield self.sim.timeout(self.costs.careful_check_ns)
        if resolved is None:
            raise self._fail(remote_cell_id, "type_tag",
                             f"no allocation at {addr:#x}")
        ktype, obj = resolved
        if ktype != expected_type:
            raise self._fail(remote_cell_id, "type_tag",
                             f"expected {expected_type!r} found {ktype!r}")
        # Step 3: copy to local memory before further checks.
        yield self.sim.timeout(copy_words * self.costs.careful_copy_ns_per_word)
        self.reads += 1
        return obj

    # -- bus-error interception for non-careful kernel code ------------------

    def handle_kernel_bus_error(self, exc: BusError) -> bool:
        """Trap-handler policy: True if the error was captured.

        Inside a careful section the saved context is restored (the
        caller sees :class:`CarefulReferenceFault`); outside one, a bus
        error during kernel execution indicates internal corruption and
        the cell panics.
        """
        return bool(self._active)
