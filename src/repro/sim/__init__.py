"""Deterministic discrete-event simulation engine.

This package is the execution substrate for the whole reproduction: the
FLASH hardware model, the UNIX kernel substrate, and the Hive cells all run
as coroutine processes on a single :class:`~repro.sim.engine.Simulator`
whose clock counts nanoseconds.

The engine is deliberately simpy-like but self-contained (no third-party
dependency) and fully deterministic: events scheduled for the same instant
fire in schedule order, and all randomness flows through named streams of
:class:`~repro.sim.rng.RandomStreams`.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import FifoStore, Mutex, Resource, Semaphore
from repro.sim.rng import RandomStreams
from repro.sim.stats import Counter, Histogram, MetricSet, Sampler, Timer

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "FifoStore",
    "Histogram",
    "Interrupted",
    "MetricSet",
    "Mutex",
    "Process",
    "RandomStreams",
    "Resource",
    "Sampler",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Timer",
]
