"""Measurement primitives: counters, latency timers, histograms, samplers.

The paper reports averages, maxima, component breakdowns (Table 5.2), and
periodically-sampled quantities (remotely-writable page counts sampled every
20 ms, Section 4.2).  These classes provide exactly those aggregations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: default bucket bounds (ns) for latency histograms: 1 us .. 1 s in a
#: roughly-logarithmic ladder, matching the paper's range of interest
#: (microsecond RPCs up to the ~400 ms software-fault detection tail).
DEFAULT_LATENCY_BOUNDS_NS = [
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
    100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000,
    100_000_000, 200_000_000, 500_000_000, 1_000_000_000,
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def merge(self, other: "Counter") -> None:
        """Fold another shard's count into this one."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Timer:
    """Accumulates durations (ns) and reports count/total/mean/min/max."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str = "timer"):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration} in {self.name}")
        self.count += 1
        self.total += duration
        if self.min is None or duration < self.min:
            self.min = duration
        if self.max is None or duration > self.max:
            self.max = duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def merge(self, other) -> None:
        """Fold another shard's timer into this one.

        count/total add; min/max combine.  Merging preserves the
        invariant that the merged timer equals one timer that recorded
        both shards' durations (in any order).
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Timer {self.name} n={self.count} mean={self.mean:.1f}ns "
            f"min={self.min} max={self.max}>"
        )


class TimerView:
    """A Timer-shaped read view over a :class:`Histogram`.

    Lets a legacy timer name keep working after its recording was
    unified onto a histogram (a value used to be recorded into both,
    double-counting the work): the view reports the histogram's
    count/total/mean/min/max through the Timer attribute surface, and
    a ``record`` call delegates to the histogram so there is exactly
    one underlying store.
    """

    __slots__ = ("name", "_hist")

    def __init__(self, name: str, hist: "Histogram"):
        self.name = name
        self._hist = hist

    def record(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration} in {self.name}")
        self._hist.record(duration)

    @property
    def count(self) -> int:
        return self._hist.total

    @property
    def total(self) -> int:
        return self._hist.sum

    @property
    def mean(self) -> float:
        return self._hist.mean

    @property
    def min(self) -> Optional[int]:
        return self._hist.min

    @property
    def max(self) -> Optional[int]:
        return self._hist.max

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TimerView {self.name} n={self.count} mean={self.mean:.1f}ns "
            f"min={self.min} max={self.max}>"
        )


class Histogram:
    """Fixed-bucket histogram of durations, for latency distributions.

    Bucket ``i`` counts values with ``value <= bounds[i]`` (and greater
    than the previous bound); the last bucket is the overflow.  Exact
    min/max/sum are tracked alongside so snapshots can report a true
    maximum and bucket-resolution percentiles.
    """

    def __init__(self, name: str, bucket_bounds: Optional[List[int]] = None):
        if bucket_bounds is None:
            bucket_bounds = list(DEFAULT_LATENCY_BOUNDS_NS)
        if sorted(bucket_bounds) != list(bucket_bounds):
            raise ValueError("bucket bounds must be sorted")
        self.name = name
        self.bounds = list(bucket_bounds)
        self.counts = [0] * (len(bucket_bounds) + 1)
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values) -> None:
        """Record a whole array of values in one vectorized pass.

        Accepts any iterable of ints; with a numpy array the bucketing
        runs as one ``searchsorted`` + ``bincount`` (the million-session
        workload's latency path), with identical results to a
        :meth:`record` loop.
        """
        try:
            import numpy as np
        except ImportError:
            np = None
        if np is not None:
            arr = np.asarray(values)
            if arr.size == 0:
                return
            # searchsorted(side="left") is bisect_left, bucket by bucket.
            idx = np.searchsorted(self.bounds, arr, side="left")
            for i, count in enumerate(
                    np.bincount(idx, minlength=len(self.counts))):
                self.counts[i] += int(count)
            self.sum += int(arr.sum())
            lo, hi = int(arr.min()), int(arr.max())
            if self.min is None or lo < self.min:
                self.min = lo
            if self.max is None or hi > self.max:
                self.max = hi
            return
        for value in values:  # pragma: no cover - numpy is baked in
            self.record(int(value))

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        n = self.total
        return self.sum / n if n else 0.0

    def percentile(self, p: float) -> float:
        """Percentile at bucket resolution: the upper bound of the bucket
        holding the p-th ranked sample (the exact max for the overflow
        bucket)."""
        n = self.total
        if not n:
            return 0.0
        rank = max(1, int(p / 100.0 * n + 0.999999))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if i < len(self.bounds):
                    return float(min(self.bounds[i], self.max))
                return float(self.max)
        return float(self.max)

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "n": self.total,
            "mean": self.mean,
            "min": float(self.min or 0),
            "max": float(self.max or 0),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        for bound, count in zip(self.bounds, self.counts):
            out[f"le_{bound}"] = count
        out["overflow"] = self.counts[-1]
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one.

        Bucket counts, sum, min, and max combine exactly, so every
        quantity :meth:`snapshot` reports — including the bucket-
        resolution percentiles — equals what a single histogram fed
        both shards' value streams (in any order) would report.  That
        equality is the campaign merger's golden-merge contract and is
        asserted by a unit test, not assumed.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into "
                f"{self.name!r}: bucket bounds differ")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict:
        """JSON-safe full state, for cross-process campaign shards."""
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Histogram":
        hist = cls(payload["name"], list(payload["bounds"]))
        hist.counts = list(payload["counts"])
        hist.sum = payload["sum"]
        hist.min = payload["min"]
        hist.max = payload["max"]
        return hist


class Sampler:
    """Records (time, value) samples of a quantity; reports avg and max.

    Used for the Section 4.2 experiment that samples the number of
    remotely-writable pages per cell every 20 ms.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str = "sampler"):
        self.name = name
        self.samples: List[tuple] = []

    def record(self, time_ns: int, value: float) -> None:
        self.samples.append((time_ns, value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(v for _, v in self.samples) / len(self.samples)

    @property
    def max(self) -> float:
        if not self.samples:
            return 0.0
        return max(v for _, v in self.samples)

    def values(self) -> List[float]:
        return [v for _, v in self.samples]


@dataclass
class MetricSet:
    """A named registry of metrics, one per cell or per subsystem."""

    name: str = "metrics"
    counters: Dict[str, Counter] = field(default_factory=dict)
    timers: Dict[str, Timer] = field(default_factory=dict)
    samplers: Dict[str, Sampler] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def timer(self, name: str) -> Timer:
        t = self.timers.get(name)
        if t is None:
            t = Timer(name)
            self.timers[name] = t
        return t

    def timer_view(self, name: str, hist: Histogram) -> TimerView:
        """Install ``name`` as a read view over ``hist`` (see TimerView)."""
        t = self.timers.get(name)
        if not isinstance(t, TimerView):
            t = TimerView(name, hist)
            self.timers[name] = t
        return t

    def sampler(self, name: str) -> Sampler:
        s = self.samplers.get(name)
        if s is None:
            s = Sampler(name)
            self.samplers[name] = s
        return s

    def histogram(self, name: str,
                  bounds: Optional[List[int]] = None) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name, bounds)
            self.histograms[name] = h
        return h

    def merge(self, other: "MetricSet") -> None:
        """Fold another shard's metrics into this set, in place.

        Counters and timers add; samplers concatenate their sample
        lists; histograms merge bucket-wise (identical bounds
        required).  TimerViews are skipped on both sides — they are
        read views whose backing histogram is merged through the
        ``histograms`` dict, so merging the view too would double
        count.
        """
        for name, c in other.counters.items():
            self.counter(name).merge(c)
        for name, t in other.timers.items():
            if isinstance(t, TimerView):
                continue
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timer(name)
            elif isinstance(mine, TimerView):
                continue
            mine.merge(t)
        for name, s in other.samplers.items():
            self.sampler(name).samples.extend(s.samples)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(h.to_dict())
            else:
                mine.merge(h)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of all current metric values, for report printing."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[f"{name}.count"] = c.value
        for name, t in self.timers.items():
            out[f"{name}.n"] = t.count
            out[f"{name}.mean_ns"] = t.mean
            out[f"{name}.total_ns"] = t.total
        for name, s in self.samplers.items():
            out[f"{name}.mean"] = s.mean
            out[f"{name}.max"] = s.max
        for name, h in self.histograms.items():
            for key, value in h.snapshot().items():
                out[f"{name}.{key}"] = value
        return out
