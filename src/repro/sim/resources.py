"""Synchronization and queuing primitives built on the event engine.

These model the kernel-level and hardware-level contention points in the
reproduction: kernel locks (:class:`Mutex`), bounded hardware queues such as
the SIPS receive queues (:class:`FifoStore`), multi-unit resources such as
the RPC server-process pool (:class:`Resource`), and counting semaphores.

All primitives hand out grants in strict FIFO order, which keeps the whole
simulation deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator


class Mutex:
    """A FIFO mutual-exclusion lock.

    Usage inside a process::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._acquire_name = name + ".acquire"
        self._locked = False
        self._waiters: Deque[Event] = deque()
        #: number of acquisitions that had to wait (contention metric)
        self.contended_acquires = 0
        self.total_acquires = 0

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = Event(self.sim, self._acquire_name)
        self.total_acquires += 1
        if not self._locked:
            self._locked = True
            ev.succeed(self)
        else:
            self.contended_acquires += 1
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        self.total_acquires += 1
        return True

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name}")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self._locked = False


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, value: int = 0, name: str = "sem"):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._down_name = name + ".down"
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def down(self) -> Event:
        ev = Event(self.sim, self._down_name)
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def up(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Resource:
    """A pool of ``capacity`` identical units (CPUs of a cell, disk arms).

    ``request()`` yields an event granting one unit; ``release()`` returns
    it.  FIFO granting.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.name = name
        self._request_name = name + ".request"
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def request(self) -> Event:
        ev = Event(self.sim, self._request_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class FifoStore:
    """A bounded FIFO queue of items with blocking get/put.

    Models hardware receive queues (SIPS request/reply queues) and kernel
    work queues (queued-RPC service queue).  ``put`` on a full store fails
    immediately with :class:`StoreFull` if ``block_on_full`` is False,
    matching hardware flow-control semantics where the sender must retry.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
        block_on_full: bool = True,
    ):
        self.sim = sim
        self.name = name
        self._put_name = name + ".put"
        self._get_name = name + ".get"
        self.capacity = capacity
        self.block_on_full = block_on_full
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()
        self.total_puts = 0
        self.rejected_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (and drops nothing) when full."""
        if self.is_full:
            self.rejected_puts += 1
            return False
        self._deliver(item)
        return True

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, self._put_name)
        if self.is_full:
            if not self.block_on_full:
                self.rejected_puts += 1
                ev.fail(StoreFull(self.name))
            else:
                self._putters.append((ev, item))
        else:
            self._deliver(item)
            ev.succeed()
        return ev

    def _deliver(self, item: Any) -> None:
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters and not self.is_full:
                put_ev, item = self._putters.popleft()
                self._deliver(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Remove and return all queued items (used by reboot paths)."""
        items = list(self._items)
        self._items.clear()
        return items


class StoreFull(Exception):
    """Raised by a non-blocking :class:`FifoStore` put when at capacity."""
