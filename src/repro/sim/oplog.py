"""Columnar operation log: record a driver stream once, replay it many.

A parameter sweep re-runs the same traffic with only the fault schedule
(or firewall policy) varying, so most of every trial's Python work —
the workload generators stepping wakeup by wakeup — recomputes a stream
that is already known.  The oplog captures that stream *once* as a
numpy struct-of-arrays (time, cell, node, op-kind, address, size,
latency, cycle slot), cheap enough to record inline during a live run,
compact enough to commit as a bench artifact, and shaped so the replay
tier (:mod:`repro.sim.replay`) can process whole segments with array
passes (``searchsorted`` over the time column, ``bincount`` over the
slot column) instead of per-wakeup generator dispatch.

Two capture sources share the format:

* the throughput-bench traffic drivers (``bench/throughput.py``) record
  one row per wakeup, kind-tagged so replay knows which rows were pure
  memo replays (collapsible) and which took the real access path;
* a flight recorder's event stream (``oplog_from_recorder``) becomes a
  kind-tabled trace for the inject campaign's fault-schedule sweep,
  where trials are diffed columnarly against trial 0 to find the
  divergence point.

``save``/``load`` round-trip through ``np.savez_compressed`` (`.npz`),
with a JSON metadata sidecar embedded in the archive.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

OPLOG_SCHEMA = "hive-oplog/v1"

#: op kinds for traffic-driver rows.  MEMO rows resolved as pure batch
#: memo replays (side-effect-free except counters) and are the rows the
#: replay tier may collapse; REAL rows took the live access path;
#: RETIRE rows mark the wakeup at which the driver's access raised
#: (grant revoked / node dead) and the driver exited.
OP_MEMO = 0
OP_REAL = 1
OP_RETIRE = 2

OP_KIND_NAMES = ("memo", "real", "retire")

#: the struct-of-arrays schema, in storage order
COLUMNS = ("time_ns", "cell", "node", "kind", "addr", "size",
           "latency_ns", "slot")

_DTYPES = {
    "time_ns": np.int64,
    "cell": np.int32,
    "node": np.int32,
    "kind": np.int16,
    "addr": np.int64,
    "size": np.int32,
    "latency_ns": np.int64,
    "slot": np.int32,
}


class OpLog:
    """Append-only columnar operation log.

    Rows append to plain Python lists (append cost must stay noise-level
    next to the live access they shadow); :meth:`finalize` freezes the
    columns into numpy arrays for the replay tier's array passes.  A
    finalized log rejects further appends.
    """

    __slots__ = ("enabled", "meta", "kind_names", "_cols", "_frozen")

    def __init__(self, meta: Optional[Dict[str, Any]] = None,
                 kind_names: Optional[List[str]] = None):
        self.enabled = True
        #: free-form capture metadata (config name, seed, counters ...)
        self.meta: Dict[str, Any] = dict(meta or {})
        #: kind-code table; traffic logs use :data:`OP_KIND_NAMES`,
        #: recorder-event logs build their own name table.
        self.kind_names: List[str] = list(kind_names or OP_KIND_NAMES)
        self._cols: Dict[str, list] = {c: [] for c in COLUMNS}
        self._frozen: Optional[Dict[str, np.ndarray]] = None

    # -- capture -------------------------------------------------------

    def append(self, time_ns: int, cell: int, node: int, kind: int,
               addr: int, size: int, latency_ns: int = 0,
               slot: int = 0) -> None:
        cols = self._cols
        cols["time_ns"].append(time_ns)
        cols["cell"].append(cell)
        cols["node"].append(node)
        cols["kind"].append(kind)
        cols["addr"].append(addr)
        cols["size"].append(size)
        cols["latency_ns"].append(latency_ns)
        cols["slot"].append(slot)

    def __len__(self) -> int:
        if self._frozen is not None:
            return int(self._frozen["time_ns"].shape[0])
        return len(self._cols["time_ns"])

    # -- freeze / access -----------------------------------------------

    def finalize(self) -> "OpLog":
        """Freeze the append buffers into numpy columns (idempotent)."""
        if self._frozen is None:
            self._frozen = {
                name: np.asarray(self._cols[name], dtype=_DTYPES[name])
                for name in COLUMNS
            }
            self._cols = {c: [] for c in COLUMNS}
        return self

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        if self._frozen is None:
            raise RuntimeError("OpLog not finalized; call finalize() first")
        return self._frozen

    def stream(self, cell: int) -> Dict[str, np.ndarray]:
        """One cell's rows, in append (= time) order, as packed arrays."""
        cols = self.columns
        idx = np.flatnonzero(cols["cell"] == cell)
        return {name: cols[name][idx] for name in COLUMNS}

    def cells(self) -> List[int]:
        return sorted(int(c) for c in np.unique(self.columns["cell"]))

    # -- persistence ---------------------------------------------------

    def save(self, path: str) -> None:
        """Write the finalized log as a compressed ``.npz`` archive."""
        cols = self.columns
        header = json.dumps({
            "schema": OPLOG_SCHEMA,
            "kind_names": self.kind_names,
            "meta": self.meta,
        }, sort_keys=True)
        np.savez_compressed(
            path, __header__=np.frombuffer(header.encode(), dtype=np.uint8),
            **cols)

    @classmethod
    def load(cls, path: str) -> "OpLog":
        with np.load(path) as archive:
            header = json.loads(archive["__header__"].tobytes().decode())
            if header.get("schema") != OPLOG_SCHEMA:
                raise ValueError(
                    f"bad oplog schema: {header.get('schema')!r}")
            log = cls(meta=header.get("meta"),
                      kind_names=header.get("kind_names"))
            log._frozen = {
                name: np.array(archive[name], dtype=_DTYPES[name])
                for name in COLUMNS
            }
        return log

    # -- JSON-safe transport (campaign worker -> parent) ----------------

    def to_jsonable(self) -> Dict[str, Any]:
        cols = self.columns
        return {
            "schema": OPLOG_SCHEMA,
            "kind_names": self.kind_names,
            "meta": self.meta,
            "columns": {name: cols[name].tolist() for name in COLUMNS},
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "OpLog":
        log = cls(meta=payload.get("meta"),
                  kind_names=payload.get("kind_names"))
        cols = payload["columns"]
        for name in COLUMNS:
            log._cols[name] = list(cols[name])
        return log.finalize()


def save_oplogs(path: str, logs: Dict[str, OpLog]) -> None:
    """Write several finalized logs into one ``.npz`` (key-prefixed)."""
    header = json.dumps({
        "schema": OPLOG_SCHEMA,
        "names": sorted(logs),
        "entries": {
            name: {"kind_names": log.kind_names, "meta": log.meta}
            for name, log in logs.items()
        },
    }, sort_keys=True)
    arrays = {"__header__": np.frombuffer(header.encode(), dtype=np.uint8)}
    for name, log in logs.items():
        for col, arr in log.columns.items():
            arrays[f"{name}/{col}"] = arr
    np.savez_compressed(path, **arrays)


def load_oplogs(path: str) -> Dict[str, OpLog]:
    """Load a multi-log archive written by :func:`save_oplogs`."""
    with np.load(path) as archive:
        header = json.loads(archive["__header__"].tobytes().decode())
        if header.get("schema") != OPLOG_SCHEMA:
            raise ValueError(f"bad oplog schema: {header.get('schema')!r}")
        logs: Dict[str, OpLog] = {}
        for name in header["names"]:
            entry = header["entries"][name]
            log = OpLog(meta=entry.get("meta"),
                        kind_names=entry.get("kind_names"))
            log._frozen = {
                col: np.array(archive[f"{name}/{col}"], dtype=_DTYPES[col])
                for col in COLUMNS
            }
            logs[name] = log
    return logs


def oplog_from_recorder(events) -> OpLog:
    """Columnar capture of a flight recorder's event stream.

    ``events`` is any iterable of TelemetryEvent-likes (``time_ns``,
    ``name``, ``category``, ``cell``).  Event names become the log's
    kind table; cells without an id map to -1.  The inject campaign's
    fault-schedule sweep records trial 0 this way and diffs the other
    trials' streams against it to locate each divergence point.
    """
    names: List[str] = []
    index: Dict[str, int] = {}
    log = OpLog(kind_names=names)
    for ev in events:
        kind = index.get(ev.name)
        if kind is None:
            kind = index[ev.name] = len(names)
            names.append(ev.name)
        cell = ev.cell if ev.cell is not None else -1
        log.append(ev.time_ns, cell, -1, kind, 0, 0)
    return log.finalize()


def divergence_point(base: OpLog, other: OpLog) -> Dict[str, Any]:
    """Columnar diff of two event streams: where do they first differ?

    Compares (time, kind-name, cell) row-wise and returns the length of
    the identical prefix, the first divergent simulated time (None when
    one stream is a prefix of the other and nothing diverged), and the
    identical fraction relative to the longer stream.
    """
    a, b = base.columns, other.columns
    n = min(len(base), len(other))
    total = max(len(base), len(other))
    if n == 0:
        prefix = 0
    else:
        same = (a["time_ns"][:n] == b["time_ns"][:n]) \
            & (a["cell"][:n] == b["cell"][:n])
        # Kind codes are table-local; compare through the name tables.
        if base.kind_names == other.kind_names:
            same &= a["kind"][:n] == b["kind"][:n]
        else:
            an = np.asarray(base.kind_names, dtype=object)[a["kind"][:n]]
            bn = np.asarray(other.kind_names, dtype=object)[b["kind"][:n]]
            same &= an == bn
        bad = np.flatnonzero(~same)
        prefix = int(bad[0]) if bad.size else n
    diverged = prefix < total
    if not diverged:
        time = None
    elif prefix < n:
        time = int(min(a["time_ns"][prefix], b["time_ns"][prefix]))
    else:
        longer = a if len(base) > len(other) else b
        time = int(longer["time_ns"][prefix])
    return {
        "identical_prefix": prefix,
        "divergence_ns": time,
        "identical_fraction": (prefix / total if total else 1.0),
        "rows": {"base": len(base), "other": len(other)},
    }
