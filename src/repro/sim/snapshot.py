"""Snapshot-fork scenario server: reuse one booted system for many runs.

A fault-injection campaign pays a fresh :func:`repro.core.hive.boot_hive`
for every trial even though every trial starts from the *same* booted
state (the seed only feeds runtime RNG draws, never boot).  A
:class:`SystemImage` captures that booted state once and hands out
runnable copies in O(dirtied-state).

The capture mechanism is the operating system's own copy-on-write: the
image boots the system inside a dedicated *holder* process (forked before
boot, so closures and un-picklable coroutines never cross a process
boundary), freezes the heap into shared pages, and then forks a fresh
child per run.  The child inherits the booted system byte-for-byte —
engine queues, timer wheel, per-cell kernel structures, pfdat/firewall/
coherence directories, RNG streams — and only pages it dirties are
copied.  Run requests and results travel over pipes as length-prefixed
pickle frames; the run function must therefore be module-level
(picklable by reference), which is the same contract the campaign's
multiprocessing workers already obey.

Determinism contract (same as ``HIVE_BATCH``/``HIVE_WHEEL``/
``HIVE_SHARDS``/``HIVE_REPLAY``): fork-then-run must produce byte-
identical counters to fresh-boot-then-run.  Boot consumes no RNG draws
and :func:`reseed_system` rebinds the machine's ``RandomStreams`` to the
requested seed before the run function executes, so a child forked from
an image booted at any seed is indistinguishable from a fresh boot at
the run seed.  ``HIVE_SNAPSHOT=0`` (or a platform without ``os.fork``)
drops to a fallback mode that simply boots per run — same results,
no amortization.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import sys
import time
import traceback
from typing import Any, Callable, Optional

__all__ = [
    "SnapshotError",
    "SystemImage",
    "fork_supported",
    "reseed_system",
    "snapshot_enabled",
]

_LEN = struct.Struct("<Q")


class SnapshotError(RuntimeError):
    """A snapshot image could not be created or used."""


def fork_supported() -> bool:
    """Whether this platform can host a fork-based image."""
    return hasattr(os, "fork") and hasattr(os, "pipe")


def snapshot_enabled(default: bool = True) -> bool:
    """Snapshot-fork gate: ``HIVE_SNAPSHOT=0`` or no ``os.fork`` disables.

    Mirrors the other engine escapes (``HIVE_BATCH``, ``HIVE_WHEEL``,
    ``HIVE_SHARDS``, ``HIVE_REPLAY``): the feature is on by default and
    the environment variable is the kill switch.
    """
    if not fork_supported():
        return False
    raw = os.environ.get("HIVE_SNAPSHOT")
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


def reseed_system(system: Any, seed: int) -> Any:
    """Rebind a booted system's RNG streams to ``seed``.

    Boot draws nothing from :class:`repro.sim.rng.RandomStreams` — the
    machine's streams are only consumed at runtime (disk rotational
    latency) — so resetting the stream seed and dropping derived streams
    makes a forked system equivalent to one freshly booted at ``seed``.
    """
    machine = getattr(system, "machine", None)
    if machine is None:
        return system
    machine.config.seed = seed
    machine.rng.seed = seed
    machine.rng._streams.clear()
    return system


# -- pipe framing -----------------------------------------------------------


def _write_frame(fd: int, obj: Any) -> None:
    data = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    payload = _LEN.pack(len(data)) + data
    view = memoryview(payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(fd: int) -> Optional[Any]:
    header = _read_exact(fd, _LEN.size)
    if header is None:
        return None
    body = _read_exact(fd, _LEN.unpack(header)[0])
    if body is None:
        return None
    return pickle.loads(body)


# -- the image --------------------------------------------------------------

_LIVE_IMAGES: list = []


def _close_all_images() -> None:
    for image in list(_LIVE_IMAGES):
        try:
            image.close()
        except Exception:
            pass


atexit.register(_close_all_images)


class SystemImage:
    """An immutable booted-system image that forks runnable copies.

    ``boot_fn(*boot_args, **boot_kwargs)`` must return the booted system
    object.  It runs inside the holder process (fork mode) or inline per
    run (fallback mode), so it may be any callable — only :meth:`run`'s
    function and arguments ever cross a process boundary.

    :meth:`run` executes ``fn(system, *args, **kwargs)`` against a fresh
    copy of the image and returns its (picklable) result.  With
    ``reseed=seed`` the copy's RNG streams are rebound before ``fn``
    executes, preserving the fresh-boot golden contract.
    """

    def __init__(self, boot_fn: Callable, *boot_args: Any,
                 name: str = "image", enabled: Optional[bool] = None,
                 **boot_kwargs: Any):
        self.name = name
        self.boot_fn = boot_fn
        self.boot_args = boot_args
        self.boot_kwargs = boot_kwargs
        self.mode = "fork" if (snapshot_enabled() if enabled is None
                               else enabled) else "boot"
        self.closed = False
        self.forks = 0
        self.boot_wall_s = 0.0
        self.fork_wall_s_last = 0.0
        self.fork_wall_s_total = 0.0
        self._holder_pid: Optional[int] = None
        self._req_w: Optional[int] = None
        self._resp_r: Optional[int] = None
        if self.mode == "fork":
            self._start_holder()
        _LIVE_IMAGES.append(self)

    # -- holder process ----------------------------------------------------

    def _start_holder(self) -> None:
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Holder: boot once, freeze the heap, serve fork requests.
            status = 1
            try:
                os.close(req_w)
                os.close(resp_r)
                self._holder_loop(req_r, resp_w)
                status = 0
            except BaseException:
                try:
                    traceback.print_exc()
                except Exception:
                    pass
            finally:
                os._exit(status)
        os.close(req_r)
        os.close(resp_w)
        self._holder_pid = pid
        self._req_w = req_w
        self._resp_r = resp_r
        ready = _read_frame(resp_r)
        if not ready or ready[0] != "ready":
            self._reap_holder()
            raise SnapshotError(
                f"image {self.name!r} failed to boot in holder: "
                f"{ready[1] if ready else 'holder died during boot'}")
        self.boot_wall_s = ready[1]

    def _holder_loop(self, req_r: int, resp_w: int) -> None:
        import gc

        try:
            t0 = time.perf_counter()
            system = self.boot_fn(*self.boot_args, **self.boot_kwargs)
            boot_wall = time.perf_counter() - t0
        except BaseException:
            _write_frame(resp_w, ("boot-error", traceback.format_exc()))
            return
        # Compact then freeze: surviving objects move to a permanent
        # generation the collector never touches, so child processes do
        # not dirty shared pages just by running a GC pass.
        gc.collect()
        if hasattr(gc, "freeze"):
            gc.freeze()
        _write_frame(resp_w, ("ready", boot_wall))
        while True:
            request = _read_frame(req_r)
            if request is None or request[0] == "exit":
                return
            _kind, fn, args, kwargs, seed, t_request = request
            child_r, child_w = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Grandchild: one run against the inherited system.
                try:
                    os.close(req_r)
                    os.close(resp_w)
                    os.close(child_r)
                    if seed is not None:
                        reseed_system(system, seed)
                    fork_wall = time.perf_counter() - t_request
                    try:
                        result = fn(system, *args, **kwargs)
                        frame = ("ok", result, fork_wall)
                    except BaseException:
                        frame = ("error", traceback.format_exc(), fork_wall)
                    try:
                        _write_frame(child_w, frame)
                    except Exception:
                        _write_frame(child_w, (
                            "error",
                            "result not picklable:\n" + traceback.format_exc(),
                            fork_wall))
                finally:
                    os._exit(0)
            os.close(child_w)
            # Read before waitpid: large results would otherwise
            # deadlock on a full pipe.  EOF without a frame means the
            # child died before reporting.
            frame = _read_frame(child_r)
            os.close(child_r)
            os.waitpid(pid, 0)
            if frame is None:
                frame = ("error", "forked run died before reporting", 0.0)
            _write_frame(resp_w, frame)

    def _reap_holder(self) -> None:
        for fd in (self._req_w, self._resp_r):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._req_w = self._resp_r = None
        if self._holder_pid is not None:
            try:
                os.waitpid(self._holder_pid, 0)
            except (ChildProcessError, OSError):
                pass
            self._holder_pid = None

    # -- public API --------------------------------------------------------

    def run(self, fn: Callable, *args: Any, seed: Optional[int] = None,
            **kwargs: Any) -> Any:
        """Run ``fn(system, *args, **kwargs)`` against a fresh copy.

        ``seed`` (if given) reseeds the copy's RNG streams first.  In
        fork mode ``fn``/``args``/``kwargs``/result must be picklable;
        the system itself never crosses the pipe.
        """
        if self.closed:
            raise SnapshotError(f"image {self.name!r} is closed")
        if self.mode == "boot":
            t0 = time.perf_counter()
            system = self.boot_fn(*self.boot_args, **self.boot_kwargs)
            if not self.forks:
                self.boot_wall_s = time.perf_counter() - t0
            if seed is not None:
                reseed_system(system, seed)
            setup_wall = time.perf_counter() - t0
            self.forks += 1
            self.fork_wall_s_last = setup_wall
            self.fork_wall_s_total += setup_wall
            return fn(system, *args, **kwargs)
        t_request = time.perf_counter()
        try:
            _write_frame(self._req_w,
                         ("run", fn, args, kwargs, seed, t_request))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            raise SnapshotError(
                f"image {self.name!r}: run function and arguments must be "
                f"picklable (module-level callables, no closures): {exc}"
            ) from exc
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise SnapshotError(
                f"image {self.name!r}: holder process is gone: {exc}"
            ) from exc
        frame = _read_frame(self._resp_r)
        if frame is None:
            self.close()
            raise SnapshotError(
                f"image {self.name!r}: holder died while running")
        status, payload, fork_wall = frame
        self.forks += 1
        self.fork_wall_s_last = fork_wall
        self.fork_wall_s_total += fork_wall
        if status == "error":
            raise SnapshotError(
                f"forked run failed in image {self.name!r}:\n{payload}")
        return payload

    def stats(self) -> dict:
        """Amortization accounting for bench payloads."""
        forks = self.forks
        return {
            "name": self.name,
            "mode": self.mode,
            "forks": forks,
            "boot_wall_s": round(self.boot_wall_s, 6),
            "fork_wall_s_last": round(self.fork_wall_s_last, 6),
            "fork_wall_s_mean": round(self.fork_wall_s_total / forks, 6)
            if forks else 0.0,
        }

    def close(self) -> None:
        """Shut the holder down; the image is unusable afterwards."""
        if self.closed:
            return
        self.closed = True
        if self.mode == "fork" and self._req_w is not None:
            try:
                _write_frame(self._req_w, ("exit",))
            except OSError:
                pass
            self._reap_holder()
        if self in _LIVE_IMAGES:
            _LIVE_IMAGES.remove(self)

    def __enter__(self) -> "SystemImage":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
