"""Trace-driven replay: feed a recorded op stream back as array passes.

A recorded throughput run (:mod:`repro.sim.oplog`) knows, for every
driver wakeup, when it fired, which cycle slot it issued, whether it
resolved as a pure batch-memo replay, and what latency it saw.  On a
replay trial with identical traffic, that record *is* the driver's
future — so instead of stepping the Python generator per wakeup, a
:class:`ReplayChain` commits whole replay-identical segments at once:

* ``searchsorted`` over the recorded time column finds how many wakeups
  fit under the conservative horizon (next engine event, overlapping
  dirty chain, stop time — the same caps the PR8 shard chains honor);
* ``bincount`` over the slot column turns the segment into per-batch
  replay counts, committed through the PR4 memo tier
  (:meth:`CoherenceController.replay_memo`) so every simulated counter
  moves exactly as the live engine would move it;
* the segment's park carries the shard-engine event accounting
  (two dispatches per collapsed wakeup), keeping ``events_processed``
  byte-identical to the sequential engine.

The record is *validated, never trusted*: each distinct batch in a
segment must pass :meth:`CoherenceController.peek_memo` against the
**current** run's state before any of it commits.  At any divergence —
a moved fault injection, a recovery that revoked a grant, a firewall
flip, a recorded wakeup whose time no longer matches — the chain falls
back to live execution (the PR8 :class:`ShardedChain` path, itself
golden-gated against the sequential engine), and re-locks onto the
recorded stream at a time offset once the disturbance settles — the
steady-state stream is periodic, so any later recorded occurrence of
the chain's slot is a resync candidate, and every candidate is fully
validated before a single counter moves.  ``HIVE_REPLAY=0`` disables
the tier outright; replay runs
answer to the same byte-identical-counter golden contract as
``HIVE_BATCH``/``HIVE_WHEEL``/``HIVE_SHARDS``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.sim.oplog import OP_MEMO, OpLog
from repro.sim.shard import ShardedChain, ShardLane


def replay_from_env() -> bool:
    """The ``HIVE_REPLAY`` escape (default on; 0 forces live runs)."""
    return os.environ.get("HIVE_REPLAY", "1") != "0"


class ReplayChain(ShardedChain):
    """A shard chain whose credits are guided by a recorded stream.

    Behaves exactly like :class:`ShardedChain` — same horizon caps,
    same commit primitives, same park accounting — except that segment
    extents come from the trace columns instead of stepwise peeks, and
    a recorded non-memo wakeup (the driver went to the real access
    path, or retired) is executed live at its recorded instant.
    """

    __slots__ = ("_times", "_slots", "_kinds", "_lats", "_seg_end",
                 "_slot_rows", "_i", "_n", "_offset", "_resync_from",
                 "trace_wakeups", "fallback_wakeups", "desyncs",
                 "resyncs", "desynced")

    def __init__(self, lane: ShardLane, coh, cpu: int, cycle: list,
                 gap: int, stream: Dict[str, np.ndarray]):
        super().__init__(lane, coh, cpu, cycle, gap)
        self._times = stream["time_ns"]
        self._slots = stream["slot"]
        self._kinds = stream["kind"]
        self._lats = stream["latency_ns"]
        n = int(self._times.shape[0])
        self._n = n
        # seg_end[i]: first row at or after i that is NOT a memo replay
        # (n when the tail is all memo) — the recorded extent of the
        # collapsible segment starting at i, computed once per chain.
        idx = np.arange(n, dtype=np.int64)
        nonmemo = np.where(self._kinds != OP_MEMO, idx, n)
        self._seg_end = np.minimum.accumulate(nonmemo[::-1])[::-1] \
            if n else idx
        # Per-slot memo-row index, for resync candidate lookup: the
        # recorded steady state is periodic, so after a divergence the
        # live chain can re-lock onto any later recorded occurrence of
        # its current slot (validation happens before commit).
        memo_rows = np.flatnonzero(self._kinds == OP_MEMO)
        self._slot_rows = [
            memo_rows[self._slots[memo_rows] == s]
            for s in range(self.period)
        ]
        self._i = 0
        #: live-time minus recorded-time for the locked region; zero
        #: while replaying from the start, nonzero after a resync.
        self._offset = 0
        self._resync_from = 0
        self.trace_wakeups = 0
        self.fallback_wakeups = 0
        self.desyncs = 0
        self.resyncs = 0
        self.desynced = False

    def credit(self, j: int, stop_ns: int):
        i = self._i
        if not self.desynced and i < self._n:
            now = self.engine.sim.now
            if int(self._times[i]) + self._offset != now \
                    or int(self._slots[i]) != j:
                # This chain's timeline left the recorded one (a real
                # access resolved differently, or the driver restarted
                # a position the record never saw).
                self.desynced = True
                self.desyncs += 1
                self._resync_from = i
            elif int(self._kinds[i]) != OP_MEMO:
                # The record took the live path at this very wakeup
                # (real access or retirement).  Execute it live: with an
                # identical prefix the outcome is identical, and if it
                # is not, the time check above desyncs us next wakeup.
                self._i = i + 1
                self.fallback_wakeups += 1
                return 0, 0, j
            else:
                out = self._trace_credit(i, j, stop_ns)
                if out is not None:
                    return out
                # Recorded as a memo replay, but current state refuses
                # it (fault schedule moved, grant revoked earlier):
                # divergence point — go live.
                self.desynced = True
                self.desyncs += 1
                self._resync_from = i
        elif self.desynced:
            # Divergences are transient: the fault window perturbs the
            # timeline, but once recovery settles the chain cycles the
            # same periodic stream the record captured.  Try to re-lock
            # onto the next recorded occurrence of the current slot at
            # a time offset; _trace_credit validates every distinct
            # batch against current state before anything commits, so a
            # wrong candidate costs one probe and nothing else.
            out = self._try_resync(j, stop_ns)
            if out is not None:
                return out
        # Fallback: exactly the live sharded chain.
        k, sleep, j2 = ShardedChain.credit(self, j, stop_ns)
        self.fallback_wakeups += k if k else 1
        return k, sleep, j2

    def _try_resync(self, j: int, stop_ns: int):
        rows = self._slot_rows[j]
        pos = int(np.searchsorted(rows, self._resync_from))
        if pos >= rows.shape[0]:
            return None
        r = int(rows[pos])
        self._offset = self.engine.sim.now - int(self._times[r])
        out = self._trace_credit(r, j, stop_ns)
        if out is None:
            # Candidate refused (still inside the recorded or the live
            # fault window); skip it for good and stay live this wakeup.
            self._resync_from = r + 1
            return None
        self.desynced = False
        self.resyncs += 1
        return out

    def _trace_credit(self, i: int, j: int, stop_ns: int):
        """Commit the recorded memo segment at ``i`` as one array pass.

        Returns ``(k, sleep_ns, next_j)`` or None when current state
        contradicts the record before a single wakeup can commit.
        """
        coh = self.coh
        cycle = self.cycle
        lats = self._lats
        # First-row validation prefers the generation-keyed cache (one
        # array index on a hit); a conservative -1 entry falls back to
        # the live peek, which can still rescue a stale-looking memo.
        if self.cycle_peek_lats()[j] != lats[i]:
            peek = coh.peek_memo(self.cpu, cycle[j])
            if peek is None or peek[0] != int(lats[i]):
                return None
            # The peek rescued (and re-keyed) a memo the cache had
            # conservatively marked stale; drop the cache so the next
            # rebuild sees the rescue instead of truncating here again.
            self.invalidate_peeks()
        engine = self.engine
        t0 = engine.sim.now
        qt = engine.horizon()
        cap = stop_ns if qt is None or qt > stop_ns else qt
        barrier = engine.barrier_for(self)
        if barrier is not None and barrier < cap:
            cap = barrier
        times = self._times
        offset = self._offset
        seg = int(self._seg_end[i])
        period = self.period
        # The first wakeup is always valid (the driver is mid-dispatch,
        # as in the sequential engine); later recorded wakeups join the
        # run while their times land strictly before the horizon — the
        # span the sequential engine would have executed them in with
        # no interleaved state mutation.  On busy configs the next
        # queue event usually lands before the second recorded wakeup,
        # so probe that row directly before paying for a searchsorted.
        if i + 1 >= seg or int(times[i + 1]) + offset >= cap:
            # Single-wakeup segment: commit without the array machinery.
            coh.replay_memo(cycle[j], 1)
            nxt = i + 1
            if nxt < self._n:
                sleep = int(times[nxt]) + offset - t0
            else:
                sleep = int(times[i]) + int(self._lats[i]) \
                    + self.gap + offset - t0
            self._i = nxt
            self.trace_wakeups += 1
            return 1, sleep, (j + 1) % period
        k = int(times.searchsorted(cap - offset, "left"))
        if k > seg:
            k = seg
        k -= i
        if k < 1:
            k = 1
        # The record proves memo validity at *record* time only; every
        # row in the run must also price identically against the
        # current run's state.  Short runs validate slot by slot with
        # an early exit (slots advance sequentially mod period, so the
        # wakeup touching slot (j + step) % period is `step` ahead);
        # period-plus runs validate every row in one vectorized compare
        # against the generation-keyed per-slot latency cache.  A stale
        # or repriced row truncates the run right before it.
        cpu = self.cpu
        if k < period:
            for step in range(1, k):
                p = coh.peek_memo(cpu, cycle[(j + step) % period])
                if p is None or p[0] != int(lats[i + step]):
                    k = step
                    break
        else:
            ok = self.cycle_peek_lats()[self._slots[i:i + k]] \
                == lats[i:i + k]
            if not ok.all():
                k = max(1, int(np.argmin(ok)))
        # Slots advance sequentially mod period (that is what makes
        # (j + k) % period the resume position), so the per-slot counts
        # are arithmetic: k // period everywhere plus one for the first
        # k % period slots starting at j.
        q = k // period
        counts = [q] * period
        for m in range(k - q * period):
            counts[(j + m) % period] += 1
        coh.replay_memo_cycle(cycle, counts)
        nxt = i + k
        if nxt < self._n:
            sleep = int(times[nxt]) + offset - t0
        else:
            # Trace exhausted: the last recorded wakeup's own sleep.
            sleep = int(times[nxt - 1]) + int(lats[nxt - 1]) \
                + self.gap + offset - t0
        self._i = nxt
        self.trace_wakeups += k
        return k, sleep, (j + k) % period


class ReplaySession:
    """One replay run's chain registry + hit/fallback accounting.

    Built from a finalized :class:`OpLog`; ``register_chain`` hands
    each traffic driver its recorded per-cell stream.  The session
    hangs off the booted system (``system.replay_session``) so
    :func:`repro.obs.profile.tier_snapshot` can report the counters.
    """

    def __init__(self, oplog: OpLog, config: Optional[str] = None):
        self.oplog = oplog.finalize()
        meta_config = self.oplog.meta.get("config")
        if config is not None and meta_config not in (None, config):
            raise ValueError(
                f"oplog was recorded for config {meta_config!r}, "
                f"not {config!r}")
        self.config = config
        self.chains: List[ReplayChain] = []

    def register_chain(self, lane: ShardLane, coh, cell_id: int,
                       cpu: int, cycle: list, gap: int) -> ReplayChain:
        chain = ReplayChain(lane, coh, cpu, cycle, gap,
                            self.oplog.stream(cell_id))
        lane.chains.append(chain)
        self.chains.append(chain)
        return chain

    def snapshot(self) -> Dict:
        """Deterministic replay counters for tier snapshots/bench rows."""
        return {
            "enabled": True,
            "trace_rows": len(self.oplog),
            "chains": len(self.chains),
            "replayed_from_trace": sum(c.trace_wakeups
                                       for c in self.chains),
            "fallback_wakeups": sum(c.fallback_wakeups
                                    for c in self.chains),
            "desyncs": sum(c.desyncs for c in self.chains),
            "resyncs": sum(c.resyncs for c in self.chains),
        }
