"""Cell-sharded simulation: conservative windows over the cell seam.

Hive cells interact only through the enumerable intercell channels
(:mod:`repro.sim.channels`): SIPS/RPC messages, remote coherence
misses, firewall flips.  The slowest-is-fastest of those —
``HardwareParams.min_intercell_latency_ns()`` — is a classic
conservative-synchronization lookahead: work that stays inside one
cell group can be advanced to the next cross-shard interaction point
without waiting on the other shards event-by-event.

``HIVE_SHARDS=N`` (or ``repro bench --shards N``) partitions the cells
into N contiguous groups ("lanes") under a :class:`ShardEngine`
coordinator.  The coordinator replaces the flat event-by-event loop
with a window protocol:

* **control events** (kernel clock ticks, detector reads, recovery,
  fault injection, exporters, samplers — everything scheduled in the
  engine queue) dispatch exactly as in the sequential engine, in the
  same order;
* **workload chains** (the bench traffic drivers) park *outside* the
  engine queue.  Between two control events nothing can mutate
  directory, firewall, or fault state, so a chain whose next accesses
  are provably memoized cache hits (``CoherenceController.peek_memo``)
  is advanced arithmetically to the horizon — one park replaces up to
  a whole window of per-wakeup dispatches while every simulated
  counter moves exactly as the sequential engine would move it;
* at each **window barrier** (window width = the lookahead) the lanes
  exchange their pending channel batches: each op is validated against
  the lookahead invariant and tallied per lane, so cross-shard traffic
  is accounted the way a worker-process executor would ship it.

Determinism contract: a sharded run must produce byte-identical
deterministic counters (events, accesses, coherence stats, tier
attribution, channel digests) to the sequential engine on the golden
configs — the same gate HIVE_BATCH / HIVE_WHEEL / HIVE_RPC_FAST
answer to.  ``HIVE_SHARDS=0`` (the default) changes nothing anywhere.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.engine import Event, Simulator


def shards_from_env() -> int:
    """The ``HIVE_SHARDS`` setting (0 = sequential engine)."""
    try:
        return max(0, int(os.environ.get("HIVE_SHARDS", "0")))
    except ValueError:
        return 0


def plan_shards(cell_ids: Sequence[int], shards: int) -> List[List[int]]:
    """Partition cells into at most ``shards`` contiguous groups.

    Contiguous by cell id: the bench scenario (and the paper's own
    layouts) place neighbour grants between adjacent cells, so
    contiguous groups keep the densest channel traffic intra-shard.
    """
    ids = sorted(cell_ids)
    n = max(1, min(int(shards), len(ids)))
    base, extra = divmod(len(ids), n)
    groups: List[List[int]] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            groups.append(ids[start:start + size])
            start += size
    return groups


class ShardedChain:
    """One workload chain (a traffic driver) owned by a shard lane.

    The chain's driver stays an ordinary simulator process; the chain
    object answers two questions for it: *how many of my next wakeups
    are provably replayable before the horizon* (:meth:`credit`) and
    *park me until my next wakeup* (:meth:`park`).  Event accounting
    mirrors the sequential engine exactly — each sequential wakeup
    costs two dispatched events (the timeout expiry pop plus its
    callback), so a park representing ``k`` wakeups contributes
    ``2k - 2`` at creation and ``2`` when it fires.
    """

    __slots__ = ("lane", "engine", "coh", "cpu", "cycle", "gap",
                 "period", "parks", "replayed_wakeups", "home_nodes",
                 "_gen_nodes", "_peek_key", "_peek_global",
                 "_peek_lats", "_peek_clean")

    def __init__(self, lane: "ShardLane", coh, cpu: int, cycle: list,
                 gap: int):
        self.lane = lane
        self.engine = lane.engine
        self.coh = coh
        self.cpu = cpu
        self.cycle = cycle
        self.gap = gap
        self.period = len(cycle)
        self.parks = 0
        self.replayed_wakeups = 0
        #: every home node this chain's accesses can touch.  A real
        #: access only mutates directory state (generation counters) on
        #: the home nodes of its own lines, so two chains with disjoint
        #: home-node sets can never invalidate each other's memos.
        homes = set()
        for batch in cycle:
            homes.update(batch.home_nodes)
        self.home_nodes = frozenset(homes)
        #: the same set as an ordered list, for the node-local
        #: generation fingerprint the peek cache is keyed on.
        self._gen_nodes = sorted(homes)
        self._peek_key: Optional[tuple] = None
        self._peek_global: Optional[tuple] = None
        self._peek_lats: Optional[np.ndarray] = None
        self._peek_clean = False

    def _gen_key(self) -> tuple:
        """The cache key: fault generation + this chain's node gens.

        Node-local on purpose — kernel traffic churns the machine-global
        ``mutation_gen`` constantly, but only a mutation homed on one of
        *this chain's* nodes can touch the validity of its cycle memos.
        """
        coh = self.coh
        return (coh.memory.fault_gen, coh.memo_gen_key(self._gen_nodes))

    def _peek_fresh(self) -> bool:
        """Is the cached cycle scan provably current?

        Two-level check, cheapest first: while the machine-global
        ``(mutation_gen, fault_gen)`` pair has not moved since the cache
        was built, *nothing* anywhere mutated, so the node-local key
        cannot have moved either — two int compares, no tuple build.
        Only when the global pair advanced (some mutation happened,
        probably on someone else's nodes) is the node-local fingerprint
        rebuilt and compared; a match refreshes the global stamp.
        """
        if self._peek_key is None:
            return False
        coh = self.coh
        g = (coh.mutation_gen, coh.memory.fault_gen)
        if g == self._peek_global:
            return True
        if self._gen_key() == self._peek_key:
            self._peek_global = g
            return True
        return False

    def cycle_peek_lats(self) -> np.ndarray:
        """Per-slot memo latencies (-1 = stale), cached on the fault
        generation and the chain's node-local directory generations.

        Sound because a *valid* memo cannot change or invalidate while
        the key stands still: every directory mutation bumps the home
        node of the mutated line, every node fail / revive / cutoff
        bumps ``PhysicalMemory.fault_gen``.  A stale slot may silently
        become valid within one key (an all-hit real access rebuilds
        its memo without a directory mutation), so -1 entries are
        conservative, never wrong.
        """
        if not self._peek_fresh():
            coh = self.coh
            cpu = self.cpu
            peek = coh.peek_memo
            lats = [0] * self.period
            clean = True
            for i, batch in enumerate(self.cycle):
                p = peek(cpu, batch)
                if p is None:
                    lats[i] = -1
                    clean = False
                else:
                    lats[i] = p[0]
            self._peek_lats = np.asarray(lats, dtype=np.int64)
            self._peek_clean = clean
            self._peek_key = self._gen_key()
            self._peek_global = (coh.mutation_gen, coh.memory.fault_gen)
        return self._peek_lats

    def invalidate_peeks(self) -> None:
        """Drop the peek cache after this chain takes the live path.

        An all-hit live access rebuilds its batch's memo *without* a
        directory mutation (nothing observable changed), so the
        generation key alone would keep reporting the slot stale.
        """
        self._peek_key = None
        self._peek_global = None

    def is_clean(self) -> bool:
        """Is this chain's *entire* cycle a provable memo replay?

        A clean chain cannot mutate directory state at any upcoming
        wakeup inside a mutation-free span: every access it will issue
        is a validated replay.  A chain with any stale batch might take
        the real access path (and really miss) at some wakeup, so its
        next due acts as a conservative mutation barrier for
        overlapping chains.

        Answered from the peek cache while its node-local key stands
        (replay runs hit this constantly); otherwise the original
        early-exit loop — a stale first batch beats a full cycle scan
        on mutation-heavy live runs, and the loop never pays to build
        the cache.
        """
        if self._peek_fresh():
            return self._peek_clean
        coh = self.coh
        cpu = self.cpu
        for batch in self.cycle:
            if coh.peek_memo(cpu, batch) is None:
                return False
        return True

    def credit(self, j: int, stop_ns: int):
        """Replay as many wakeups as the horizon allows, starting at
        cycle position ``j`` with the first access issued *now*.

        Returns ``(k, sleep_ns, next_j)``: ``k`` wakeups' worth of
        stats committed (0 when the next batch is not a provable memo
        replay — the caller then takes the real access path), and the
        single sleep that replaces their individual timeouts.  All
        collapsed access times land strictly before the next engine
        event and strictly before ``stop_ns``, which is exactly the
        span the sequential engine would have executed them in with no
        interleaved state mutation.
        """
        coh = self.coh
        cpu = self.cpu
        cycle = self.cycle
        peek = coh.peek_memo(cpu, cycle[j])
        if peek is None:
            return 0, 0, j
        engine = self.engine
        sim = engine.sim
        gap = self.gap
        period = self.period
        t0 = sim.now
        qt = engine.horizon()
        cap = stop_ns if qt is None or qt > stop_ns else qt
        barrier = engine.barrier_for(self)
        if barrier is not None and barrier < cap:
            cap = barrier
        counts = [0] * period
        counts[j] = 1
        k = 1
        sleep = peek[0] + gap
        # The first access is always valid: the driver is mid-dispatch,
        # exactly as in the sequential engine.  Extend while the *next*
        # access would still land strictly before the horizon.
        if t0 + sleep < cap:
            peeks: List[Optional[tuple]] = [None] * period
            peeks[j] = peek
            all_fresh = True
            period_d = peek[0] + gap
            for i in range(period):
                if i == j:
                    continue
                p = coh.peek_memo(cpu, cycle[i])
                peeks[i] = p
                if p is None:
                    all_fresh = False
                else:
                    period_d += p[0] + gap
            if all_fresh and period_d > 0:
                # Whole-period fast path: q more full periods fit when
                # their sleeps still end at or before cap-1 (every
                # access inside them then lands strictly earlier).
                span = cap - 1 - t0
                if span > sleep:
                    q = (span - sleep) // period_d
                    if q:
                        k += q * period
                        sleep += q * period_d
                        for i in range(period):
                            counts[i] += q
            # Stepwise remainder (also the only path when some batch
            # memo is stale: replay up to it, then let the driver take
            # the real access path which rebuilds that memo).
            while t0 + sleep < cap:
                jn = (j + k) % period
                p = peeks[jn]
                if p is None:
                    break
                k += 1
                counts[jn] += 1
                sleep += p[0] + gap
        replay = coh.replay_memo
        for i in range(period):
            if counts[i]:
                replay(cycle[i], counts[i])
        return k, sleep, (j + k) % period

    def park(self, sleep_ns: int, wakeups: int) -> Event:
        """Park until ``sim.now + sleep_ns``; the event the driver
        yields in place of the ``wakeups`` timeouts it represents."""
        engine = self.engine
        sim = engine.sim
        if wakeups > 1:
            # The collapsed wakeups' dispatches (two each: expiry pop +
            # callback), minus the pair the park itself accounts for
            # when it fires.
            sim.events_processed += 2 * (wakeups - 1)
            self.replayed_wakeups += wakeups - 1
        self.parks += 1
        self.lane.parks += 1
        ev = Event(sim)
        engine._order += 1
        due = sim.now + sleep_ns
        heapq.heappush(engine._parked, [due, engine._order, ev, self])
        # Freshness is evaluated right now, after this chain's own
        # accesses: a chain with any stale batch may go real (and
        # mutate) at a coming wakeup, so it barriers overlapping chains
        # at its due until it proves itself clean again.
        if self.is_clean():
            engine._dirty.pop(self, None)
        else:
            engine._dirty[self] = due
        return ev


class ShardLane:
    """One cell group: chain registry plus per-lane barrier accounting."""

    __slots__ = ("engine", "index", "cells", "chains", "parks",
                 "ops_in", "ops_out")

    def __init__(self, engine: "ShardEngine", index: int,
                 cells: Sequence[int]):
        self.engine = engine
        self.index = index
        self.cells = list(cells)
        self.chains: List[ShardedChain] = []
        self.parks = 0
        self.ops_in = 0
        self.ops_out = 0

    def register_chain(self, coh, cpu: int, cycle: list,
                       gap: int) -> ShardedChain:
        chain = ShardedChain(self, coh, cpu, cycle, gap)
        self.chains.append(chain)
        return chain

    def snapshot(self) -> Dict:
        return {
            "cells": self.cells,
            "chains": len(self.chains),
            "parks": self.parks,
            "replayed_wakeups": sum(c.replayed_wakeups
                                    for c in self.chains),
            "channel_ops_in": self.ops_in,
            "channel_ops_out": self.ops_out,
        }


class ShardEngine:
    """Conservative-window coordinator over one simulator.

    Drives the engine in (control-event, parked-chain) order: engine
    events keep their sequential dispatch order; parked chains fire at
    their due times through :meth:`Simulator.advance_to`.  At every
    window boundary the pending channel batches are exchanged between
    lanes (validated against the lookahead, tallied per lane).
    """

    def __init__(self, sim: Simulator, groups: Sequence[Sequence[int]],
                 lookahead_ns: int, channels=None):
        if lookahead_ns <= 0:
            raise ValueError(f"lookahead must be positive: {lookahead_ns}")
        self.sim = sim
        self.lookahead_ns = lookahead_ns
        self.channels = channels
        self.lanes = [ShardLane(self, i, g) for i, g in enumerate(groups)]
        self._lane_of_cell: Dict[int, ShardLane] = {}
        for lane in self.lanes:
            for cell in lane.cells:
                self._lane_of_cell[cell] = lane
        self._parked: list = []
        self._order = 0
        self._window = 0
        #: chains that cannot prove their whole cycle replays, keyed to
        #: the due time of their next (possibly mutating) wakeup
        self._dirty: Dict[ShardedChain, int] = {}
        #: queue events may have mutated directory state; re-evaluate
        #: parked chains' cleanliness before trusting ``_dirty`` again
        self._revalidate = True
        #: next *queue* event time, cached while dispatching a batch of
        #: parked-chain resumes (their pending siblings sit in the
        #: now-queue and would otherwise hide the real horizon)
        self._qt_cache: Optional[int] = None
        self._qt_valid = False
        self.windows_closed = 0
        self.batches_exchanged = 0
        self.ops_exchanged = 0

    def lane_of(self, cell_id: int) -> ShardLane:
        return self._lane_of_cell[cell_id]

    # -- replay horizon ------------------------------------------------

    def horizon(self) -> Optional[int]:
        """The next engine-queue event time, as seen by a chain credit.

        While a batch of parked resumes is being dispatched the queue
        horizon is cached (chain resumes schedule no queue events, so
        it cannot move); outside a resume batch fall back to the live
        ``next_event_time`` — which conservatively returns ``now`` when
        other now-queue callbacks are pending.
        """
        if self._qt_valid:
            return self._qt_cache
        return self.sim.next_event_time()

    def barrier_for(self, chain: ShardedChain) -> Optional[int]:
        """Earliest upcoming wakeup of a dirty chain that could mutate
        state this chain's memos depend on (None when unconstrained).

        Mutations from the engine queue are bounded by :meth:`horizon`;
        this bounds the only other source — overlapping chains whose
        next accesses are not provable replays.
        """
        dirty = self._dirty
        if self._revalidate:
            # A queue event dispatched since the last look: directory
            # generations may have moved, so re-evaluate every parked
            # chain (fired chains were re-marked by _fire_parked/park).
            for entry in self._parked:
                c = entry[3]
                if c.is_clean():
                    dirty.pop(c, None)
                else:
                    dirty[c] = entry[0]
            self._revalidate = False
        if not dirty:
            return None
        now = self.sim.now
        barrier = None
        mine = chain.home_nodes
        stale = None
        for c, due in dirty.items():
            if due < now:
                # The chain already executed (or died) at that due; a
                # live one re-registered itself when it re-parked.
                if stale is None:
                    stale = [c]
                else:
                    stale.append(c)
                continue
            if c is chain:
                continue
            if mine.isdisjoint(c.home_nodes):
                continue
            if barrier is None or due < barrier:
                barrier = due
        if stale:
            for c in stale:
                del dirty[c]
        return barrier

    # -- window barrier ------------------------------------------------

    def _exchange_to(self, t: int) -> None:
        """Close windows up to ``t``: drain and account channel batches.

        Empty windows are coalesced (nothing to exchange); the window
        *indexing* still uses the lookahead width, so batch attribution
        is identical to a fixed-cadence barrier executor's.
        """
        channels = self.channels
        if channels is None:
            return
        w = t // self.lookahead_ns
        if w == self._window:
            return
        self._window = w
        if not channels.pending:
            return
        lane_of = self._lane_of_cell
        for (src, dst), ops in channels.drain().items():
            self.batches_exchanged += 1
            self.ops_exchanged += len(ops)
            src_lane = lane_of.get(src)
            dst_lane = lane_of.get(dst)
            if src_lane is not None:
                src_lane.ops_out += len(ops)
            if dst_lane is not None and dst_lane is not src_lane:
                dst_lane.ops_in += len(ops)
        self.windows_closed += 1

    # -- the run loop --------------------------------------------------

    def run(self, until: int) -> None:
        """Advance simulation to ``until`` (the sharded ``sim.run``)."""
        sim = self.sim
        parked = self._parked
        heappop = heapq.heappop
        while True:
            qt = sim.next_event_time()
            pt = parked[0][0] if parked else None
            if qt is None and pt is None:
                sim.run(until=until)
                break
            if pt is None or (qt is not None and qt <= pt):
                # Engine events first on ties: a control event was
                # scheduled before the chain parked, so its seq is
                # lower — the sequential engine would dispatch it first.
                t = qt
            else:
                t = pt
            if t > until:
                sim.run(until=until)
                break
            self._exchange_to(t)
            if t == qt:
                sim.run(until=qt)
                # Queue dispatches may have mutated directory state.
                self._revalidate = True
                if pt is not None and pt <= qt:
                    self._resume_batch(pt)
                continue
            sim.advance_to(pt)
            self._resume_batch(pt)
        self._exchange_to(until)

    def _resume_batch(self, pt: int) -> None:
        """Fire every park due at ``pt`` and dispatch the resumes.

        The queue horizon is cached across the batch: the pending
        sibling resumes sit in the now-queue (which would make
        ``next_event_time`` report ``now``), but chain resumes cannot
        schedule queue events, so the true horizon is fixed.
        """
        sim = self.sim
        self._qt_cache = sim.next_event_time()
        self._qt_valid = True
        try:
            self._fire_parked(pt)
            sim.run(until=pt)
        finally:
            self._qt_valid = False
            self._qt_cache = None

    def _fire_parked(self, t: int) -> None:
        sim = self.sim
        parked = self._parked
        dirty = self._dirty
        heappop = heapq.heappop
        while parked and parked[0][0] == t:
            _due, _order, ev, chain = heappop(parked)
            # The expiry dispatch a sequential timeout would have cost;
            # the succeed callback's dispatch is counted by the run loop.
            sim.events_processed += 1
            # A firing chain that cannot prove its cycle clean may take
            # the real access path *at this instant*: overlapping
            # chains resumed in the same batch must not replay past it.
            if chain.is_clean():
                dirty.pop(chain, None)
            else:
                dirty[chain] = t
            ev.succeed()

    def snapshot(self) -> Dict:
        """Deterministic summary for the bench row."""
        out = {
            "shards": len(self.lanes),
            "lookahead_ns": self.lookahead_ns,
            "windows_closed": self.windows_closed,
            "batches_exchanged": self.batches_exchanged,
            "ops_exchanged": self.ops_exchanged,
            "parks": sum(lane.parks for lane in self.lanes),
            "replayed_wakeups": sum(
                c.replayed_wakeups for lane in self.lanes
                for c in lane.chains),
            "lanes": [lane.snapshot() for lane in self.lanes],
        }
        if self.channels is not None:
            out["channels"] = self.channels.snapshot()
        return out
