"""Core discrete-event engine: simulator clock, events, and processes.

Time is an integer number of nanoseconds.  The engine is a classic
event-queue design: a binary heap of ``(time, sequence, callback)`` entries.
Coroutine processes are Python generators that yield :class:`Event` objects
and are resumed when those events trigger.

Determinism guarantees
----------------------
* Events scheduled for the same instant fire in the order they were
  scheduled (the heap is keyed by ``(time, seq)``).
* Nothing in the engine consults wall-clock time or global randomness.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g. double-triggering an event)."""


class Interrupted(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either successfully (with a
    ``value``) or as a failure (with an exception that is re-raised inside
    every waiting process).  Callbacks added after triggering fire
    immediately at the current simulation time.
    """

    __slots__ = ("sim", "name", "_callbacks", "_triggered", "_ok", "_value")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: Optional[list] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as a failure; ``exc`` is raised in waiters."""
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(ok=False, value=exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        # Inlined sim.schedule(0, cb, self): triggering is the hottest
        # scheduling site and the delay is a constant zero.
        sim = self.sim
        now = sim.now
        queue = sim._queue
        seq = sim._seq
        args = (self,)
        for cb in callbacks:
            seq += 1
            heapq.heappush(queue, (now, seq, cb, args))
        sim._seq = seq

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is None:
            # Already triggered: deliver asynchronously at the current time
            # so callers observe a consistent (always-deferred) ordering.
            self.sim.schedule(0, cb, self)
        else:
            self._callbacks.append(cb)

    def remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is not None and cb in self._callbacks:
            self._callbacks.remove(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the highest-churn objects in the simulation, so the
    engine recycles them: once a timeout's single waiter has consumed
    it, :meth:`Process._resume` returns it to the simulator's pool and
    the next ``sim.timeout()`` call reinitializes it instead of
    allocating.  ``_cb_seen`` counts callbacks ever attached — a timeout
    is only recycled when exactly one waiter (the resuming process) ever
    saw it, so shared timeouts (``any_of``/``all_of`` children, stored
    references that gain late callbacks) are never reused.
    """

    __slots__ = ("delay", "_cb_seen")

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(
            sim, name=f"timeout({delay})" if sim.trace_names else "timeout")
        self.delay = delay
        self._cb_seen = 0
        sim.schedule(delay, self._expire, value)

    def _reinit(self, delay: int, value: Any) -> "Timeout":
        """Reset a pooled timeout for reuse (mirrors ``__init__``)."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        sim = self.sim
        if sim.trace_names:
            self.name = f"timeout({delay})"
        self.delay = delay
        self._callbacks = []
        self._triggered = False
        self._ok = True
        self._value = None
        self._cb_seen = 0
        # Inlined sim.schedule(delay, self._expire, value): one pooled
        # timeout is scheduled per process wakeup.
        sim._seq += 1
        heapq.heappush(sim._queue,
                       (sim.now + int(delay), sim._seq, self._expire,
                        (value,)))
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        self._cb_seen += 1
        # Inlined Event.add_callback: every process wait on a timeout
        # lands here.
        callbacks = self._callbacks
        if callbacks is None:
            self.sim.schedule(0, cb, self)
        else:
            callbacks.append(cb)

    def _expire(self, value: Any) -> None:
        # Inlined self.succeed(value)/_trigger: expiry is the hottest
        # trigger site and the double-trigger guard reduces to the
        # ``_triggered`` test.
        if self._triggered:
            return
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        sim = self.sim
        now = sim.now
        queue = sim._queue
        seq = sim._seq
        args = (self,)
        for cb in callbacks:
            seq += 1
            heapq.heappush(queue, (now, seq, cb, args))
        sim._seq = seq


class AnyOf(Event):
    """Triggers when the first of several events triggers.

    The value is the event that won.  A failing child fails the AnyOf.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed(ev)
        else:
            self.fail(ev._value)


class AllOf(Event):
    """Triggers when all of several events have triggered successfully."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            sim.schedule(0, lambda _ev=None: self.succeed([]))
            return
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine process driven by the simulator.

    The wrapped generator yields :class:`Event` instances; the process
    resumes (with the event's value) when each triggers.  The Process is
    itself an Event that triggers with the generator's return value, so
    processes can wait on each other (*join*).
    """

    __slots__ = ("gen", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: list = []
        sim.schedule(0, self._resume, None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process.

        If the process is waiting on an event, it stops waiting and the
        interrupt is delivered at the current time.  Interrupting a dead
        process is a no-op.
        """
        if self._triggered:
            return
        self._interrupts.append(Interrupted(cause))
        waiting = self._waiting_on
        if waiting is not None:
            waiting.remove_callback(self._resume)
            self._waiting_on = None
            self.sim.schedule(0, self._deliver_interrupt)

    # ``_step`` op codes: resume the generator with next/send/throw.
    _OP_NEXT, _OP_SEND, _OP_THROW = 0, 1, 2

    def _deliver_interrupt(self, _ev: Any = None) -> None:
        if self._triggered or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        self._step(Process._OP_THROW, exc)

    def _resume(self, ev: Optional[Event]) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        if self._interrupts:
            # An interrupt raced with the event; the interrupt wins.
            self.sim.schedule(0, self._deliver_interrupt)
            return
        if ev is None:
            self._step(Process._OP_NEXT, None)
        elif ev.ok:
            if type(ev) is Timeout and ev._cb_seen == 1:
                # This process was the timeout's only waiter ever; the
                # engine holds no further references, so recycle it.
                value = ev._value
                self.sim._timeout_pool.append(ev)
                self._step(Process._OP_SEND, value)
            else:
                self._step(Process._OP_SEND, ev.value)
        else:
            self._step(Process._OP_THROW, ev._value)

    def _step(self, op: int, arg: Any) -> None:
        self.sim._active_process, previous = self, self.sim._active_process
        try:
            gen = self.gen
            if op == 1:
                target = gen.send(arg)
            elif op == 0:
                target = next(gen)
            else:
                target = gen.throw(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted as exc:
            # An interrupt the process chose not to catch terminates it;
            # that is normal cancellation, never a simulation error.
            self.fail(exc)
            return
        except Exception as exc:
            if self.sim.crash_on_process_error:
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = previous
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The event loop.  ``now`` is the current time in nanoseconds."""

    __slots__ = ("now", "_queue", "_seq", "_active_process",
                 "crash_on_process_error", "events_processed",
                 "trace_names", "_timeout_pool")

    def __init__(self, crash_on_process_error: bool = True):
        self.now: int = 0
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: If True (the default), an uncaught exception inside a process
        #: aborts the whole simulation run.  Fault-injection experiments
        #: set this False so a crashing cell fails only its own processes.
        self.crash_on_process_error = crash_on_process_error
        #: total events dispatched over the simulator's lifetime, across
        #: all run calls (the throughput benchmark's events/sec numerator).
        self.events_processed: int = 0
        #: when True, events get descriptive formatted names (debugging);
        #: off by default so hot paths skip the f-string formatting.
        self.trace_names: bool = False
        # Recycled Timeout objects (see Timeout's docstring).
        self._timeout_pool: list = []

    # -- scheduling ---------------------------------------------------

    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + int(delay), self._seq, fn, args))

    def run(self, until: Optional[int] = None, max_events: int = 200_000_000) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        if until is None:
            while queue:
                entry = heappop(queue)
                self.now = entry[0]
                entry[2](*entry[3])
                processed += 1
                if processed > max_events:
                    self.events_processed += processed
                    raise SimulationError(
                        "event budget exhausted; likely livelock")
            self.events_processed += processed
            return
        while queue:
            # Pop first, push back on overshoot: the push-back happens at
            # most once per run() call, while the peek-then-pop form paid
            # an extra queue[0] index on every event.
            entry = heappop(queue)
            t = entry[0]
            if t > until:
                heapq.heappush(queue, entry)
                self.now = until
                self.events_processed += processed
                return
            self.now = t
            entry[2](*entry[3])
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError("event budget exhausted; likely livelock")
        self.events_processed += processed
        self.now = until

    def run_until_event(self, event: "Event",
                        deadline: Optional[int] = None,
                        max_events: int = 200_000_000) -> bool:
        """Process events until ``event`` triggers; returns True if it did.

        Unlike :meth:`run`, this stops as soon as the condition is met,
        which matters when perpetual background processes (clock ticks,
        monitors) would otherwise keep the queue busy to the deadline.
        """
        processed = 0
        while self._queue and not event.triggered:
            t, _seq, fn, args = self._queue[0]
            if deadline is not None and t > deadline:
                self.now = deadline
                break
            heapq.heappop(self._queue)
            self.now = t
            fn(*args)
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError("event budget exhausted; likely livelock")
        self.events_processed += processed
        return event.triggered

    def run_until_complete(self, proc: "Process", deadline: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes, returning its value (raising on failure)."""
        self.run(until=deadline)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by deadline "
                f"{deadline} (now={self.now})"
            )
        if not proc.ok:
            raise proc._value
        return proc.value

    # -- factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            return pool.pop()._reinit(delay, value)
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process
