"""Core discrete-event engine: simulator clock, events, and processes.

Time is an integer number of nanoseconds.  The engine is a classic
event-queue design; coroutine processes are Python generators that yield
:class:`Event` objects and are resumed when those events trigger.

The queue is a three-tier structure (the PR5 timer wheel):

* a **same-instant batch** (``_nowq``): zero-delay entries — mostly
  event-trigger callback dispatches — go to a FIFO deque instead of the
  heap, since they fire at the current instant anyway;
* a **bucketed timer wheel** for near-future entries (within
  ``_WHEEL_SLOTS`` slots of ``2**_WHEEL_SHIFT`` ns): an O(1) append at
  schedule time; a slot is dumped into the binary heap when the clock
  reaches it, so the heap stays small;
* the **binary heap** for far-future entries and the current slot.

``HIVE_WHEEL=0`` in the environment (or ``Simulator(wheel=False)``)
disables the wheel and the now-queue, restoring the classic single-heap
dispatch loop.  Both modes dispatch in exactly the same order.

Entries are mutable ``[time, seq, fn, args]`` lists so they can be
*cancelled* in place (:meth:`Simulator.cancel`, :meth:`Timeout.cancel`):
a cancelled entry has its callback slot cleared and is skipped — without
counting as a processed event — when it surfaces.  When many cancelled
entries accumulate in the heap it is compacted in place.

Determinism guarantees
----------------------
* Events scheduled for the same instant fire in the order they were
  scheduled (dispatch is keyed by ``(time, seq)`` across all tiers).
* Wheel-on and wheel-off runs dispatch the same events in the same
  order; ``events_processed`` and every simulated counter agree.
* Nothing in the engine consults wall-clock time or global randomness.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from typing import Any, Callable, Dict, Generator, Iterable, Optional

#: timer-wheel geometry: slots are ``2**_WHEEL_SHIFT`` ns wide and the
#: wheel covers ``_WHEEL_SLOTS`` slots (~4.2 ms of near future with the
#: defaults); farther entries fall back to the heap.
_WHEEL_SHIFT = 16
_WHEEL_SLOTS = 4096
_WHEEL_MASK = _WHEEL_SLOTS - 1
# Entries landing within this many slots of the cursor skip the wheel
# and go straight to the heap: a near-future timer would be dumped back
# into the heap by the very next _advance_wheel anyway, so parking it
# costs a slot append *plus* the heappush.  The wheel earns its keep on
# timers that sleep long enough to be cancelled or compacted in place.
_WHEEL_NEAR = 2

#: compact the heap when more than this many cancelled entries exist and
#: they outnumber the live ones.
_COMPACT_MIN_DEAD = 256

#: shared args tuple for value-less timeout expiries (the common case)
_NONE_ARGS = (None,)


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g. double-triggering an event)."""


class EngineProfile:
    """Dispatch-tier counts and per-subsystem wall-clock attribution.

    Populated only by the profiled twins of the run loops (HIVE_PROFILE=1
    or ``Simulator(profile=True)``); a simulator without profiling never
    touches one, so the unprofiled hot loops pay nothing.

    Tier counts map onto the three-tier queue: ``nowq_dispatches`` and
    ``heap_dispatches`` count loop pops from the same-instant deque and
    the binary heap, ``wheel_routed`` counts entries that parked in a
    wheel slot before being dumped to the heap (a subset of the heap
    dispatches), and ``inline_dispatches`` counts Timeout expiries that
    short-circuited the loop entirely (the ``_expire`` fast path, which
    bumps ``events_processed`` directly).

    Wall attribution buckets the time spent inside each dispatched
    callback by the owning process's subsystem — the first dot-component
    of the process name with trailing digits stripped, so ``rpc0.srv2``
    and ``rpc3.client`` both bucket under ``rpc``.
    """

    __slots__ = ("nowq_dispatches", "heap_dispatches", "wheel_routed",
                 "inline_dispatches", "subsystem_wall_s", "_cat_cache")

    def __init__(self):
        self.nowq_dispatches = 0
        self.heap_dispatches = 0
        self.wheel_routed = 0
        self.inline_dispatches = 0
        self.subsystem_wall_s: Dict[str, float] = {}
        self._cat_cache: Dict[str, str] = {}

    def category(self, name: str) -> str:
        cat = self._cat_cache.get(name)
        if cat is None:
            cat = name.split(".", 1)[0].rstrip("0123456789") or "anon"
            self._cat_cache[name] = cat
        return cat

    def merge(self, other: "EngineProfile") -> None:
        self.nowq_dispatches += other.nowq_dispatches
        self.heap_dispatches += other.heap_dispatches
        self.wheel_routed += other.wheel_routed
        self.inline_dispatches += other.inline_dispatches
        walls = self.subsystem_wall_s
        for cat, secs in other.subsystem_wall_s.items():
            walls[cat] = walls.get(cat, 0.0) + secs

    def to_dict(self) -> Dict:
        """JSON-safe state; wall figures are nondeterministic by nature
        and must stay out of byte-identical report sections."""
        return {
            "nowq_dispatches": self.nowq_dispatches,
            "heap_dispatches": self.heap_dispatches,
            "wheel_routed": self.wheel_routed,
            "inline_dispatches": self.inline_dispatches,
            "subsystem_wall_s": {
                cat: self.subsystem_wall_s[cat]
                for cat in sorted(self.subsystem_wall_s)},
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "EngineProfile":
        prof = cls()
        prof.nowq_dispatches = payload["nowq_dispatches"]
        prof.heap_dispatches = payload["heap_dispatches"]
        prof.wheel_routed = payload["wheel_routed"]
        prof.inline_dispatches = payload["inline_dispatches"]
        prof.subsystem_wall_s = dict(payload["subsystem_wall_s"])
        return prof


class Interrupted(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either successfully (with a
    ``value``) or as a failure (with an exception that is re-raised inside
    every waiting process).  Callbacks added after triggering fire
    immediately at the current simulation time.
    """

    __slots__ = ("sim", "name", "_callbacks", "_triggered", "_ok", "_value")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: Optional[list] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as a failure; ``exc`` is raised in waiters."""
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(ok=False, value=exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        # Inlined sim.schedule(0, cb, self): triggering is the hottest
        # scheduling site and the delay is a constant zero.
        sim = self.sim
        now = sim.now
        seq = sim._seq
        args = (self,)
        if sim._wheel_on:
            nowq = sim._nowq
            for cb in callbacks:
                seq += 1
                nowq.append([now, seq, cb, args])
        else:
            queue = sim._queue
            for cb in callbacks:
                seq += 1
                heapq.heappush(queue, [now, seq, cb, args])
        sim._seq = seq

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is None:
            # Already triggered: deliver asynchronously at the current time
            # so callers observe a consistent (always-deferred) ordering.
            self.sim.schedule(0, cb, self)
        else:
            self._callbacks.append(cb)

    def remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is not None and cb in self._callbacks:
            self._callbacks.remove(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the highest-churn objects in the simulation, so the
    engine recycles them: once a timeout's single waiter has consumed
    it, :meth:`Process._resume` returns it to the simulator's pool and
    the next ``sim.timeout()`` call reinitializes it instead of
    allocating.  ``_cb_seen`` counts callbacks ever attached — a timeout
    is only recycled when exactly one waiter (the resuming process) ever
    saw it, so shared timeouts (``any_of``/``all_of`` children, stored
    references that gain late callbacks) are never reused.

    A pending timeout with no remaining waiters can be :meth:`cancel`\\ ed
    — its queue entry is cleared in place and never fires.  ``AnyOf``
    cancels losing timeout children automatically so an RPC reply that
    wins the race against its deadline no longer leaves a dead entry
    churning the heap for the rest of the deadline window.
    """

    __slots__ = ("delay", "_cb_seen", "_entry", "_expire_cb", "_self_args")

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(
            sim, name=f"timeout({delay})" if sim.trace_names else "timeout")
        self.delay = delay
        self._cb_seen = 0
        # Cached bound method and callback-args tuple: building these
        # fresh for every (pooled, reused) timeout showed up in profiles.
        self._expire_cb = self._expire
        self._self_args = (self,)
        self._entry = sim.schedule(delay, self._expire_cb, value)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        self._cb_seen += 1
        # Inlined Event.add_callback: every process wait on a timeout
        # lands here.
        callbacks = self._callbacks
        if callbacks is None:
            self.sim.schedule(0, cb, self)
        else:
            callbacks.append(cb)

    def cancel(self) -> bool:
        """Cancel a pending timeout nobody waits on.

        Returns True if the scheduled expiry was revoked.  A timeout that
        already triggered, or that still has registered callbacks, is
        left alone (someone is waiting on it).
        """
        if self._triggered or self._callbacks:
            return False
        entry = self._entry
        if entry is None or entry[2] is None:
            return False
        self._entry = None
        return self.sim.cancel(entry)

    def _expire(self, value: Any) -> None:
        # Inlined self.succeed(value)/_trigger: expiry is the hottest
        # trigger site and the double-trigger guard reduces to the
        # ``_triggered`` test.
        if self._triggered:
            return
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        sim = self.sim
        now = sim.now
        if len(callbacks) == 1:
            queue = sim._queue
            if not sim._nowq and not (queue and queue[0][0] == now):
                # Same-instant batch dispatch: with no other entry
                # pending at this instant, the sole callback is exactly
                # what the dispatch loop would pop next (anything
                # already queued for this time carries a lower seq, and
                # there is nothing).  Calling it here skips the entry
                # allocation and one loop round trip; the dispatch is
                # still counted, so `events_processed` is unchanged.
                sim.events_processed += 1
                callbacks[0](self)
                return
        seq = sim._seq
        args = self._self_args
        if sim._wheel_on:
            nowq = sim._nowq
            for cb in callbacks:
                seq += 1
                nowq.append([now, seq, cb, args])
        else:
            queue = sim._queue
            for cb in callbacks:
                seq += 1
                heapq.heappush(queue, [now, seq, cb, args])
        sim._seq = seq


class AnyOf(Event):
    """Triggers when the first of several events triggers.

    The value is the event that won.  A failing child fails the AnyOf.
    On trigger, the AnyOf detaches from the losing children and cancels
    loser timeouts outright — a pattern like ``any_of([reply, deadline])``
    no longer leaves the deadline's entry dead in the queue.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed(ev)
        else:
            self.fail(ev._value)
        for child in self._children:
            if child is not ev and not child._triggered:
                child.remove_callback(self._child_done)
                if type(child) is Timeout and not child._callbacks:
                    child.cancel()


class AllOf(Event):
    """Triggers when all of several events have triggered successfully."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            sim.schedule(0, lambda _ev=None: self.succeed([]))
            return
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine process driven by the simulator.

    The wrapped generator yields :class:`Event` instances; the process
    resumes (with the event's value) when each triggers.  The Process is
    itself an Event that triggers with the generator's return value, so
    processes can wait on each other (*join*).
    """

    __slots__ = ("gen", "_waiting_on", "_interrupts", "_resume_cb",
                 "_resume_t_cb")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: list = []
        # Cached bound methods: _step registers one of these on every
        # yield, and building the bound method fresh each time was a
        # measurable allocation.
        self._resume_cb = self._resume
        self._resume_t_cb = self._resume_t
        sim.schedule(0, self._resume_cb, None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process.

        If the process is waiting on an event, it stops waiting and the
        interrupt is delivered at the current time.  Interrupting a dead
        process is a no-op.
        """
        if self._triggered:
            return
        self._interrupts.append(Interrupted(cause))
        waiting = self._waiting_on
        if waiting is not None:
            waiting.remove_callback(
                self._resume_t_cb if type(waiting) is Timeout
                else self._resume_cb)
            if type(waiting) is Timeout and not waiting._callbacks:
                # The abandoned wait target would otherwise fire into the
                # void much later; drop its queue entry now.
                waiting.cancel()
            self._waiting_on = None
            self.sim.schedule(0, self._deliver_interrupt)

    # ``_step`` op codes: resume the generator with next/send/throw.
    _OP_NEXT, _OP_SEND, _OP_THROW = 0, 1, 2

    def _deliver_interrupt(self, _ev: Any = None) -> None:
        if self._triggered or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        self._step(Process._OP_THROW, exc)

    def _resume(self, ev: Optional[Event]) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        if self._interrupts:
            # An interrupt raced with the event; the interrupt wins.
            self.sim.schedule(0, self._deliver_interrupt)
            return
        if ev is None:
            self._step(Process._OP_NEXT, None)
        elif ev._ok:
            if type(ev) is Timeout and ev._cb_seen == 1:
                # This process was the timeout's only waiter ever; the
                # engine holds no further references, so recycle it.
                value = ev._value
                self.sim._timeout_pool.append(ev)
                self._step(Process._OP_SEND, value)
            else:
                self._step(Process._OP_SEND, ev._value)
        else:
            self._step(Process._OP_THROW, ev._value)

    def _resume_t(self, ev: "Timeout") -> None:
        # Timeout-wait specialization of _resume, registered by _step
        # for plain timeout yields — the hottest wait in the simulation.
        # Timeouts never fail and never arrive as None, so the ok/type
        # dispatch reduces to the pool-eligibility test.
        if self._triggered:
            return
        self._waiting_on = None
        if self._interrupts:
            self.sim.schedule(0, self._deliver_interrupt)
            return
        if ev._cb_seen == 1:
            self.sim._timeout_pool.append(ev)
        self._step(Process._OP_SEND, ev._value)

    def _step(self, op: int, arg: Any) -> None:
        self.sim._active_process, previous = self, self.sim._active_process
        try:
            gen = self.gen
            if op == 1:
                target = gen.send(arg)
            elif op == 0:
                target = next(gen)
            else:
                target = gen.throw(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted as exc:
            # An interrupt the process chose not to catch terminates it;
            # that is normal cancellation, never a simulation error.
            self.fail(exc)
            return
        except Exception as exc:
            if self.sim.crash_on_process_error:
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = previous
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        self._waiting_on = target
        # Inlined target.add_callback(self._resume): every yield lands
        # here and no Event subclass customizes callback registration
        # beyond Timeout's _cb_seen bookkeeping.  Pending timeout waits
        # register the specialized _resume_t; everything else (and the
        # already-triggered deferred-delivery case) keeps the generic
        # _resume.
        if type(target) is Timeout:
            target._cb_seen += 1
            callbacks = target._callbacks
            if callbacks is None:
                self.sim.schedule(0, self._resume_cb, target)
            else:
                callbacks.append(self._resume_t_cb)
        else:
            callbacks = target._callbacks
            if callbacks is None:
                self.sim.schedule(0, self._resume_cb, target)
            else:
                callbacks.append(self._resume_cb)


class Simulator:
    """The event loop.  ``now`` is the current time in nanoseconds."""

    __slots__ = ("now", "_queue", "_seq", "_active_process",
                 "crash_on_process_error", "events_processed",
                 "trace_names", "_timeout_pool", "_wheel_on", "_nowq",
                 "_wheel", "_wheel_count", "_wslot", "_wslots", "_dead",
                 "_prof")

    def __init__(self, crash_on_process_error: bool = True,
                 wheel: Optional[bool] = None,
                 profile: Optional[bool] = None):
        self.now: int = 0
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: If True (the default), an uncaught exception inside a process
        #: aborts the whole simulation run.  Fault-injection experiments
        #: set this False so a crashing cell fails only its own processes.
        self.crash_on_process_error = crash_on_process_error
        #: total events dispatched over the simulator's lifetime, across
        #: all run calls (the throughput benchmark's events/sec numerator).
        #: Cancelled entries never count.
        self.events_processed: int = 0
        #: when True, events get descriptive formatted names (debugging);
        #: off by default so hot paths skip the f-string formatting.
        self.trace_names: bool = False
        # Recycled Timeout objects (see Timeout's docstring).
        self._timeout_pool: list = []
        if wheel is None:
            wheel = os.environ.get("HIVE_WHEEL", "1") != "0"
        #: timer wheel + same-instant batching enabled (HIVE_WHEEL escape)
        self._wheel_on = bool(wheel)
        # Same-instant FIFO of [time, seq, fn, args] entries for `now`.
        self._nowq: deque = deque()
        # Near-future slots; only allocated when the wheel is on.
        self._wheel: list = ([[] for _ in range(_WHEEL_SLOTS)]
                             if self._wheel_on else [])
        self._wheel_count = 0
        # Absolute slot index up to which the wheel has been drained.
        self._wslot = 0
        # Min-heap of occupied *absolute* slot indices (pushed on a
        # slot's empty->nonempty transition), so the advance cursor
        # jumps straight to the next occupied slot.
        self._wslots: list = []
        # Cancelled entries still sitting in the queue tiers.
        self._dead = 0
        if profile is None:
            profile = os.environ.get("HIVE_PROFILE", "0") != "0"
        #: dispatch profiling (HIVE_PROFILE=1).  When None the normal
        #: run loops execute untouched; when set, run()/run_until_event()
        #: divert to profiled twins, so disabled profiling costs one
        #: attribute test per run call — not per event.
        self._prof: Optional[EngineProfile] = (EngineProfile() if profile
                                               else None)

    @property
    def profile(self) -> Optional[EngineProfile]:
        return self._prof

    # -- scheduling ---------------------------------------------------

    def schedule(self, delay: int, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` after ``delay`` nanoseconds.

        Returns the queue entry, which can be revoked with
        :meth:`cancel` as long as it has not fired.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq = seq = self._seq + 1
        t = self.now + int(delay)
        entry = [t, seq, fn, args]
        if self._wheel_on:
            if delay == 0:
                self._nowq.append(entry)
            else:
                slot = t >> _WHEEL_SHIFT
                off = slot - self._wslot
                if _WHEEL_NEAR < off < _WHEEL_SLOTS:
                    lst = self._wheel[slot & _WHEEL_MASK]
                    if not lst:
                        heapq.heappush(self._wslots, slot)
                    lst.append(entry)
                    self._wheel_count += 1
                else:
                    # near/current slot or beyond the horizon
                    heapq.heappush(self._queue, entry)
        else:
            heapq.heappush(self._queue, entry)
        return entry

    def cancel(self, entry: list) -> bool:
        """Revoke an entry returned by :meth:`schedule`.

        The entry is cleared in place and skipped when it surfaces; it
        never counts as a processed event, in either wheel mode.  Returns
        False if the entry already fired or was already cancelled.
        """
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = None
        self._dead += 1
        queue = self._queue
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(queue):
            # In-place compaction (run loops alias self._queue).
            queue[:] = [e for e in queue if e[2] is not None]
            heapq.heapify(queue)
            self._dead = 0
        return True

    # -- wheel bookkeeping --------------------------------------------

    def _advance_wheel(self) -> None:
        """Dump occupied wheel slots into the heap until the earliest
        timed entry is at the heap head (or the wheel is empty).

        ``_wslots`` (a min-heap of occupied slot indices) lets the
        cursor jump straight to the next occupied slot; empty slots are
        never visited.
        """
        queue = self._queue
        wslots = self._wslots
        wheel = self._wheel
        heappush = heapq.heappush
        heappop = heapq.heappop
        while wslots:
            s = wslots[0]
            if queue and (queue[0][0] >> _WHEEL_SHIFT) < s:
                # The heap head fires before any wheel entry.
                break
            heappop(wslots)
            lst = wheel[s & _WHEEL_MASK]
            self._wheel_count -= len(lst)
            for e in lst:
                heappush(queue, e)
            lst.clear()
            if s > self._wslot:
                self._wslot = s

    def _ff_wslot(self, t: int) -> None:
        """Fast-forward the slot cursor to ``t`` (clock jumped to a
        deadline), dumping any slots passed over into the heap."""
        target = t >> _WHEEL_SHIFT
        if target <= self._wslot:
            return
        wslots = self._wslots
        if wslots:
            queue = self._queue
            wheel = self._wheel
            while wslots and wslots[0] <= target:
                s = heapq.heappop(wslots)
                lst = wheel[s & _WHEEL_MASK]
                self._wheel_count -= len(lst)
                for e in lst:
                    heapq.heappush(queue, e)
                lst.clear()
        self._wslot = target

    # -- shard-coordinator support ------------------------------------

    def next_event_time(self) -> Optional[int]:
        """Earliest pending entry's time, or None when the queue is empty.

        The shard coordinator (:mod:`repro.sim.shard`) uses this as the
        conservative horizon for chain replay: parked chain wakeups live
        *outside* the queue tiers, so the answer is exactly "when does
        the next engine-scheduled event fire".  Cancelled heads are
        popped (they would be skipped by the run loops anyway) and due
        wheel slots are dumped so the heap head is authoritative.
        """
        if self._nowq:
            return self.now
        queue = self._queue
        heappop = heapq.heappop
        while True:
            if self._wheel_count:
                self._advance_wheel()
            while queue and queue[0][2] is None:
                heappop(queue)
            if queue or not self._wheel_count:
                break
        return queue[0][0] if queue else None

    def advance_to(self, t: int) -> None:
        """Jump the clock forward to ``t`` without dispatching.

        Only the shard coordinator calls this, and only for times it
        has proven quiescent (strictly before :meth:`next_event_time`);
        the wheel cursor is fast-forwarded exactly as the run loops do
        when they overshoot to a deadline.
        """
        if t < self.now:
            raise SimulationError(
                f"advance_to({t}) would move time backwards "
                f"(now={self.now})")
        self.now = t
        if self._wheel_on:
            self._ff_wslot(t)

    # -- dispatch -----------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: int = 200_000_000) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        if self._prof is not None:
            return self._run_prof(until, max_events)
        if not self._wheel_on:
            return self._run_heap(until, max_events)
        processed = 0
        queue = self._queue
        nowq = self._nowq
        heappop = heapq.heappop
        popleft = nowq.popleft
        now = self.now
        while True:
            if nowq:
                # Same-instant batch: interleave with heap entries at the
                # same instant by seq (an entry scheduled earlier with a
                # positive delay for this exact time must fire first).
                e0 = nowq[0]
                if queue and queue[0][0] == now and queue[0][1] < e0[1]:
                    entry = heappop(queue)
                else:
                    entry = popleft()
                fn = entry[2]
                if fn is None:
                    continue
                fn(*entry[3])
                processed += 1
                if processed > max_events:
                    self.events_processed += processed
                    raise SimulationError(
                        "event budget exhausted; likely livelock")
                continue
            if self._wheel_count:
                self._advance_wheel()
            if not queue:
                break
            # Pop first, push back on overshoot: the push-back happens
            # at most once per run() call, while peek-then-pop paid an
            # extra queue[0] index on every event.
            entry = heappop(queue)
            t = entry[0]
            if until is not None and t > until:
                heapq.heappush(queue, entry)
                self.now = until
                self._ff_wslot(until)
                self.events_processed += processed
                return
            fn = entry[2]
            if fn is None:
                continue
            ts = t >> _WHEEL_SHIFT
            if ts > self._wslot:
                # Safe: _advance_wheel ran just above, so either the
                # wheel is empty or the head was within the drained span.
                self._wslot = ts
            self.now = now = t
            fn(*entry[3])
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError("event budget exhausted; likely livelock")
        self.events_processed += processed
        if until is not None:
            self.now = until
            self._ff_wslot(until)

    def _run_heap(self, until: Optional[int], max_events: int) -> None:
        """Classic single-heap dispatch (HIVE_WHEEL=0 path)."""
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        if until is None:
            while queue:
                entry = heappop(queue)
                if entry[2] is None:
                    continue
                self.now = entry[0]
                entry[2](*entry[3])
                processed += 1
                if processed > max_events:
                    self.events_processed += processed
                    raise SimulationError(
                        "event budget exhausted; likely livelock")
            self.events_processed += processed
            return
        while queue:
            # Pop first, push back on overshoot: the push-back happens at
            # most once per run() call, while the peek-then-pop form paid
            # an extra queue[0] index on every event.
            entry = heappop(queue)
            if entry[2] is None:
                continue
            t = entry[0]
            if t > until:
                heapq.heappush(queue, entry)
                self.now = until
                self.events_processed += processed
                return
            self.now = t
            entry[2](*entry[3])
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError("event budget exhausted; likely livelock")
        self.events_processed += processed
        self.now = until

    def run_until_event(self, event: "Event",
                        deadline: Optional[int] = None,
                        max_events: int = 200_000_000) -> bool:
        """Process events until ``event`` triggers; returns True if it did.

        Unlike :meth:`run`, this stops as soon as the condition is met,
        which matters when perpetual background processes (clock ticks,
        monitors) would otherwise keep the queue busy to the deadline.
        """
        if self._prof is not None:
            return self._run_until_event_prof(event, deadline, max_events)
        if not self._wheel_on:
            return self._run_until_event_heap(event, deadline, max_events)
        processed = 0
        queue = self._queue
        nowq = self._nowq
        heappop = heapq.heappop
        popleft = nowq.popleft
        now = self.now
        while not event._triggered:
            if nowq:
                e0 = nowq[0]
                if queue and queue[0][0] == now and queue[0][1] < e0[1]:
                    entry = heappop(queue)
                else:
                    entry = popleft()
                fn = entry[2]
                if fn is None:
                    continue
                fn(*entry[3])
                processed += 1
                if processed > max_events:
                    self.events_processed += processed
                    raise SimulationError(
                        "event budget exhausted; likely livelock")
                continue
            if self._wheel_count:
                self._advance_wheel()
            if not queue:
                break
            entry = heappop(queue)
            t = entry[0]
            if deadline is not None and t > deadline:
                heapq.heappush(queue, entry)
                self.now = deadline
                self._ff_wslot(deadline)
                break
            fn = entry[2]
            if fn is None:
                continue
            ts = t >> _WHEEL_SHIFT
            if ts > self._wslot:
                self._wslot = ts
            self.now = now = t
            fn(*entry[3])
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError("event budget exhausted; likely livelock")
        self.events_processed += processed
        return event._triggered

    def _run_until_event_heap(self, event: "Event",
                              deadline: Optional[int],
                              max_events: int) -> bool:
        processed = 0
        queue = self._queue
        while queue and not event._triggered:
            entry = queue[0]
            if entry[2] is None:
                heapq.heappop(queue)
                continue
            t = entry[0]
            if deadline is not None and t > deadline:
                self.now = deadline
                break
            heapq.heappop(queue)
            self.now = t
            entry[2](*entry[3])
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError("event budget exhausted; likely livelock")
        self.events_processed += processed
        return event._triggered

    # -- profiled dispatch (HIVE_PROFILE=1) ---------------------------

    def _prof_category(self, fn: Callable) -> str:
        """Subsystem bucket for a dispatched callback, resolved BEFORE
        the call (a Timeout's waiter list is consumed by ``_expire``)."""
        owner = getattr(fn, "__self__", None)
        if type(owner) is Timeout:
            cbs = owner._callbacks
            if cbs:
                waiter = getattr(cbs[0], "__self__", None)
                if waiter is not None:
                    return self._prof.category(waiter.name)
            return "timer"
        if owner is not None:
            name = getattr(owner, "name", "")
            if name:
                return self._prof.category(name)
        return "engine"

    def _run_prof(self, until: Optional[int], max_events: int) -> None:
        """Profiled twin of :meth:`run`.

        With the wheel off, the nowq and wheel tiers are simply never
        occupied and this loop degenerates to heap-only dispatch in the
        same order as :meth:`_run_heap`, so one twin serves both modes.
        Kept separate from the unprofiled loops so they pay nothing for
        the instrumentation (a per-event guard would cost ~2% alone).
        """
        prof = self._prof
        perf = time.perf_counter
        walls = prof.subsystem_wall_s
        category = self._prof_category
        processed = 0
        ep_start = self.events_processed
        queue = self._queue
        nowq = self._nowq
        heappop = heapq.heappop
        popleft = nowq.popleft
        now = self.now
        try:
            while True:
                if nowq:
                    e0 = nowq[0]
                    if queue and queue[0][0] == now and queue[0][1] < e0[1]:
                        entry = heappop(queue)
                    else:
                        entry = popleft()
                    fn = entry[2]
                    if fn is None:
                        continue
                    cat = category(fn)
                    t0 = perf()
                    fn(*entry[3])
                    walls[cat] = walls.get(cat, 0.0) + (perf() - t0)
                    prof.nowq_dispatches += 1
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            "event budget exhausted; likely livelock")
                    continue
                if self._wheel_count:
                    before = self._wheel_count
                    self._advance_wheel()
                    prof.wheel_routed += before - self._wheel_count
                if not queue:
                    break
                entry = heappop(queue)
                t = entry[0]
                if until is not None and t > until:
                    heapq.heappush(queue, entry)
                    self.now = until
                    before = self._wheel_count
                    self._ff_wslot(until)
                    prof.wheel_routed += before - self._wheel_count
                    return
                fn = entry[2]
                if fn is None:
                    continue
                ts = t >> _WHEEL_SHIFT
                if ts > self._wslot:
                    self._wslot = ts
                self.now = now = t
                cat = category(fn)
                t0 = perf()
                fn(*entry[3])
                walls[cat] = walls.get(cat, 0.0) + (perf() - t0)
                prof.heap_dispatches += 1
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        "event budget exhausted; likely livelock")
            if until is not None:
                self.now = until
                before = self._wheel_count
                self._ff_wslot(until)
                prof.wheel_routed += before - self._wheel_count
        finally:
            # During the loop only Timeout._expire's inline fast path
            # touched events_processed; the delta is exactly the inline
            # dispatch count.
            prof.inline_dispatches += self.events_processed - ep_start
            self.events_processed += processed

    def _run_until_event_prof(self, event: "Event",
                              deadline: Optional[int],
                              max_events: int) -> bool:
        """Profiled twin of :meth:`run_until_event` (both wheel modes)."""
        prof = self._prof
        perf = time.perf_counter
        walls = prof.subsystem_wall_s
        category = self._prof_category
        processed = 0
        ep_start = self.events_processed
        queue = self._queue
        nowq = self._nowq
        heappop = heapq.heappop
        popleft = nowq.popleft
        now = self.now
        try:
            while not event._triggered:
                if nowq:
                    e0 = nowq[0]
                    if queue and queue[0][0] == now and queue[0][1] < e0[1]:
                        entry = heappop(queue)
                    else:
                        entry = popleft()
                    fn = entry[2]
                    if fn is None:
                        continue
                    cat = category(fn)
                    t0 = perf()
                    fn(*entry[3])
                    walls[cat] = walls.get(cat, 0.0) + (perf() - t0)
                    prof.nowq_dispatches += 1
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            "event budget exhausted; likely livelock")
                    continue
                if self._wheel_count:
                    before = self._wheel_count
                    self._advance_wheel()
                    prof.wheel_routed += before - self._wheel_count
                if not queue:
                    break
                entry = heappop(queue)
                t = entry[0]
                if deadline is not None and t > deadline:
                    heapq.heappush(queue, entry)
                    self.now = deadline
                    before = self._wheel_count
                    self._ff_wslot(deadline)
                    prof.wheel_routed += before - self._wheel_count
                    break
                fn = entry[2]
                if fn is None:
                    continue
                ts = t >> _WHEEL_SHIFT
                if ts > self._wslot:
                    self._wslot = ts
                self.now = now = t
                cat = category(fn)
                t0 = perf()
                fn(*entry[3])
                walls[cat] = walls.get(cat, 0.0) + (perf() - t0)
                prof.heap_dispatches += 1
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        "event budget exhausted; likely livelock")
        finally:
            prof.inline_dispatches += self.events_processed - ep_start
            self.events_processed += processed
        return event._triggered

    def run_until_complete(self, proc: "Process", deadline: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes, returning its value (raising on failure)."""
        self.run(until=deadline)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by deadline "
                f"{deadline} (now={self.now})"
            )
        if not proc.ok:
            raise proc._value
        return proc.value

    # -- factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        # Inlined reinit + schedule: one pooled timeout is created per
        # process wakeup, the hottest allocation site in the simulation.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = pool.pop()
        if self.trace_names:
            t.name = f"timeout({delay})"
        t.delay = delay
        t._callbacks = []
        t._triggered = False
        t._cb_seen = 0
        # (_ok is still True and _value is overwritten at expiry: only
        # successfully-expired timeouts are ever pooled, and .value
        # raises until the timeout triggers.)
        self._seq = seq = self._seq + 1
        tt = self.now + delay
        entry = [tt, seq, t._expire_cb, _NONE_ARGS if value is None else (value,)]
        t._entry = entry
        if self._wheel_on:
            if delay == 0:
                self._nowq.append(entry)
            else:
                slot = tt >> _WHEEL_SHIFT
                off = slot - self._wslot
                if _WHEEL_NEAR < off < _WHEEL_SLOTS:
                    lst = self._wheel[slot & _WHEEL_MASK]
                    if not lst:
                        heapq.heappush(self._wslots, slot)
                    lst.append(entry)
                    self._wheel_count += 1
                else:
                    heapq.heappush(self._queue, entry)
        else:
            heapq.heappush(self._queue, entry)
        return t

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process
