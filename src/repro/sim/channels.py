"""Typed intercell channels: every cross-cell interaction, enumerated.

Hive's containment argument rests on cells interacting only through a
small set of hardware mechanisms — RPC/SIPS messages, remote coherence
misses, and firewall status changes.  This module makes that seam
explicit in the simulator: when a :class:`CellChannels` instance is
attached to the hardware layer (``coherence.channels`` /
``sips.channels`` / the firewall manager's machine hook), every
intercell operation is *published* as a typed, serializable
:class:`ChannelOp` on the directed channel for its (source cell,
destination cell) pair.

The sharded engine (:mod:`repro.sim.shard`) consumes these records at
its conservative window barriers: ops are batched by window index
(window width = ``HardwareParams.min_intercell_latency_ns()``), each
batch is validated against the lookahead invariant (no op may cross a
cell boundary faster than the minimum intercell latency — that is what
makes the window barrier conservative), and folded into a running
digest so two runs can be compared channel-op-for-channel-op, not just
counter-for-counter.

Publishing is a ``None``-checked hook exactly like the fault-provenance
tracer: a simulator without channels attached pays one attribute test
per *slow-path* operation and nothing on hit paths.  Cache hits never
cross a cell boundary, so they are not channel traffic by definition.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple

#: channel op kinds — the complete enumeration of intercell traffic
SIPS_REQUEST = "sips_request"
SIPS_REPLY = "sips_reply"
COH_READ_MISS = "coh_read_miss"
COH_WRITE_MISS = "coh_write_miss"
FW_GRANT = "fw_grant"
FW_REVOKE = "fw_revoke"

OP_KINDS = (SIPS_REQUEST, SIPS_REPLY, COH_READ_MISS, COH_WRITE_MISS,
            FW_GRANT, FW_REVOKE)


class ChannelOp:
    """One intercell operation: a plain, serializable record.

    ``time`` is the simulated send/issue time; ``latency_ns`` is how
    long the hardware takes to make the op visible at the destination
    (the quantity the conservative lookahead bounds from below).
    """

    __slots__ = ("kind", "src_cell", "dst_cell", "src_node", "dst_node",
                 "time", "latency_ns")

    def __init__(self, kind: str, src_cell: int, dst_cell: int,
                 src_node: int, dst_node: int, time: int,
                 latency_ns: int):
        self.kind = kind
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.src_node = src_node
        self.dst_node = dst_node
        self.time = time
        self.latency_ns = latency_ns

    def to_tuple(self) -> Tuple:
        """Stable, JSON-serializable wire form (also the digest key)."""
        return (self.kind, self.src_cell, self.dst_cell, self.src_node,
                self.dst_node, self.time, self.latency_ns)

    @classmethod
    def from_tuple(cls, t: Tuple) -> "ChannelOp":
        return cls(*t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ChannelOp {self.kind} cell{self.src_cell}->"
                f"cell{self.dst_cell} @{self.time}ns "
                f"lat={self.latency_ns}ns>")


class ChannelViolation(Exception):
    """An op crossed a cell boundary faster than the minimum intercell
    latency — the conservative window barrier would be unsound."""


class CellChannels:
    """All directed intercell channels for one machine.

    Construction needs the node->cell ownership map (cells are a kernel
    concept; the hardware publishers only know node ids) and the window
    width, which callers should take from
    ``HardwareParams.min_intercell_latency_ns()``.

    Ops between nodes of the *same* cell are intracell traffic and are
    not recorded — the channel set is exactly the containment boundary.
    """

    def __init__(self, node_to_cell: Dict[int, int], window_ns: int,
                 now_fn=None):
        if window_ns <= 0:
            raise ValueError(f"window width must be positive: {window_ns}")
        self.node_to_cell = dict(node_to_cell)
        self.window_ns = window_ns
        #: callable returning the current simulated time; publishers at
        #: the hardware layer have no simulator reference, so the clock
        #: is injected here (typically ``lambda: sim.now``).
        self.now_fn = now_fn or (lambda: 0)
        #: pending (undrained) ops per directed (src_cell, dst_cell) pair
        self.pending: Dict[Tuple[int, int], List[ChannelOp]] = {}
        self.ops_total = 0
        self.ops_by_kind: Dict[str, int] = {k: 0 for k in OP_KINDS}
        #: commutative digest (sum of per-op CRCs mod 2**64) — a cheap
        #: whole-run fingerprint two runs can compare directly.  Order-
        #: independent on purpose: sequential and sharded execution may
        #: dispatch ops tied at one instant in different relative order,
        #: but must publish the identical multiset.
        self.digest = 0
        #: lookahead-invariant violations observed (0 on a sound run)
        self.violations = 0
        self.strict = True

    # -- publishing (hardware-layer hooks) ----------------------------

    def publish(self, kind: str, src_node: int, dst_node: int,
                latency_ns: int) -> None:
        """Record one intercell op; no-op for intracell traffic."""
        n2c = self.node_to_cell
        src_cell = n2c.get(src_node)
        dst_cell = n2c.get(dst_node)
        if src_cell is None or dst_cell is None or src_cell == dst_cell:
            return
        if latency_ns < self.window_ns:
            # The whole point of the conservative barrier: nothing may
            # out-run the lookahead.  A violation here means the window
            # width was derived from the wrong parameter set.
            self.violations += 1
            if self.strict:
                raise ChannelViolation(
                    f"{kind} cell{src_cell}->cell{dst_cell} latency "
                    f"{latency_ns}ns under lookahead {self.window_ns}ns")
        op = ChannelOp(kind, src_cell, dst_cell, src_node, dst_node,
                       self.now_fn(), latency_ns)
        self.pending.setdefault((src_cell, dst_cell), []).append(op)
        self.ops_total += 1
        self.ops_by_kind[kind] += 1
        self.digest = (self.digest
                       + zlib.crc32(repr(op.to_tuple()).encode())) \
            & 0xFFFFFFFFFFFFFFFF

    # convenience wrappers with the publisher-side vocabulary ---------

    def sips(self, src_node: int, dst_node: int, kind: str,
             latency_ns: int) -> None:
        self.publish(SIPS_REQUEST if kind == "request" else SIPS_REPLY,
                     src_node, dst_node, latency_ns)

    def coherence_miss(self, src_node: int, home_node: int, write: bool,
                       latency_ns: int) -> None:
        self.publish(COH_WRITE_MISS if write else COH_READ_MISS,
                     src_node, home_node, latency_ns)

    def firewall(self, src_node: int, dst_node: int, grant: bool,
                 latency_ns: int) -> None:
        self.publish(FW_GRANT if grant else FW_REVOKE,
                     src_node, dst_node, latency_ns)

    # -- barrier-side consumption -------------------------------------

    def window_of(self, time: int) -> int:
        return time // self.window_ns

    def drain(self) -> Dict[Tuple[int, int], List[ChannelOp]]:
        """Take all pending batches (the window-barrier exchange)."""
        batches, self.pending = self.pending, {}
        return batches

    def drain_serialized(self) -> Dict[str, List[Tuple]]:
        """Wire form of :meth:`drain`: JSON-safe keys and op tuples.

        This is the payload a worker-process executor ships across the
        barrier; in-process shard lanes consume :meth:`drain` directly.
        """
        return {f"{src}->{dst}": [op.to_tuple() for op in ops]
                for (src, dst), ops in sorted(self.drain().items())}

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic summary for bench rows and equivalence gates."""
        return {
            "window_ns": self.window_ns,
            "ops_total": self.ops_total,
            "ops_by_kind": {k: v for k, v in
                            sorted(self.ops_by_kind.items()) if v},
            "digest": self.digest,
            "violations": self.violations,
        }


def attach_channels(machine, registry, window_ns: int,
                    sim=None) -> CellChannels:
    """Wire a :class:`CellChannels` into a booted machine.

    ``registry`` provides the node->cell ownership map; the hook slots
    (``coherence.channels``, ``sips.channels``, ``machine.channels``)
    are plain attributes checked against None on the slow paths.
    """
    node_to_cell = {}
    for cell_id in registry.cells:
        for node in registry.nodes_of(cell_id):
            node_to_cell[node] = cell_id
    channels = CellChannels(
        node_to_cell, window_ns,
        now_fn=(lambda: sim.now) if sim is not None else None)
    machine.channels = channels
    machine.coherence.channels = channels
    machine.sips.channels = channels
    return channels
