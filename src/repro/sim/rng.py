"""Named deterministic random streams.

Every source of randomness in the reproduction (workload think times, disk
request addresses, fault-injection sites, cache-placement noise) draws from
its own named stream so that adding randomness to one subsystem never
perturbs another — a property the SimOS methodology relied on for
deterministic replay of fault scenarios.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence


class RandomStreams:
    """A family of independent :class:`random.Random` streams keyed by name.

    Streams are derived from a root seed and the stream name, so the same
    ``(seed, name)`` pair always yields the same sequence regardless of the
    order in which streams are first used.
    """

    def __init__(self, seed: int = 1995):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        st = self._streams.get(name)
        if st is None:
            # Stable derivation: hash of name folded with root seed.
            derived = (self.seed * 1_000_003) ^ _stable_hash(name)
            st = random.Random(derived)
            self._streams[name] = st
        return st

    # Convenience passthroughs --------------------------------------

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq: Sequence):
        return self.stream(name).choice(seq)

    def shuffle(self, name: str, seq: list) -> None:
        self.stream(name).shuffle(seq)

    def random(self, name: str) -> float:
        return self.stream(name).random()


def _stable_hash(text: str) -> int:
    """A seed-stable string hash (Python's ``hash`` is salted per-run)."""
    h = 2166136261
    for ch in text.encode("utf-8"):
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h
