"""Event tracing: a SimOS-style timeline of what the system did.

The paper credits SimOS's deterministic replay for making the fault-
containment work debuggable ("makes it straightforward to analyze the
complex series of events that follow after a software fault").  This
module provides the equivalent observability: subsystems emit typed
events into a :class:`TraceLog`, which can be filtered and rendered as a
timeline.

Tracing is opt-in (a null default keeps the hot paths free of overhead)
and deterministic like everything else in the engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

#: well-known categories used by the built-in instrumentation
CAT_FAULT = "fault"          # hardware fault injections
CAT_DETECT = "detect"        # failure hints
CAT_AGREE = "agree"          # agreement rounds
CAT_RECOVER = "recover"      # recovery phases
CAT_SHARING = "sharing"      # export/import/borrow traffic
CAT_PROC = "proc"            # process lifecycle


@dataclass
class TraceEvent:
    time_ns: int
    category: str
    cell: Optional[int]
    message: str

    def render(self) -> str:
        where = f"cell {self.cell}" if self.cell is not None else "system"
        return (f"[{self.time_ns / 1e6:12.3f} ms] {self.category:>8} "
                f"{where:>8}: {self.message}")


class TraceLog:
    """A bounded, filterable event log (ring buffer keeping the newest).

    At capacity the oldest event is evicted and ``dropped`` incremented:
    a long run keeps the *end* of the timeline — the part that explains
    the failure under investigation — rather than silently going quiet.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: int = 100_000):
        self.enabled_categories = (set(categories)
                                   if categories is not None else None)
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return (self.enabled_categories is None
                or category in self.enabled_categories)

    def emit(self, time_ns: int, category: str, cell: Optional[int],
             message: str) -> None:
        if not self.wants(category):
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1  # the deque evicts the oldest event
        self.events.append(TraceEvent(time_ns, category, cell, message))

    # -- querying -------------------------------------------------------

    def select(self, category: Optional[str] = None,
               cell: Optional[int] = None,
               since_ns: int = 0) -> List[TraceEvent]:
        return [ev for ev in self.events
                if (category is None or ev.category == category)
                and (cell is None or ev.cell == cell)
                and ev.time_ns >= since_ns]

    def render(self, **kwargs) -> str:
        return "\n".join(ev.render() for ev in self.select(**kwargs))

    def counts_by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.category] = out.get(ev.category, 0) + 1
        return out


class NullTrace:
    """No-op trace used by default (zero overhead on hot paths)."""

    def wants(self, category: str) -> bool:
        return False

    def emit(self, *args, **kwargs) -> None:
        pass


NULL_TRACE = NullTrace()


def attach_tracing(system, categories: Optional[Iterable[str]] = None
                   ) -> TraceLog:
    """Instrument a booted HiveSystem with a trace log.

    Hooks the fault injector, failure detectors, recovery coordinator,
    and process lifecycle — all through stable observer interfaces
    (``detector.observers``, ``panic_hooks``, ``injector.observers``,
    ``coordinator.observers``, ``registry.register_observers``), so the
    instrumented objects are never rebound.  Returns the log; call again
    for a fresh one.
    """
    log = TraceLog(categories)
    sim = system.sim

    def on_injection(record) -> None:
        log.emit(record.time_ns, CAT_FAULT, record.node_id,
                 f"injected {record.kind} (trigger={record.trigger})")

    system.injector.observers.append(on_injection)

    def on_recovery(record) -> None:
        log.emit(record.recovery_done_ns, CAT_RECOVER, None,
                 f"round {record.round_id} done: dead="
                 f"{sorted(record.dead_cells)}, "
                 f"{record.discarded_pages} pages discarded, "
                 f"{record.files_lost} files lost, "
                 f"{record.killed_processes} processes killed")

    system.coordinator.observers.append(on_recovery)

    def wire_cell(cell) -> None:
        def on_hint(hint) -> None:
            log.emit(hint.time_ns, CAT_DETECT, hint.reporter,
                     f"suspects cell {hint.suspect}: {hint.reason}")

        cell.detector.observers.append(on_hint)

        def on_panic(reason, _cell_id=cell.kernel_id) -> None:
            log.emit(sim.now, CAT_PROC, _cell_id, f"PANIC: {reason}")

        cell.panic_hooks.append(on_panic)

    # Wire each live cell's hint path; future cells (reintegration) are
    # wired through the registry's registration observer list.
    for cell in system.cells:
        wire_cell(cell)
    system.registry.register_observers.append(wire_cell)
    return log
