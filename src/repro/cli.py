"""Command-line interface: run workloads and experiments without code.

Usage::

    python -m repro run pmake --cells 4
    python -m repro run ocean --irix
    python -m repro micro
    python -m repro inject hw_random --trials 3
    python -m repro inject sw_cow_tree --agreement voting

``run`` executes one of the paper's workloads on a chosen configuration
and prints the elapsed simulated time and health counters; ``micro``
prints the microbenchmark anchors against the paper's values; ``inject``
runs Table 7.4 fault-injection trials and reports containment.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.faultexp import (
    ALL_SCENARIOS,
    PAPER_TABLE_7_4,
    FaultExperimentRunner,
)
from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive, boot_irix
from repro.core.invariants import check_system
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.workloads import (
    OceanWorkload,
    Platform,
    PmakeWorkload,
    RaytraceWorkload,
)

WORKLOADS = {
    "pmake": PmakeWorkload,
    "ocean": OceanWorkload,
    "raytrace": RaytraceWorkload,
}


def _build_platform(args) -> Platform:
    params = HardwareParams(num_nodes=args.nodes,
                            cpus_per_node=args.cpus_per_node)
    sim = Simulator()
    if args.irix:
        kernel = boot_irix(sim, machine_config=MachineConfig(
            params=params, seed=args.seed, firewall_enabled=False))
        target = kernel
    else:
        target = boot_hive(sim, num_cells=args.cells,
                           machine_config=MachineConfig(params=params,
                                                        seed=args.seed),
                           agreement=args.agreement,
                           with_wax=args.wax)
    namespace = (target.namespace if not args.irix
                 else target.namespace)
    namespace.mount("/tmp", 1 % args.nodes)
    namespace.mount("/usr", 2 % args.nodes)
    namespace.mount("/results", 0)
    return Platform(target)


def cmd_run(args) -> int:
    workload_cls = WORKLOADS[args.workload]
    platform = _build_platform(args)
    config = "IRIX" if args.irix else f"{args.cells}-cell Hive"
    print(f"running {args.workload} on {config} "
          f"({args.nodes} nodes, seed {args.seed})...")
    result = workload_cls().run(platform)
    print(f"elapsed (simulated) : {result.elapsed_s:.3f} s")
    print(f"jobs completed      : {result.jobs_completed}")
    print(f"jobs failed         : {result.jobs_failed}")
    print(f"outputs verified    : {result.outputs_ok}")
    if not args.irix:
        hive = platform.target
        print(f"remote page faults  : "
              f"{hive.total_counter('faults.remote')}")
        problems = check_system(hive)
        print(f"invariant check     : "
              f"{'clean' if not problems else problems}")
        if problems:
            return 1
    return 0 if result.outputs_ok and result.jobs_failed == 0 else 1


def cmd_micro(args) -> int:
    from repro.workloads.micro import (
        boot_two_cell,
        measure_careful_reference,
        measure_file_ops,
        measure_page_fault,
        measure_rpc,
    )

    table = ComparisonTable("Microbenchmark anchors (paper vs measured)")
    local = measure_page_fault(boot_two_cell(args.seed), remote=False,
                               nfaults=128)
    remote = measure_page_fault(boot_two_cell(args.seed), remote=True,
                                nfaults=128)
    table.add("local page fault", 6.9, round(local["mean_ns"] / 1e3, 2),
              "us")
    table.add("remote page fault", 50.7,
              round(remote["mean_ns"] / 1e3, 2), "us")
    system = boot_two_cell(args.seed)
    table.add("null RPC", 7.2,
              round(measure_rpc(system)["mean_ns"] / 1e3, 2), "us")
    table.add("null queued RPC", 34.0,
              round(measure_rpc(system, queued=True)["mean_ns"] / 1e3, 2),
              "us")
    table.add("careful reference", 1.16,
              round(measure_careful_reference(system)["mean_ns"] / 1e3, 3),
              "us")
    ops = measure_file_ops(boot_two_cell(args.seed), remote=False)
    table.add("open (local)", 148, round(ops["open_ns"] / 1e3, 1), "us")
    table.add("4 MB read (local)", 65.0,
              round(ops["read4mb_ns"] / 1e6, 1), "ms")
    table.print()
    return 0


def cmd_inject(args) -> int:
    runner = FaultExperimentRunner(agreement=args.agreement)
    scenarios = (list(ALL_SCENARIOS) if args.scenario == "all"
                 else [args.scenario])
    failures = 0
    for scenario in scenarios:
        workload, _n, avg, mx = PAPER_TABLE_7_4[scenario]
        summary = runner.run_scenario(scenario, args.trials,
                                      seed_base=args.seed)
        ok = summary.contained_count == len(summary.trials)
        failures += 0 if ok else 1
        print(f"{scenario} ({workload}): "
              f"contained {summary.contained_count}/{len(summary.trials)}, "
              f"detection avg {summary.avg_latency_ms:.1f} ms / "
              f"max {summary.max_latency_ms:.1f} ms "
              f"(paper {avg}/{mx} ms)")
        for trial in summary.trials:
            if not trial.contained:
                print(f"   NOT CONTAINED (seed {trial.seed}): "
                      f"{trial.notes}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hive (SOSP 1995) reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=1995)

    p_run = sub.add_parser("run", help="run a paper workload")
    p_run.add_argument("workload", choices=sorted(WORKLOADS))
    p_run.add_argument("--cells", type=int, default=4)
    p_run.add_argument("--nodes", type=int, default=4)
    p_run.add_argument("--cpus-per-node", type=int, default=1)
    p_run.add_argument("--irix", action="store_true",
                       help="run on the IRIX baseline instead of Hive")
    p_run.add_argument("--wax", action="store_true",
                       help="boot with the Wax policy process")
    p_run.add_argument("--agreement", choices=["voting", "oracle"],
                       default="voting")
    common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_micro = sub.add_parser("micro",
                             help="print the microbenchmark anchors")
    common(p_micro)
    p_micro.set_defaults(fn=cmd_micro)

    p_inject = sub.add_parser("inject",
                              help="run Table 7.4 fault-injection trials")
    p_inject.add_argument("scenario",
                          choices=sorted(ALL_SCENARIOS) + ["all"])
    p_inject.add_argument("--trials", type=int, default=1)
    p_inject.add_argument("--agreement", choices=["voting", "oracle"],
                          default="oracle")
    common(p_inject)
    p_inject.set_defaults(fn=cmd_inject)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
