"""Command-line interface: run workloads and experiments without code.

Usage::

    python -m repro run pmake --cells 4
    python -m repro run ocean --irix
    python -m repro run pmake --telemetry-out /tmp/telemetry
    python -m repro micro
    python -m repro inject hw_random --trials 3
    python -m repro inject sw_cow_tree --agreement voting
    python -m repro trace pmake
    python -m repro metrics raytrace --format json
    python -m repro report --trials 2 --parallel 4
    python -m repro report --check --out report.md

``run`` executes one of the paper's workloads on a chosen configuration
and prints the elapsed simulated time and health counters; ``micro``
prints the microbenchmark anchors against the paper's values; ``inject``
runs Table 7.4 fault-injection trials and reports containment; ``trace``
runs a workload under the flight recorder and prints the span summary;
``metrics`` prints the per-cell per-subsystem metrics snapshot;
``report`` runs (or loads) a fault-injection campaign and renders the
campaign observatory report — per-cell availability, recovery-latency
percentiles, hot-path tier hit rates, and the committed
``BENCH_pr*.json`` throughput trajectory with regression deltas.
``--telemetry-out DIR`` on run/inject/micro additionally writes the
machine-readable artifacts (JSONL spans, Chrome trace, metrics snapshot,
fault timeline, ``BENCH_pr2.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.faultexp import (
    ALL_SCENARIOS,
    PAPER_TABLE_7_4,
    FaultExperimentRunner,
)
from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive, boot_irix
from repro.core.invariants import check_system
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.obs import (
    attach_flight_recorder,
    load_jsonl,
    open_artifact,
    render_fault_timeline,
    render_snapshot,
    snapshot_system,
    write_bench_summary,
    write_telemetry,
)
from repro.sim.engine import Simulator
from repro.workloads import (
    OceanWorkload,
    Platform,
    PmakeWorkload,
    RaytraceWorkload,
)

WORKLOADS = {
    "pmake": PmakeWorkload,
    "ocean": OceanWorkload,
    "raytrace": RaytraceWorkload,
}


def _build_platform(args) -> Platform:
    params = HardwareParams(num_nodes=args.nodes,
                            cpus_per_node=args.cpus_per_node)
    sim = Simulator()
    if args.irix:
        kernel = boot_irix(sim, machine_config=MachineConfig(
            params=params, seed=args.seed, firewall_enabled=False))
        target = kernel
    else:
        target = boot_hive(sim, num_cells=args.cells,
                           machine_config=MachineConfig(params=params,
                                                        seed=args.seed),
                           agreement=args.agreement,
                           with_wax=args.wax)
    namespace = target.namespace
    namespace.mount("/tmp", 1 % args.nodes)
    namespace.mount("/usr", 2 % args.nodes)
    namespace.mount("/results", 0)
    return Platform(target)


def cmd_run(args) -> int:
    workload_cls = WORKLOADS[args.workload]
    if args.telemetry_out and args.irix:
        print("error: --telemetry-out requires a Hive configuration "
              "(the flight recorder instruments cells)", file=sys.stderr)
        return 2
    platform = _build_platform(args)
    recorder = None
    if args.telemetry_out:
        recorder = attach_flight_recorder(platform.target)
    config = "IRIX" if args.irix else f"{args.cells}-cell Hive"
    print(f"running {args.workload} on {config} "
          f"({args.nodes} nodes, seed {args.seed})...")
    result = workload_cls().run(platform)
    print(f"elapsed (simulated) : {result.elapsed_s:.3f} s")
    print(f"jobs completed      : {result.jobs_completed}")
    print(f"jobs failed         : {result.jobs_failed}")
    print(f"outputs verified    : {result.outputs_ok}")
    if not args.irix:
        hive = platform.target
        print(f"remote page faults  : "
              f"{hive.total_counter('faults.remote')}")
        problems = check_system(hive)
        print(f"invariant check     : "
              f"{'clean' if not problems else problems}")
        if problems:
            return 1
    if recorder is not None:
        bench = {
            "command": "run",
            "workload": args.workload,
            "cells": args.cells,
            "nodes": args.nodes,
            "seed": args.seed,
            "elapsed_s": result.elapsed_s,
            "jobs_completed": result.jobs_completed,
            "jobs_failed": result.jobs_failed,
            "outputs_ok": result.outputs_ok,
            "spans": len(recorder.spans),
            "events": len(recorder.events),
            "spans_dropped": recorder.spans_dropped,
            "events_dropped": recorder.events_dropped,
        }
        paths = write_telemetry(args.telemetry_out, recorder,
                                platform.target, bench=bench,
                                compress=args.telemetry_compress)
        print(f"telemetry written   : {args.telemetry_out} "
              f"({', '.join(sorted(paths))})")
    return 0 if result.outputs_ok and result.jobs_failed == 0 else 1


def _run_traced(args):
    """Boot a Hive, attach the recorder, run the workload; no fault."""
    workload_cls = WORKLOADS[args.workload]
    platform = _build_platform(args)
    recorder = attach_flight_recorder(platform.target)
    result = workload_cls().run(platform)
    return platform.target, recorder, result


def _trace_from_spans(args) -> int:
    """Summarize a saved ``spans.jsonl`` / ``spans.jsonl.gz`` artifact.

    Reads go through :func:`repro.obs.open_artifact`, so gzipped
    telemetry (``--telemetry-compress``) loads exactly like plain files.
    """
    records = load_jsonl(args.from_spans)
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    counts = {}
    for rec in records:
        counts[rec["category"]] = counts.get(rec["category"], 0) + 1
    print(f"{args.from_spans}: {len(spans)} spans, "
          f"{len(events)} events")
    print()
    print("records by subsystem:")
    for category in sorted(counts):
        print(f"  {category:>10}: {counts[category]}")
    by_name = {}
    for span in spans:
        entry = by_name.setdefault(span["name"], [0, 0])
        entry[0] += 1
        if span.get("end_ns") is not None:
            entry[1] += span["end_ns"] - span["start_ns"]
    print()
    print("spans by name (count, total simulated time):")
    for name in sorted(by_name):
        count, total = by_name[name]
        print(f"  {name:<22} {count:>7}  {total / 1e6:12.3f} ms")
    return 0


def cmd_trace(args) -> int:
    if args.from_spans:
        return _trace_from_spans(args)
    system, recorder, result = _run_traced(args)
    counts = recorder.counts_by_category()
    print(f"{args.workload} on {args.cells}-cell Hive "
          f"(seed {args.seed}): {result.elapsed_s:.3f} s simulated, "
          f"{len(recorder.spans)} spans, {len(recorder.events)} events")
    print()
    print("records by subsystem:")
    for category in sorted(counts):
        print(f"  {category:>10}: {counts[category]}")
    by_name = {}
    for span in recorder.spans:
        entry = by_name.setdefault(span.name, [0, 0])
        entry[0] += 1
        if span.end_ns is not None:
            entry[1] += span.end_ns - span.start_ns
    print()
    print("spans by name (count, total simulated time):")
    for name in sorted(by_name):
        count, total = by_name[name]
        print(f"  {name:<22} {count:>7}  {total / 1e6:12.3f} ms")
    print()
    print(render_fault_timeline(recorder))
    if recorder.spans_dropped or recorder.events_dropped:
        print(f"(ring buffer dropped {recorder.spans_dropped} spans, "
              f"{recorder.events_dropped} events)")
    return 0


def cmd_metrics(args) -> int:
    system, recorder, result = _run_traced(args)
    snap = snapshot_system(system)
    if args.format == "json":
        import json

        # sort_keys gives a byte-stable key order for diffing/golden
        # files; the table renderer sorts internally already.
        print(json.dumps(snap, sort_keys=True, indent=2))
    else:
        print(render_snapshot(snap))
    return 0


def cmd_report(args) -> int:
    import json

    from repro.bench.parallel import run_inject_campaign
    from repro.bench.report import (
        campaign_report_json,
        check_campaign_report,
        load_bench_trajectory,
        render_campaign_report,
        trajectory_gate_warning,
    )

    if args.from_json:
        with open(args.from_json) as fh:
            payload = json.load(fh)
    else:
        scenarios = (list(ALL_SCENARIOS) if args.scenario == "all"
                     else [args.scenario])
        payload = run_inject_campaign(
            scenarios, trials=args.trials, seed_base=args.seed,
            workers=max(1, args.parallel), agreement=args.agreement,
            progress=args.progress)
    trajectory = load_bench_trajectory(args.bench_dir)
    if args.save_campaign:
        # "summaries" holds dataclass objects for the inject CLI; the
        # rest of the payload is JSON-safe and round-trips --from-json.
        safe = {k: v for k, v in payload.items() if k != "summaries"}
        with open(args.save_campaign, "w") as fh:
            json.dump(safe, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"campaign written    : {args.save_campaign}",
              file=sys.stderr)
    if args.format == "json":
        text = json.dumps(campaign_report_json(payload, trajectory),
                          sort_keys=True, indent=2) + "\n"
    else:
        text = render_campaign_report(payload, trajectory)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written      : {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    if args.check:
        # Fewer than two committed bench files (fresh checkout, first
        # PR) degrades to a warning — the other checks still gate.
        skip = trajectory_gate_warning(trajectory)
        if skip is not None:
            print(f"WARNING: {skip}", file=sys.stderr)
        problems = check_campaign_report(payload, trajectory)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("report check        : clean", file=sys.stderr)
    return 0


def cmd_audit(args) -> int:
    import json

    from repro.bench.parallel import run_inject_campaign
    from repro.obs import render_audit_markdown

    scenarios = (list(ALL_SCENARIOS) if args.scenario == "all"
                 else [args.scenario])
    payload = run_inject_campaign(
        scenarios, trials=args.trials, seed_base=args.seed,
        workers=max(1, args.parallel), agreement=args.agreement,
        progress=args.progress)
    for failure in payload.get("failures", []):
        print(f"FAILED trial {failure['scenario']!r} seed "
              f"{failure['seed']}:\n{failure['error']}", file=sys.stderr)
    audit = payload.get("audit")
    if audit is None:
        print("error: campaign produced no audit payload", file=sys.stderr)
        return 1
    if args.format == "json":
        text = json.dumps(audit, sort_keys=True, indent=2) + "\n"
    else:
        text = render_audit_markdown(audit)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"audit written       : {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    if args.trace_out:
        from repro.obs.export import audit_to_chrome_trace

        # open_artifact gzips transparently for .json.gz paths, so big
        # propagation DAGs can ship compressed.
        with open_artifact(args.trace_out, "w") as fh:
            json.dump(audit_to_chrome_trace(audit), fh, sort_keys=True)
            fh.write("\n")
        print(f"trace written       : {args.trace_out}", file=sys.stderr)
    summary = audit.get("summary", {})
    absorbed = summary.get("by_verdict", {}).get("absorbed", 0)
    print(f"containment audit   : {audit['verdict']} "
          f"({summary.get('near_misses', 0)} near misses, "
          f"{absorbed} absorbed)", file=sys.stderr)
    breach = audit["verdict"] == "breach" or absorbed > 0
    return 1 if breach or payload.get("failures") else 0


def cmd_micro(args) -> int:
    from repro.workloads.micro import collect_anchors

    anchors = collect_anchors(args.seed)
    table = ComparisonTable("Microbenchmark anchors (paper vs measured)")
    labels = {
        "local_page_fault": "local page fault",
        "remote_page_fault": "remote page fault",
        "null_rpc": "null RPC",
        "null_queued_rpc": "null queued RPC",
        "careful_reference": "careful reference",
        "open_local": "open (local)",
        "read_4mb_local": "4 MB read (local)",
    }
    for key, label in labels.items():
        entry = anchors[key]
        table.add(label, entry["paper"], entry["measured"], entry["unit"])
    table.print()
    if args.telemetry_out:
        import os
        os.makedirs(args.telemetry_out, exist_ok=True)
        bench = {"command": "micro", "seed": args.seed, "anchors": anchors}
        path = os.path.join(args.telemetry_out, "BENCH_pr2.json")
        write_bench_summary(path, bench)
        print(f"anchors written to {path}")
    return 0


def cmd_inject(args) -> int:
    if args.replay and not args.campaign:
        print("error: --replay requires --campaign (it sweeps fault "
              "seeds across campaign trials)", file=sys.stderr)
        return 2
    if args.campaign:
        return _cmd_inject_campaign(args)
    telemetry = {"recorder": None, "system": None}

    def on_boot(system) -> None:
        # Fresh recorder per trial so each telemetry dump is one trial.
        telemetry["recorder"] = attach_flight_recorder(system)
        telemetry["system"] = system

    runner = FaultExperimentRunner(
        agreement=args.agreement,
        on_boot=on_boot if args.telemetry_out else None)
    if args.snapshot:
        if args.telemetry_out:
            # The telemetry recorder must live in this process; forked
            # trials run in children, so the two are incompatible.
            print("note: --snapshot ignored with --telemetry-out "
                  "(recorder must observe trials in-process)")
        else:
            from repro.sim.snapshot import snapshot_enabled
            if snapshot_enabled():
                runner.make_image()
    scenarios = (list(ALL_SCENARIOS) if args.scenario == "all"
                 else [args.scenario])
    failures = 0
    scenario_payload = {}
    for scenario in scenarios:
        workload, _n, avg, mx = PAPER_TABLE_7_4[scenario]
        summary = runner.run_scenario(scenario, args.trials,
                                      seed_base=args.seed)
        ok = summary.contained_count == len(summary.trials)
        failures += 0 if ok else 1
        print(f"{scenario} ({workload}): "
              f"contained {summary.contained_count}/{len(summary.trials)}, "
              f"detection avg {summary.avg_latency_ms:.1f} ms / "
              f"max {summary.max_latency_ms:.1f} ms "
              f"(paper {avg}/{mx} ms)")
        for trial in summary.trials:
            if not trial.contained:
                print(f"   NOT CONTAINED (seed {trial.seed}): "
                      f"{trial.notes}")
        have_latencies = bool(summary.latencies_ms)
        scenario_payload[scenario] = {
            "workload": workload,
            "trials": len(summary.trials),
            "contained": summary.contained_count,
            "detection_avg_ms": (summary.avg_latency_ms
                                 if have_latencies else None),
            "detection_max_ms": (summary.max_latency_ms
                                 if have_latencies else None),
            "paper_avg_ms": avg,
            "paper_max_ms": mx,
            "latencies_ms": summary.latencies_ms,
        }
        if args.telemetry_out and telemetry["recorder"] is not None:
            import os
            out_dir = os.path.join(args.telemetry_out, scenario)
            write_telemetry(out_dir, telemetry["recorder"],
                            telemetry["system"],
                            compress=args.telemetry_compress)
            print(f"   telemetry (last trial) written to {out_dir}")
    if runner.image is not None and runner.image.forks:
        stats = runner.image.stats()
        fork_ms = stats["fork_wall_s_mean"] * 1000
        boot = stats["boot_wall_s"]
        amort = round(boot * 1000 / fork_ms, 1) if fork_ms else 0.0
        print(f"snapshot forks: {stats['forks']} trials at "
              f"{fork_ms:.1f} ms each vs {boot:.3f} s boot ({amort}x)")
    if args.telemetry_out:
        import os
        os.makedirs(args.telemetry_out, exist_ok=True)
        bench = {"command": "inject", "agreement": args.agreement,
                 "seed": args.seed, "scenarios": scenario_payload}
        write_bench_summary(
            os.path.join(args.telemetry_out, "BENCH_pr2.json"), bench)
    return 1 if failures else 0


def _cmd_inject_campaign(args) -> int:
    """``inject --campaign``: trials sharded over a process pool."""
    from repro.bench.parallel import run_inject_campaign

    scenarios = (list(ALL_SCENARIOS) if args.scenario == "all"
                 else [args.scenario])
    workers = max(1, args.parallel)
    print(f"fault-injection campaign: {', '.join(scenarios)} x "
          f"{args.trials} trials on {workers} workers "
          f"(agreement {args.agreement}, seed base {args.seed})")
    payload = run_inject_campaign(scenarios, trials=args.trials,
                                  seed_base=args.seed, workers=workers,
                                  agreement=args.agreement,
                                  telemetry_dir=args.telemetry_out,
                                  progress=args.progress,
                                  replay=args.replay,
                                  snapshot=args.snapshot)
    failures = len(payload.get("failures", []))
    for failure in payload.get("failures", []):
        print(f"FAILED trial {failure['scenario']!r} seed "
              f"{failure['seed']}:\n{failure['error']}", file=sys.stderr)
    uncontained = 0
    for scenario in scenarios:
        row = payload["scenarios"].get(scenario)
        if row is None:
            continue
        avg = (f"{row['detection_avg_ms']:.1f}"
               if row["detection_avg_ms"] is not None else "n/a")
        mx = (f"{row['detection_max_ms']:.1f}"
              if row["detection_max_ms"] is not None else "n/a")
        print(f"{scenario} ({row['workload']}): "
              f"contained {row['contained']}/{row['trials']}, "
              f"detection avg {avg} ms / max {mx} ms "
              f"(paper {row['paper_avg_ms']}/{row['paper_max_ms']} ms)")
        if row["contained"] != row["trials"]:
            uncontained += 1
        summary = payload["summaries"][scenario]
        for trial in summary.trials:
            if not trial.contained:
                print(f"   NOT CONTAINED (seed {trial.seed}): "
                      f"{trial.notes}")
    absorbed = 0
    audit = payload.get("audit")
    if audit is not None:
        summary = audit.get("summary", {})
        absorbed = summary.get("by_verdict", {}).get("absorbed", 0)
        print(f"containment audit: {audit['verdict']} "
              f"({summary.get('near_misses', 0)} near misses, "
              f"{absorbed} absorbed)")
        if args.audit_out:
            from repro.obs import render_audit_markdown
            with open(args.audit_out, "w") as fh:
                fh.write(render_audit_markdown(audit))
            print(f"   audit written to {args.audit_out}")
    elif args.audit_out:
        print("error: --audit-out requested but the campaign produced "
              "no audit payload", file=sys.stderr)
        return 1
    for scenario in sorted(payload.get("replay", {})):
        row = payload["replay"][scenario]
        print(f"replay streams {scenario}: base fault seed "
              f"{row['base_fault_seed']}, {row['trace_rows']} trace rows")
        for trial in row.get("trials", []):
            div = trial.get("divergence_ns")
            where = (f"diverges at {div / 1e6:.1f} ms "
                     f"(identical prefix {trial['identical_prefix']} rows)"
                     if div is not None else "identical stream")
            print(f"   f{trial['fault_seed']}: {where}")
    par = payload["parallel"]
    print(f"campaign: {par['shards']} trials on "
          f"{par['effective_workers']}/{par['workers']} workers "
          f"({par['cpu_count']} CPUs) in {par['campaign_wall_s']:.2f} s "
          f"wall")
    snap = payload.get("snapshot")
    if snap:
        print(f"   per-trial setup ({snap['mode']}): "
              f"{snap['setup_wall_s_mean'] * 1000:.1f} ms vs boot "
              f"{snap['boot_wall_s_mean'] * 1000:.1f} ms "
              f"({snap['amortization_x']}x over {snap['trials']} trials)")
    for telemetry_dir in payload.get("telemetry_dirs", []):
        print(f"   telemetry written to {telemetry_dir}")
    if args.telemetry_out:
        import os
        os.makedirs(args.telemetry_out, exist_ok=True)
        bench = {"command": "inject", "agreement": args.agreement,
                 "seed": args.seed, "scenarios": payload["scenarios"],
                 "parallel": par}
        write_bench_summary(
            os.path.join(args.telemetry_out, "BENCH_pr2.json"), bench)
    return 1 if failures or uncontained or absorbed else 0


def cmd_sessions(args) -> int:
    from repro.workloads.sessions import SessionTrafficConfig, run_sessions

    cfg = SessionTrafficConfig(
        sessions=args.sessions, seed=args.seed,
        interarrival=args.interarrival, service=args.service,
        mean_interarrival_ns=args.mean_interarrival_ns,
        mean_service_ns=args.mean_service_ns,
        probe_every=args.probe_every, inject_ms=args.inject_ms,
        victim_cell=args.victim_cell,
        failover=not args.no_failover)
    mode = "snapshot fork" if args.snapshot else "fresh boot"
    print(f"session traffic: {cfg.sessions:,} open-loop sessions on "
          f"{args.cells} cells / {args.nodes} nodes ({mode}, seed "
          f"{cfg.seed})")
    row = run_sessions(cfg, cells=args.cells, nodes=args.nodes,
                       snapshot=args.snapshot)
    print(f"{row['sessions_per_sec']:>12,.1f} sessions/sec "
          f"({row['wall_s']:.2f} s wall, sim horizon "
          f"{row['sim_horizon_ms']:.0f} ms)")
    print(f"latency p50 {row['latency_p50_ms']:.3f} ms / p99 "
          f"{row['latency_p99_ms']:.3f} ms / mean "
          f"{row['latency_mean_ms']:.3f} ms")
    print(f"completed {row['completed']:,} / lost {row['lost']:,} "
          f"(+{row['lost_arrivals']:,} dead-cell arrivals) over "
          f"{row['faults']} fault(s) -> "
          f"{row['sessions_lost_per_fault']} lost/fault")
    print(f"mix: " + "  ".join(f"{name}={count:,}"
                               for name, count in row["by_type"].items()))
    if row["probes_launched"]:
        print(f"probes: {row['probes_completed']}/"
              f"{row['probes_launched']} kernel probe sessions completed")
    if row["coupling_accesses"]:
        print(f"coupling: {row['coupling_accesses']:,} coherence "
              f"accesses, {row['coupling_retired_cells']} client(s) "
              f"retired by revocation")
    if row.get("snapshot") == "fork":
        print(f"setup: boot {row['boot_wall_s']:.3f} s once, fork "
              f"{row['fork_wall_s'] * 1000:.1f} ms")
    if args.out:
        write_bench_summary(args.out, {"command": "sessions",
                                       "sessions": row})
        print(f"report written      : {args.out}")
    return 0


def cmd_bench(args) -> int:
    import time as _time

    from repro.bench.parallel import DETERMINISTIC_KEYS, run_bench_campaign
    from repro.bench.throughput import (
        CONFIGS,
        compare_shards,
        run_suite,
        run_throughput,
        validate_payload,
        write_bench_file,
    )

    from repro.sim.shard import shards_from_env

    names = list(CONFIGS) if args.config == "all" else [args.config]
    shards = args.shards if args.shards is not None else shards_from_env()
    replay_logs = None
    if args.replay:
        from repro.sim.oplog import load_oplogs

        if args.parallel > 1:
            print("error: --replay runs in-process; drop --parallel "
                  "(the recorded logs do not ship to pool workers)",
                  file=sys.stderr)
            return 2
        replay_logs = load_oplogs(args.replay)
        missing = [n for n in names if n not in replay_logs]
        if missing:
            print(f"error: {args.replay} has no trace for "
                  f"{', '.join(missing)} (recorded: "
                  f"{', '.join(sorted(replay_logs))})", file=sys.stderr)
            return 2
    mode = (f"{args.parallel} workers" if args.parallel > 1 else "serial")
    if shards:
        mode += f", {shards} shards"
    if replay_logs is not None:
        mode += f", replaying {args.replay}"
    if args.snapshot:
        mode += ", snapshot forks"
    print(f"throughput bench: {', '.join(names)} (seed {args.seed}, "
          f"best of {args.repeats}, {mode})")
    if args.parallel > 1:
        payload = run_bench_campaign(names, seed=args.seed,
                                     repeats=args.repeats,
                                     workers=args.parallel,
                                     progress=args.progress,
                                     snapshot=args.snapshot)
    else:
        payload = run_suite(names, seed=args.seed, repeats=args.repeats,
                            shards=shards, replay_logs=replay_logs,
                            snapshot=args.snapshot)
    if replay_logs is not None:
        payload["replay_source"] = args.replay
    failed = bool(payload.get("failures"))
    for failure in payload.get("failures", []):
        print(f"FAILED shard {failure['config']!r} repeat "
              f"{failure['repeat']}:\n{failure['error']}", file=sys.stderr)
    if not failed:
        validate_payload(payload)
    for name in names:
        if name not in payload["results"]:
            continue
        row = payload["results"][name]
        print(f"{name:>7}: {row['nodes']} nodes / {row['cells']} cells, "
              f"{row['events']} events, {row['accesses']} accesses in "
              f"{row['wall_s']:.2f} s wall "
              f"(spread {row['wall_s_min']:.2f}-{row['wall_s_max']:.2f} s "
              f"over {row['repeats']} repeats)")
        print(f"         {row['events_per_sec']:>12,.0f} events/sec  "
              f"{row['accesses_per_sec']:>12,.0f} accesses/sec  "
              f"recovery {row['recovery_wall_ms']:.1f} ms wall")
        if row.get("snapshot") == "fork":
            boot = row["boot_wall_s"]
            fork = row["fork_wall_s"]
            amort = round(boot / fork, 1) if fork else 0.0
            print(f"         boot amortized: {boot:.3f} s once, "
                  f"{fork * 1000:.1f} ms per fork ({amort}x)")
        if not row["recovery_detected"]:
            print("         WARNING: fault was not detected/recovered")
    if args.parallel > 1:
        par = payload["parallel"]
        print(f"campaign: {par['shards']} shards on "
              f"{par['effective_workers']}/{par['workers']} workers "
              f"({par['cpu_count']} CPUs) in "
              f"{par['campaign_wall_s']:.2f} s wall; shard total "
              f"{par['shard_wall_s_total']:.2f} s")
    counters_match = True
    if args.compare_scalar:
        print("scalar comparison run (batched access path disabled)...")
        wall0 = _time.perf_counter()
        scalar = run_suite(names, seed=args.seed, repeats=args.repeats,
                           batch=False)
        scalar_wall = _time.perf_counter() - wall0
        compare = {}
        for name in names:
            if name not in payload["results"]:
                continue
            batched_row = payload["results"][name]
            scalar_row = scalar["results"][name]
            mismatches = [key for key in DETERMINISTIC_KEYS
                          if batched_row[key] != scalar_row[key]]
            if mismatches:
                counters_match = False
                print(f"COUNTER MISMATCH in {name!r}: {mismatches}",
                      file=sys.stderr)
            compare[name] = {
                "wall_s": scalar_row["wall_s"],
                "wall_s_min": scalar_row["wall_s_min"],
                "wall_s_max": scalar_row["wall_s_max"],
                "events_per_sec": scalar_row["events_per_sec"],
                "accesses_per_sec": scalar_row["accesses_per_sec"],
            }
        payload["scalar_compare"] = {
            "counters_match": counters_match,
            "suite_wall_s": round(scalar_wall, 4),
            "results": compare,
        }
        if args.parallel > 1:
            speedup = scalar_wall / payload["parallel"]["campaign_wall_s"]
            payload["scalar_compare"]["suite_speedup_vs_scalar_serial"] = \
                round(speedup, 2)
            print(f"scalar serial suite: {scalar_wall:.2f} s wall -> "
                  f"batched parallel speedup {speedup:.2f}x")
            # Campaign rows are measured under pool contention, which
            # inflates per-shard wall clock; re-measure each config
            # uncontended so the committed file also records the true
            # single-process batched rates.
            print("single-process batched reference run...")
            single = run_suite(names, seed=args.seed,
                               repeats=args.repeats)
            payload["single_process"] = {}
            for name in names:
                srow = single["results"][name]
                payload["single_process"][name] = {
                    "wall_s": srow["wall_s"],
                    "wall_s_min": srow["wall_s_min"],
                    "wall_s_max": srow["wall_s_max"],
                    "events_per_sec": srow["events_per_sec"],
                    "accesses_per_sec": srow["accesses_per_sec"],
                }
                print(f"{name:>7}: {srow['events_per_sec']:>12,.0f} "
                      f"events/sec  {srow['accesses_per_sec']:>12,.0f} "
                      f"accesses/sec (single process)")
        print(f"deterministic counters batched vs scalar: "
              f"{'MATCH' if counters_match else 'MISMATCH'}")
    wheel_match = True
    if args.compare_wheel:
        print("heap comparison run (timer wheel disabled)...")
        wall0 = _time.perf_counter()
        heap = run_suite(names, seed=args.seed, repeats=args.repeats,
                         wheel=False)
        heap_wall = _time.perf_counter() - wall0
        compare = {}
        for name in names:
            if name not in payload["results"]:
                continue
            wheel_row = payload["results"][name]
            heap_row = heap["results"][name]
            mismatches = [key for key in DETERMINISTIC_KEYS
                          if wheel_row[key] != heap_row[key]]
            if mismatches:
                wheel_match = False
                print(f"COUNTER MISMATCH (wheel vs heap) in {name!r}: "
                      f"{mismatches}", file=sys.stderr)
            compare[name] = {
                "wall_s": heap_row["wall_s"],
                "wall_s_min": heap_row["wall_s_min"],
                "wall_s_max": heap_row["wall_s_max"],
                "events_per_sec": heap_row["events_per_sec"],
                "accesses_per_sec": heap_row["accesses_per_sec"],
            }
        payload["wheel_compare"] = {
            "counters_match": wheel_match,
            "suite_wall_s": round(heap_wall, 4),
            "results": compare,
        }
        print(f"deterministic counters wheel vs heap: "
              f"{'MATCH' if wheel_match else 'MISMATCH'}")
    shard_match = True
    if args.compare_shards:
        n = args.compare_shards
        print(f"shard equivalence run (HIVE_SHARDS={n} vs sequential)...")
        compare = {}
        for name in names:
            result = compare_shards(name, n, seed=args.seed)
            if not result["match"]:
                shard_match = False
                print(f"COUNTER MISMATCH (sharded vs sequential) in "
                      f"{name!r}: {sorted(result['mismatches'])}",
                      file=sys.stderr)
            compare[name] = result
            print(f"{name:>7}: "
                  f"{result['sharded_events_per_sec']:>12,.0f} events/sec "
                  f"sharded  "
                  f"{result['sequential_events_per_sec']:>12,.0f} "
                  f"sequential  ({result['replayed_wakeups']} wakeups "
                  f"replayed)")
        payload["shard_compare"] = {
            "counters_match": shard_match,
            "shards": n,
            "results": compare,
        }
        print(f"deterministic counters sharded vs sequential: "
              f"{'MATCH' if shard_match else 'MISMATCH'}")
    if args.shard_scaling:
        print("intra-run shard scaling (events/s vs shard count)...")
        scaling = {}
        for name in names:
            rows = {}
            for n in (0, 1, 2, 4):
                best = None
                for _ in range(max(1, args.repeats)):
                    row = run_throughput(name, seed=args.seed, shards=n)
                    if best is None or row["wall_s"] < best["wall_s"]:
                        best = row
                entry = {"events_per_sec": best["events_per_sec"],
                         "wall_s": best["wall_s"]}
                if n:
                    entry["replayed_wakeups"] = \
                        best["shard"]["replayed_wakeups"]
                    entry["windows_closed"] = \
                        best["shard"]["windows_closed"]
                rows["sequential" if n == 0 else f"shards_{n}"] = entry
            base = rows["sequential"]["events_per_sec"]
            for key, entry in rows.items():
                entry["speedup"] = round(entry["events_per_sec"] / base, 2)
            scaling[name] = rows
            print(f"{name:>7}: " + "  ".join(
                f"{key}={entry['events_per_sec']:,.0f} "
                f"({entry['speedup']}x)" for key, entry in rows.items()))
        payload["shard_scaling"] = scaling
    rpc_match = True
    if args.rpc:
        from repro.bench.rpcbench import (
            RPC_CONFIGS,
            compare_rpc_rows,
            run_rpc_suite,
        )

        rpc_names = (list(RPC_CONFIGS) if args.config == "all"
                     else [args.config])
        print(f"rpc microbench: {', '.join(rpc_names)} "
              f"(best of {args.repeats})")
        fast_results = run_rpc_suite(rpc_names, seed=args.seed,
                                     repeats=args.repeats, fast=True,
                                     snapshot=args.snapshot)
        slow_results = run_rpc_suite(rpc_names, seed=args.seed,
                                     repeats=args.repeats, fast=False,
                                     snapshot=args.snapshot)
        slow_compare = {}
        for name in rpc_names:
            frow = fast_results[name]
            srow = slow_results[name]
            mismatches = compare_rpc_rows(frow, srow)
            if mismatches:
                rpc_match = False
                print(f"COUNTER MISMATCH (rpc fast vs slow) in "
                      f"{name!r}: {mismatches}", file=sys.stderr)
            slow_compare[name] = {
                "wall_s": srow["wall_s"],
                "round_trips_per_sec": srow["round_trips_per_sec"],
            }
            print(f"{name:>7}: {frow['round_trips']} round trips, "
                  f"{frow['round_trips_per_sec']:>10,.0f} rt/sec fast  "
                  f"{srow['round_trips_per_sec']:>10,.0f} rt/sec slow  "
                  f"mean latency {frow['mean_latency_ns']:,.0f} ns")
        payload["rpc"] = {
            "results": fast_results,
            "slow_compare": {
                "counters_match": rpc_match,
                "results": slow_compare,
            },
        }
        print(f"deterministic counters rpc fast vs slow: "
              f"{'MATCH' if rpc_match else 'MISMATCH'}")
    if args.record:
        from repro.bench.throughput import record_traces
        from repro.sim.oplog import save_oplogs

        print(f"recording op traces: {', '.join(names)} -> {args.record}")
        logs = record_traces(names, seed=args.seed)
        save_oplogs(args.record, logs)
        payload["record"] = {
            "path": args.record,
            "trace_rows": {name: len(log) for name, log in logs.items()},
        }
        for name in names:
            print(f"{name:>7}: {len(logs[name])} rows recorded")
    replay_match = True
    if args.compare_replay:
        from repro.bench.throughput import compare_replay

        print("replay equivalence run (trace replay vs live)...")
        compare = {}
        for name in names:
            result = compare_replay(name, seed=args.seed,
                                    shards=shards or 0)
            if not result["match"]:
                replay_match = False
                print(f"COUNTER MISMATCH (replay vs live) in {name!r}: "
                      f"{sorted(result['mismatches'])}", file=sys.stderr)
            compare[name] = result
            print(f"{name:>7}: "
                  f"{result['replay_events_per_sec']:>12,.0f} events/sec "
                  f"replayed  "
                  f"{result['live_events_per_sec']:>12,.0f} live  "
                  f"({result['replayed_from_trace']} wakeups from trace, "
                  f"{result['fallback_wakeups']} live fallbacks)")
        payload["replay_compare"] = {
            "counters_match": replay_match,
            "shards": shards or 0,
            "results": compare,
        }
        print(f"deterministic counters replay vs live: "
              f"{'MATCH' if replay_match else 'MISMATCH'}")
    sweep_match = True
    if args.sweep_faults:
        from repro.bench.throughput import run_replay_sweep

        print(f"fault-schedule sweep: record once, replay "
              f"{args.sweep_faults} moved-fault trials per config...")
        sweeps = {}
        for name in names:
            sweep = run_replay_sweep(name, trials=args.sweep_faults,
                                     seed=args.seed, shards=shards or 0,
                                     repeats=args.repeats)
            if not sweep["counters_match"]:
                sweep_match = False
                print(f"COUNTER MISMATCH (sweep replay vs live) in "
                      f"{name!r}", file=sys.stderr)
            sweeps[name] = sweep
            print(f"{name:>7}: replay "
                  f"{sweep['replay_events_per_sec_mean']:>12,.0f} "
                  f"events/sec vs live "
                  f"{sweep['live_events_per_sec_mean']:>12,.0f} -> "
                  f"{sweep['speedup_mean']}x over {sweep['trials']} "
                  f"moved faults")
        payload["replay_sweep"] = sweeps
        print(f"deterministic counters sweep replay vs live: "
              f"{'MATCH' if sweep_match else 'MISMATCH'}")
    snapshot_match = True
    if args.compare_snapshot:
        from repro.bench.throughput import compare_snapshot

        print("snapshot equivalence run (forked vs fresh boot)...")
        compare = {}
        for name in names:
            result = compare_snapshot(name, seed=args.seed,
                                      shards=shards or 0)
            if not result["match"]:
                snapshot_match = False
                print(f"COUNTER MISMATCH (forked vs boot) in {name!r}: "
                      f"{sorted(result['mismatches'])}", file=sys.stderr)
            compare[name] = result
            print(f"{name:>7}: boot {result['boot_wall_s']:.3f} s vs "
                  f"fork {result['fork_wall_s'] * 1000:.1f} ms "
                  f"({result['amortization_x']}x, mode "
                  f"{result['mode']})")
        payload["snapshot_compare"] = {
            "counters_match": snapshot_match,
            "shards": shards or 0,
            "results": compare,
        }
        print(f"deterministic counters forked vs boot: "
              f"{'MATCH' if snapshot_match else 'MISMATCH'}")
        # Campaign smoke: snapshot-forked trials must merge to the
        # same payload a fresh-boot campaign produces, and the
        # per-trial setup wall records the amortization.
        from repro.bench.parallel import run_inject_campaign

        print("snapshot campaign smoke (forked trials)...")
        campaign = run_inject_campaign(["hw_process_creation"], trials=2,
                                       workers=1, snapshot=True)
        snap = campaign.get("snapshot", {})
        payload["snapshot_campaign"] = snap
        if snap:
            print(f"campaign setup: {snap['mode']}, "
                  f"{snap['setup_wall_s_mean'] * 1000:.1f} ms/trial vs "
                  f"boot {snap['boot_wall_s_mean']:.3f} s "
                  f"({snap['amortization_x']}x over {snap['trials']} "
                  f"trials)")
    if args.sessions:
        from repro.workloads.sessions import (SessionTrafficConfig,
                                              run_sessions)

        print(f"session traffic: {args.sessions:,} open-loop sessions "
              f"(seed {args.seed})...")
        cfg = SessionTrafficConfig(sessions=args.sessions, seed=args.seed,
                                   probe_every=max(1, args.sessions // 16),
                                   inject_ms=400)
        session_row = run_sessions(cfg, snapshot=args.snapshot)
        payload["sessions"] = session_row
        print(f"   {session_row['sessions_per_sec']:>12,.1f} sessions/sec "
              f"({session_row['wall_s']:.2f} s wall), p50 "
              f"{session_row['latency_p50_ms']:.3f} ms / p99 "
              f"{session_row['latency_p99_ms']:.3f} ms")
        print(f"   {session_row['lost']} sessions lost over "
              f"{session_row['faults']} fault(s) "
              f"({session_row['sessions_lost_per_fault']}/fault), "
              f"{session_row['probes_completed']}/"
              f"{session_row['probes_launched']} probes completed")
    write_bench_file(args.out, payload)
    print(f"bench written       : {args.out}")
    return 1 if (failed or not counters_match or not wheel_match
                 or not rpc_match or not shard_match
                 or not replay_match or not sweep_match
                 or not snapshot_match) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hive (SOSP 1995) reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=1995)

    def telemetry(p):
        p.add_argument("--telemetry-out", metavar="DIR", default=None,
                       help="write machine-readable telemetry "
                            "(spans.jsonl, trace.json, metrics.json, "
                            "timeline.txt, BENCH_pr2.json) into DIR")
        p.add_argument("--telemetry-compress", action="store_true",
                       help="gzip the stream artifacts "
                            "(spans.jsonl.gz, trace.json.gz); readers "
                            "like 'repro trace --from-spans' decompress "
                            "transparently")

    def hive_config(p):
        p.add_argument("--cells", type=int, default=4)
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--cpus-per-node", type=int, default=1)
        p.add_argument("--agreement", choices=["voting", "oracle"],
                       default="voting")

    p_run = sub.add_parser("run", help="run a paper workload")
    p_run.add_argument("workload", choices=sorted(WORKLOADS))
    hive_config(p_run)
    p_run.add_argument("--irix", action="store_true",
                       help="run on the IRIX baseline instead of Hive")
    p_run.add_argument("--wax", action="store_true",
                       help="boot with the Wax policy process")
    common(p_run)
    telemetry(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run a workload under the flight recorder and "
                      "print the span summary + timeline")
    p_trace.add_argument("workload", nargs="?", default="pmake",
                         choices=sorted(WORKLOADS))
    p_trace.add_argument("--from-spans", metavar="FILE", default=None,
                         help="summarize a saved spans.jsonl (or "
                              "spans.jsonl.gz — decompressed "
                              "transparently) instead of running a "
                              "workload")
    hive_config(p_trace)
    common(p_trace)
    p_trace.set_defaults(fn=cmd_trace, irix=False, wax=False)

    p_metrics = sub.add_parser(
        "metrics", help="run a workload and print the per-cell "
                        "per-subsystem metrics snapshot")
    p_metrics.add_argument("workload", choices=sorted(WORKLOADS))
    p_metrics.add_argument("--format", choices=["table", "json"],
                           default="table",
                           help="output format; both render keys in "
                                "stable sorted order (default: table)")
    hive_config(p_metrics)
    common(p_metrics)
    p_metrics.set_defaults(fn=cmd_metrics, irix=False, wax=False)

    p_micro = sub.add_parser("micro",
                             help="print the microbenchmark anchors")
    common(p_micro)
    telemetry(p_micro)
    p_micro.set_defaults(fn=cmd_micro)

    p_inject = sub.add_parser("inject",
                              help="run Table 7.4 fault-injection trials")
    p_inject.add_argument("scenario",
                          choices=sorted(ALL_SCENARIOS) + ["all"])
    p_inject.add_argument("--trials", type=int, default=1)
    p_inject.add_argument("--agreement", choices=["voting", "oracle"],
                          default="oracle")
    p_inject.add_argument("--campaign", action="store_true",
                          help="shard trials across a process pool and "
                               "merge the per-trial payloads")
    p_inject.add_argument("--replay", action="store_true",
                          help="with --campaign: fix the workload seed "
                               "and sweep only the fault seed; each "
                               "trial records its op trace and the "
                               "merge reports where every stream "
                               "diverges from trial 0's")
    p_inject.add_argument("--parallel", type=int, default=2, metavar="N",
                          help="worker processes for --campaign "
                               "(default: 2)")
    p_inject.add_argument("--progress", action="store_true",
                          help="print a heartbeat line (shard i/N, "
                               "sim-time, events/s) per completed "
                               "--campaign trial")
    p_inject.add_argument("--snapshot", action="store_true",
                          help="with --campaign: fork each trial from a "
                               "per-worker snapshot image instead of "
                               "re-booting (same results, boot paid "
                               "once per worker)")
    p_inject.add_argument("--audit-out", metavar="FILE", default=None,
                          help="write the --campaign containment-audit "
                               "markdown here; any absorbed taint also "
                               "fails the run")
    common(p_inject)
    telemetry(p_inject)
    p_inject.set_defaults(fn=cmd_inject)

    p_audit = sub.add_parser(
        "audit", help="run fault-injection trials under the provenance "
                      "tracer and render the containment audit: taint "
                      "propagation DAG, near-miss ledger, per-trial "
                      "blocked/discarded/absorbed verdicts")
    p_audit.add_argument("scenario",
                         choices=sorted(ALL_SCENARIOS) + ["all"])
    p_audit.add_argument("--trials", type=int, default=1)
    p_audit.add_argument("--agreement", choices=["voting", "oracle"],
                         default="oracle")
    p_audit.add_argument("--parallel", type=int, default=2, metavar="N",
                         help="worker processes (default: 2); results "
                              "are byte-identical at any worker count")
    p_audit.add_argument("--format", choices=["markdown", "json"],
                         default="markdown",
                         help="json is byte-stable for golden files")
    p_audit.add_argument("--out", metavar="FILE", default=None,
                         help="write the audit here instead of stdout")
    p_audit.add_argument("--trace-out", metavar="FILE", default=None,
                         help="also write the propagation DAG as a "
                              "Chrome-trace (chrome://tracing) JSON file")
    p_audit.add_argument("--progress", action="store_true",
                         help="print a heartbeat line per completed trial")
    common(p_audit)
    p_audit.set_defaults(fn=cmd_audit)

    p_bench = sub.add_parser(
        "bench", help="measure simulator throughput (events/sec, "
                      "memory accesses/sec) on a fixed fault scenario")
    p_bench.add_argument("--config",
                         choices=["small", "medium", "large", "all"],
                         default="all")
    p_bench.add_argument("--out", metavar="FILE",
                         default="BENCH_pr10.json",
                         help="output JSON path "
                              "(default: BENCH_pr10.json)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="runs per config; the fastest is kept "
                              "(default: 3)")
    p_bench.add_argument("--parallel", type=int, default=0, metavar="N",
                         help="shard (config, repeat) cells across N "
                              "worker processes (default: serial)")
    p_bench.add_argument("--compare-scalar", action="store_true",
                         help="also run the suite with the batched "
                              "access path disabled and verify the "
                              "deterministic counters match")
    p_bench.add_argument("--compare-wheel", action="store_true",
                         help="also run the suite with the engine timer "
                              "wheel disabled (HIVE_WHEEL=0 path) and "
                              "verify the deterministic counters match")
    p_bench.add_argument("--rpc", action="store_true",
                         help="also run the RPC round-trip microbench "
                              "with the fast path on and off and verify "
                              "the RPC counters match")
    p_bench.add_argument("--shards", type=int, default=None, metavar="N",
                         help="run the suite on the cell-sharded engine "
                              "with N shard lanes (default: the "
                              "HIVE_SHARDS env setting, else 0 = "
                              "sequential engine)")
    p_bench.add_argument("--compare-shards", type=int, default=0,
                         metavar="N",
                         help="also run each config sharded (N lanes) "
                              "and sequentially and verify the "
                              "deterministic counters and channel "
                              "digests match byte-for-byte")
    p_bench.add_argument("--shard-scaling", action="store_true",
                         help="also measure events/s at shard counts "
                              "1/2/4 vs the sequential engine and "
                              "record the scaling table")
    p_bench.add_argument("--record", metavar="FILE", default=None,
                         help="also record each config's op trace into "
                              "one compressed .npz archive, replayable "
                              "via --replay")
    p_bench.add_argument("--replay", metavar="FILE", default=None,
                         help="run the suite as a trace replay of the "
                              "archive recorded with --record (serial "
                              "only; counters stay byte-identical to "
                              "live runs)")
    p_bench.add_argument("--compare-replay", action="store_true",
                         help="record each config, replay the trace, "
                              "and verify the deterministic counters "
                              "and channel digests match byte-for-byte")
    p_bench.add_argument("--sweep-faults", type=int, default=0,
                         metavar="N",
                         help="record once per config, then run N "
                              "moved-fault trials both live and "
                              "replayed; gates counter equivalence and "
                              "records the replay speedup")
    p_bench.add_argument("--snapshot", action="store_true",
                         help="fork each run from a per-config snapshot "
                              "image instead of re-booting (counters "
                              "stay byte-identical; HIVE_SNAPSHOT=0 "
                              "falls back to fresh boots)")
    p_bench.add_argument("--compare-snapshot", action="store_true",
                         help="run each config forked and freshly "
                              "booted, verify the deterministic "
                              "counters match byte-for-byte, and smoke "
                              "a snapshot-forked inject campaign")
    p_bench.add_argument("--sessions", type=int, default=0, metavar="N",
                         help="also run the open-loop session-traffic "
                              "frontend with N sessions (plus one "
                              "injected fault) and record sessions/s "
                              "and latency percentiles")
    p_bench.add_argument("--progress", action="store_true",
                         help="print a heartbeat line (shard i/N, "
                              "sim-time, events/s) per completed "
                              "--parallel shard")
    common(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_sessions = sub.add_parser(
        "sessions", help="run the open-loop session-traffic frontend: "
                         "heavy-tailed arrivals, per-cell FCFS server "
                         "pools, sessions-lost-per-fault accounting")
    p_sessions.add_argument("--sessions", type=int, default=1_000_000,
                            help="sessions to generate (default: 1M)")
    p_sessions.add_argument("--cells", type=int, default=4)
    p_sessions.add_argument("--nodes", type=int, default=4)
    p_sessions.add_argument("--interarrival",
                            choices=["lognormal", "pareto"],
                            default="lognormal")
    p_sessions.add_argument("--service",
                            choices=["lognormal", "pareto"],
                            default="pareto")
    p_sessions.add_argument("--mean-interarrival-ns", type=float,
                            default=10_000.0)
    p_sessions.add_argument("--mean-service-ns", type=float,
                            default=200_000.0)
    p_sessions.add_argument("--probe-every", type=int, default=0,
                            metavar="N",
                            help="every Nth session also runs as a real "
                                 "kernel process (default: off)")
    p_sessions.add_argument("--inject-ms", type=int, default=None,
                            metavar="T",
                            help="fail-stop a node of the victim cell "
                                 "at sim time T ms")
    p_sessions.add_argument("--victim-cell", type=int, default=None)
    p_sessions.add_argument("--no-failover", action="store_true",
                            help="arrivals at dead cells are lost "
                                 "instead of re-routed")
    p_sessions.add_argument("--snapshot", action="store_true",
                            help="fork the run from a snapshot image "
                                 "instead of booting")
    p_sessions.add_argument("--out", metavar="FILE", default=None,
                            help="write the session report JSON here")
    common(p_sessions)
    p_sessions.set_defaults(fn=cmd_sessions)

    p_report = sub.add_parser(
        "report", help="run (or load) a fault-injection campaign and "
                       "render the campaign observatory report: "
                       "availability, recovery-latency percentiles, "
                       "tier hit rates, bench trajectory")
    p_report.add_argument("--scenario",
                          choices=sorted(ALL_SCENARIOS) + ["all"],
                          default="all")
    p_report.add_argument("--trials", type=int, default=1,
                          help="trials per scenario (default: 1)")
    p_report.add_argument("--agreement", choices=["voting", "oracle"],
                          default="oracle")
    p_report.add_argument("--parallel", type=int, default=2, metavar="N",
                          help="worker processes for the campaign "
                               "(default: 2)")
    p_report.add_argument("--from-json", metavar="FILE", default=None,
                          help="render a campaign payload saved with "
                               "--save-campaign instead of running one")
    p_report.add_argument("--save-campaign", metavar="FILE", default=None,
                          help="also write the merged campaign payload "
                               "as JSON (feedable back via --from-json)")
    p_report.add_argument("--format", choices=["markdown", "json"],
                          default="markdown")
    p_report.add_argument("--out", metavar="FILE", default=None,
                          help="write the report here instead of stdout")
    p_report.add_argument("--bench-dir", metavar="DIR", default=".",
                          help="directory holding the committed "
                               "BENCH_pr*.json trajectory (default: .)")
    p_report.add_argument("--check", action="store_true",
                          help="exit 1 on missing latency percentiles, "
                               "uncontained/failed trials, or a >30%% "
                               "events/s regression between the two "
                               "newest bench files")
    p_report.add_argument("--progress", action="store_true",
                          help="print a heartbeat line per completed "
                               "campaign trial")
    common(p_report)
    p_report.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
