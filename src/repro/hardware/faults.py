"""Hardware fault injection (the Section 7.4 fail-stop experiments).

"We simulated fail-stop node failures by halting a processor and denying
all access to the range of memory assigned to that processor."

The injector schedules faults at an absolute simulation time or triggered
by a named *phase event* published by the workloads (e.g. "during process
creation", "during copy-on-write search" — the two targeted injection
sites of Table 7.4).  Kernel-data corruption faults live at the OS layer
(:mod:`repro.core.kfaults`) because they mutate kernel structures, not
hardware state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hardware.machine import Machine
from repro.sim.engine import Simulator


@dataclass
class InjectionRecord:
    """What was injected, where, and when."""

    kind: str
    node_id: int
    time_ns: int
    trigger: str
    lost_frames: int = 0


class FaultInjector:
    """Schedules and logs hardware fault injections."""

    NODE_FAILURE = "node_failure"
    PROCESSOR_HALT = "processor_halt"
    MEMORY_FAILURE = "memory_failure"

    def __init__(self, sim: Simulator, machine: Machine):
        self.sim = sim
        self.machine = machine
        self.records: List[InjectionRecord] = []
        self._phase_arms: Dict[str, List[tuple]] = {}
        #: callbacks fired right after any injection (the OS test harness
        #: uses this to start its containment-latency stopwatch).
        self.observers: List[Callable[[InjectionRecord], None]] = []

    # -- immediate / timed injection -------------------------------------

    def inject(self, kind: str, node_id: int, trigger: str = "manual") -> InjectionRecord:
        """Inject a fault right now."""
        if kind == self.NODE_FAILURE:
            lost = self.machine.halt_node(node_id)
        elif kind == self.PROCESSOR_HALT:
            self.machine.halt_processor_only(node_id)
            lost = set()
        elif kind == self.MEMORY_FAILURE:
            lost = self.machine.fail_memory_range(node_id)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        rec = InjectionRecord(
            kind=kind, node_id=node_id, time_ns=self.sim.now,
            trigger=trigger, lost_frames=len(lost),
        )
        self.records.append(rec)
        for obs in list(self.observers):
            obs(rec)
        return rec

    def inject_at(self, time_ns: int, kind: str, node_id: int,
                  trigger: str = "timed") -> None:
        """Inject a fault at an absolute simulation time."""
        delay = max(0, time_ns - self.sim.now)
        self.sim.schedule(delay, self._fire_if_alive, kind, node_id, trigger)

    def _fire_if_alive(self, kind: str, node_id: int, trigger: str) -> None:
        if not self.machine.nodes[node_id].halted:
            self.inject(kind, node_id, trigger)

    # -- phase-triggered injection -----------------------------------------
    #
    # Workloads and kernels publish named phases ("process_creation",
    # "cow_search").  Arming a phase makes the next occurrence inject the
    # fault, which is how the paper hit faults "during process creation"
    # and "during copy-on-write search".

    def arm_phase(self, phase: str, kind: str, node_id: int) -> None:
        self._phase_arms.setdefault(phase, []).append((kind, node_id))

    def phase_hit(self, phase: str) -> Optional[InjectionRecord]:
        """Called by instrumented code when it enters ``phase``."""
        arms = self._phase_arms.get(phase)
        if not arms:
            return None
        kind, node_id = arms.pop(0)
        if not arms:
            del self._phase_arms[phase]
        if self.machine.nodes[node_id].halted:
            return None
        return self.inject(kind, node_id, trigger=f"phase:{phase}")

    @property
    def armed_phases(self) -> List[str]:
        return sorted(self._phase_arms)
