"""HP 97560 disk model (per Kotz, Toh, and Radhakrishnan, 1994).

The paper computes disk latency "for each access using an experimentally-
validated model of an HP 97560 disk drive" and models "both DMA latency and
the memory controller occupancy required to transfer data from the disk
controller to main memory" (Section 7.2).

This module implements the standard published shape of that model:

* seek time: a square-root-ish short-seek region approximated by a base
  constant, plus a linear long-seek slope per cylinder;
* rotational delay: uniform in [0, one revolution), drawn deterministically
  from a named random stream;
* media transfer at the track rate, plus head/track switch costs;
* fixed controller overhead per request;
* DMA occupancy charged per byte moved to memory.

Requests on one spindle are serviced in FIFO order through a single-server
queue, so queueing delay emerges naturally under load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.hardware.params import HardwareParams, NS_PER_SEC
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource
from repro.sim.rng import RandomStreams
from repro.sim.stats import Timer


@dataclass
class DiskRequest:
    block: int
    nbytes: int
    is_write: bool


class Disk:
    """One disk spindle attached to one node's I/O controller."""

    def __init__(self, sim: Simulator, params: HardwareParams,
                 rng: RandomStreams, node_id: int, disk_id: int = 0):
        self.sim = sim
        self.params = params
        self.rng = rng
        self.node_id = node_id
        self.name = f"disk{node_id}.{disk_id}"
        self._arm = Resource(sim, capacity=1, name=f"{self.name}.arm")
        self._head_cylinder = 0
        self.service_time = Timer(f"{self.name}.service")
        self.requests = 0
        self.bytes_moved = 0
        blocks_per_cyl = (params.disk_sectors_per_track
                          * params.disk_tracks_per_cylinder)
        self._blocks_per_cylinder = blocks_per_cyl
        self.capacity_blocks = params.disk_cylinders * blocks_per_cyl

    # -- latency model --------------------------------------------------

    def _cylinder_of(self, block: int) -> int:
        return (block // self._blocks_per_cylinder) % self.params.disk_cylinders

    def seek_ns(self, from_cyl: int, to_cyl: int) -> int:
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0
        return (self.params.disk_seek_base_ns
                + distance * self.params.disk_seek_per_cyl_ns)

    def rotation_ns(self) -> int:
        revolution = NS_PER_SEC * 60 // self.params.disk_rpm
        return int(self.rng.uniform(f"{self.name}.rot", 0, revolution))

    def transfer_ns(self, nbytes: int) -> int:
        media = int(nbytes * self.params.disk_transfer_ns_per_byte)
        tracks_crossed = nbytes // (self.params.disk_sectors_per_track
                                    * self.params.disk_sector_size)
        return media + tracks_crossed * self.params.disk_head_switch_ns

    def service_ns(self, req: DiskRequest) -> int:
        """Pure service time for one request (excludes queueing)."""
        target = self._cylinder_of(req.block)
        latency = (self.params.disk_controller_overhead_ns
                   + self.seek_ns(self._head_cylinder, target)
                   + self.rotation_ns()
                   + self.transfer_ns(req.nbytes))
        self._head_cylinder = target
        return latency

    def dma_occupancy_ns(self, nbytes: int) -> int:
        return int(nbytes * self.params.dma_occupancy_ns_per_byte)

    # -- the blocking I/O operation ----------------------------------------

    def io(self, req: DiskRequest) -> Generator[Event, None, int]:
        """Coroutine: perform one request; returns total elapsed ns."""
        start = self.sim.now
        yield self._arm.request()
        try:
            latency = self.service_ns(req)
            yield self.sim.timeout(latency)
            # DMA into memory also occupies the memory controller.
            yield self.sim.timeout(self.dma_occupancy_ns(req.nbytes))
        finally:
            self._arm.release()
        elapsed = self.sim.now - start
        self.requests += 1
        self.bytes_moved += req.nbytes
        self.service_time.record(elapsed)
        return elapsed

    def read(self, block: int, nbytes: int):
        return self.io(DiskRequest(block, nbytes, is_write=False))

    def write(self, block: int, nbytes: int):
        return self.io(DiskRequest(block, nbytes, is_write=True))
