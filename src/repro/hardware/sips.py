"""SIPS: the FLASH short interprocessor send facility.

Section 6 of the paper: "We combine the standard cache-line delivery
mechanism used by the cache-coherence protocol with the interprocessor
interrupt mechanism and a pair of short receive queues on each node.  Each
SIPS delivers one cache line of data (128 bytes) in about the latency of a
cache miss to remote memory, with the reliability and hardware flow control
characteristic of a cache miss.  Separate receive queues are provided on
each node for request and reply messages, making deadlock avoidance easy."

Model:

* a message carries at most 128 bytes of payload (larger data must be sent
  *by reference* and read through the careful reference protocol — the RPC
  layer enforces this);
* delivery takes the IPI latency plus 300 ns before the receiving
  processor can touch the data (Section 7.2);
* each node has a bounded *request* queue and a bounded *reply* queue; a
  send to a full queue fails synchronously at the sender with
  :class:`SipsQueueFull` (hardware flow control — never a silent drop);
* a send to a failed node raises :class:`BusError` (the fault model rules
  out indefinite stalls);
* on delivery an interrupt handler registered by the receiving kernel runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.hardware.errors import BusError, SipsQueueFull
from repro.hardware.interconnect import Interconnect
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator

REQUEST = "request"
REPLY = "reply"


@dataclass(slots=True)
class SipsMessage:
    """One hardware message: a cache line of payload plus routing info.

    Slotted: the fabric creates one per send on the RPC hot path, and a
    per-message ``__dict__`` costs more than the message itself.
    """

    src_cpu: int
    dst_node: int
    kind: str                      # REQUEST or REPLY
    payload: Any
    payload_size: int
    send_time: int
    deliver_time: int = 0
    seq: int = 0

    @property
    def src_node_of(self) -> int:
        return self.src_cpu  # placeholder; real value set by fabric


class SipsFabric:
    """All SIPS send/receive machinery for the machine."""

    def __init__(self, sim: Simulator, params: HardwareParams,
                 interconnect: Interconnect):
        self.sim = sim
        self.params = params
        self.interconnect = interconnect
        self._queues: Dict[tuple, Deque[SipsMessage]] = {}
        self._handlers: Dict[int, Callable[[SipsMessage], None]] = {}
        self._failed: set[int] = set()
        self._seq = 0
        self.sends = 0
        self.sends_by_kind: Dict[str, int] = {REQUEST: 0, REPLY: 0}
        self.flow_control_rejections = 0
        # Optional fault-provenance tracer (``attach_provenance`` sets
        # it).  A plain None slot, not a null object: the hardware layer
        # must not import the obs package.
        self.prov = None
        # Optional intercell channel recorder (``sim/channels.py``),
        # same None-slot idiom: every SIPS is potential intercell
        # traffic, published with its end-to-end delivery latency.
        self.channels = None
        for node in range(params.num_nodes):
            self._queues[(node, REQUEST)] = deque()
            self._queues[(node, REPLY)] = deque()

    # -- kernel registration ------------------------------------------

    def register_handler(self, node: int,
                         handler: Callable[[SipsMessage], None]) -> None:
        """Install the message-arrival interrupt handler for a node."""
        self._handlers[node] = handler

    def unregister_handler(self, node: int) -> None:
        self._handlers.pop(node, None)

    # -- failure state ----------------------------------------------------

    def fail_node(self, node: int) -> None:
        self._failed.add(node)
        self._handlers.pop(node, None)

    def revive_node(self, node: int) -> None:
        self._failed.discard(node)
        self._queues[(node, REQUEST)].clear()
        self._queues[(node, REPLY)].clear()

    # -- send path ----------------------------------------------------------

    def send(self, src_cpu: int, dst_node: int, payload: Any,
             payload_size: int, kind: str = REQUEST) -> SipsMessage:
        """Issue one SIPS.  Returns the in-flight message.

        Raises :class:`SipsQueueFull` under flow control and
        :class:`BusError` when the destination node has failed.
        """
        if kind not in (REQUEST, REPLY):
            raise ValueError(f"bad SIPS kind {kind!r}")
        if payload_size > self.params.sips_payload:
            raise ValueError(
                f"SIPS payload {payload_size} exceeds one cache line "
                f"({self.params.sips_payload} bytes); send by reference"
            )
        src_node = src_cpu // self.params.cpus_per_node
        if src_node in self._failed:
            raise BusError(f"SIPS send from failed node {src_node}",
                           node=src_node)
        if dst_node in self._failed:
            raise BusError(f"SIPS send to failed node {dst_node}",
                           node=dst_node)
        queue = self._queues[(dst_node, kind)]
        if len(queue) >= self.params.sips_queue_depth:
            self.flow_control_rejections += 1
            raise SipsQueueFull(dst_node, kind)
        self._seq += 1
        latency = (self.interconnect.ipi_latency_ns(src_node, dst_node)
                   + self.params.sips_extra_ns)
        msg = SipsMessage(
            src_cpu=src_cpu,
            dst_node=dst_node,
            kind=kind,
            payload=payload,
            payload_size=payload_size,
            send_time=self.sim.now,
            deliver_time=self.sim.now + latency,
            seq=self._seq,
        )
        queue.append(msg)  # slot reserved immediately: hardware flow control
        self.sends += 1
        self.sends_by_kind[kind] += 1
        prov = self.prov
        if prov is not None:
            prov.sips_sent(src_node, dst_node, kind)
        channels = self.channels
        if channels is not None:
            channels.sips(src_node, dst_node, kind, latency)
        self.interconnect.messages_sent += 1
        self.sim.schedule(latency, self._deliver, msg)
        return msg

    def _deliver(self, msg: SipsMessage) -> None:
        if msg.dst_node in self._failed:
            # The node died in flight; the message is lost with the node.
            queue = self._queues[(msg.dst_node, msg.kind)]
            if msg in queue:
                queue.remove(msg)
            return
        handler = self._handlers.get(msg.dst_node)
        queue = self._queues[(msg.dst_node, msg.kind)]
        # Deliveries complete in send order per (node, kind) queue, so
        # the message is almost always at the head; fall back to the
        # O(n) scan only for queues perturbed by a node failure/revival.
        if queue and queue[0] is msg:
            queue.popleft()
        elif msg in queue:
            queue.remove(msg)
        if handler is not None:
            handler(msg)
        # No handler (cell still booting): hardware would hold the message;
        # kernels install handlers before enabling intercell traffic, so
        # this models messages racing a reboot, which are dropped with a
        # timeout at the sender.

    # -- introspection ------------------------------------------------------

    def queue_depth(self, node: int, kind: str) -> int:
        return len(self._queues[(node, kind)])
