"""Nodes: processor + caches + memory slice + local I/O devices.

Each FLASH node holds one (configurably more) processor, a slice of main
memory, and local devices — one disk, one ethernet, one console in the
paper's machine model.  The node is "an important unit of failure"
(Section 2): halting a node stops its processors and makes its memory
slice inaccessible.

The node also exposes the *remap region* from Table 8.1: a range of
physical addresses that every node maps to its own local memory, so each
cell can keep private trap vectors at the architecturally-fixed vector
addresses without sharing them machine-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hardware.disk import Disk
from repro.hardware.errors import NodeHalted
from repro.hardware.params import HardwareParams


@dataclass
class Cpu:
    """One processor.  Identity plus halt state; execution is scheduled
    by the owning kernel, not the hardware model."""

    cpu_id: int
    node_id: int
    halted: bool = False

    def check_running(self) -> None:
        if self.halted:
            raise NodeHalted(self.node_id)


#: Number of pages in the per-node remap region (trap vectors, utlbmiss
#: handlers, and the exception stack comfortably fit in a few pages).
REMAP_REGION_PAGES = 4


class Node:
    """One node of the machine."""

    def __init__(self, params: HardwareParams, node_id: int,
                 sim=None, rng=None):
        self.params = params
        self.node_id = node_id
        self.cpus: List[Cpu] = [
            Cpu(cpu_id=node_id * params.cpus_per_node + i, node_id=node_id)
            for i in range(params.cpus_per_node)
        ]
        self.disk: Optional[Disk] = None
        if sim is not None and rng is not None:
            self.disk = Disk(sim, params, rng, node_id)
        self.halted = False
        self.memory_failed = False

    @property
    def frames(self) -> range:
        return self.params.node_frame_range(self.node_id)

    def remap_frames(self) -> range:
        """The node-local frames backing the remap region.

        Every node resolves the remap region to the first few frames of
        its own memory slice, so the same virtual trap-vector addresses
        reach node-private storage on every node.
        """
        base = self.node_id * self.params.pages_per_node
        return range(base, base + REMAP_REGION_PAGES)

    def halt(self) -> None:
        """Fail-stop this node's processors."""
        self.halted = True
        for cpu in self.cpus:
            cpu.halted = True

    def revive(self) -> None:
        self.halted = False
        self.memory_failed = False
        for cpu in self.cpus:
            cpu.halted = False

    def check_running(self) -> None:
        if self.halted:
            raise NodeHalted(self.node_id)
