"""Physical memory: page-frame storage plus the memory fault model.

The physical address space is the concatenation of the node memories
(Figure 3.1 of the paper: "Each cell controls a portion of the global
physical address space").  Frame numbers are global; frame ``f`` is homed
on node ``f // pages_per_node``.

Page contents are real bytes so the evaluation can do what the paper did:
compare every file written by a workload against a reference copy after a
fault-injection run to check for silent corruption.  Pages are stored
sparsely; untouched frames read as zeros.

The fault model (Section 2) is implemented here:

* accesses to the memory of a **failed node** raise :class:`BusError`
  rather than stalling forever;
* writes are checked against the node's **firewall** and raise
  :class:`FirewallViolation` (a bus error) when rejected;
* a node whose **memory cutoff** is engaged refuses all remote accesses —
  the cell panic path uses this to stop exporting potentially corrupt
  data (Table 8.1);
* only nodes *authorized by the firewall* can damage a line: on node
  failure, the set of potentially lost data is bounded (the recovery code
  relies on this to know what can be trusted).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hardware.errors import (
    BusError,
    FirewallViolation,
    InvalidPhysicalAddress,
)
from repro.hardware.firewall import NodeFirewall
from repro.hardware.params import HardwareParams

ZERO_PAGE = b"\x00" * 4096


class PhysicalMemory:
    """All of main memory, with per-node failure state and firewalls."""

    __slots__ = (
        "params", "firewall_enabled", "firewalls", "_pages",
        "_failed_nodes", "_cutoff_nodes", "_total_pages",
        "_pages_per_node", "_cpus_per_node", "_any_faults",
        "_node_state", "fault_gen", "_zero",
    )

    def __init__(self, params: HardwareParams,
                 firewall_factory=NodeFirewall,
                 firewall_enabled: bool = True):
        self.params = params
        self.firewall_enabled = firewall_enabled
        self.firewalls: List[NodeFirewall] = [
            firewall_factory(params, node) for node in range(params.num_nodes)
        ]
        self._pages: Dict[int, bytes] = {}
        self._failed_nodes: set[int] = set()
        self._cutoff_nodes: set[int] = set()
        # Hot-path scalars: the dataclass properties behind these
        # recompute on every access, and the access-check path runs on
        # every simulated memory reference.
        self._total_pages = params.total_pages
        self._pages_per_node = params.pages_per_node
        self._cpus_per_node = params.cpus_per_node
        #: False while no node is failed or cut off — the coherence fast
        #: path checks this one flag instead of two sets per access.
        self._any_faults = False
        #: monotone fault-topology generation: bumps on every node
        #: fail/revive/cutoff transition, so memo-peek caches keyed on
        #: (directory mutation_gen, fault_gen) stay sound across runs
        #: where a failed node lingers in the topology.
        self.fault_gen = 0
        #: per-node fault state (0 healthy, 1 failed, 2 cutoff): one list
        #: index on the degraded-machine path instead of set probes.
        self._node_state = [0] * params.num_nodes
        if params.page_size != len(ZERO_PAGE):
            self._zero = b"\x00" * params.page_size
        else:
            self._zero = ZERO_PAGE

    # -- failure state -------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Fail-stop the memory of ``node`` (node halt or range failure)."""
        self._failed_nodes.add(node)
        self._any_faults = True
        self._node_state[node] = 1
        self.fault_gen += 1

    def revive_node(self, node: int) -> None:
        """Bring a node's memory back after diagnostics pass (reintegration).

        The contents are cleared — the paper's recovery model treats the
        failed node's data as lost — and the firewall resets to local-only.
        """
        self._failed_nodes.discard(node)
        self._cutoff_nodes.discard(node)
        self._any_faults = bool(self._failed_nodes or self._cutoff_nodes)
        self._node_state[node] = 0
        self.fault_gen += 1
        self.firewalls[node].reset()
        # Bulk-clear the node's resident pages: select the keys inside
        # the node's frame range vectorized instead of probing all
        # ``pages_per_node`` frames one by one.
        if self._pages:
            frame_range = self.params.node_frame_range(node)
            keys = np.fromiter(self._pages.keys(), dtype=np.int64,
                               count=len(self._pages))
            resident = keys[(keys >= frame_range.start)
                            & (keys < frame_range.stop)]
            for frame in resident.tolist():
                del self._pages[frame]

    def node_failed(self, node: int) -> bool:
        return node in self._failed_nodes

    def engage_cutoff(self, node: int) -> None:
        """Cut off all *remote* access to this node's memory (cell panic)."""
        self._cutoff_nodes.add(node)
        self._any_faults = True
        self.fault_gen += 1
        # A node can be both failed and cut off; failed takes precedence.
        if self._node_state[node] == 0:
            self._node_state[node] = 2

    def cutoff_engaged(self, node: int) -> bool:
        return node in self._cutoff_nodes

    # -- access checks ---------------------------------------------------

    def _home_node(self, frame: int) -> int:
        if not 0 <= frame < self._total_pages:
            raise InvalidPhysicalAddress(frame * self.params.page_size)
        return frame // self._pages_per_node

    def _check_readable(self, frame: int, reader_cpu: Optional[int]) -> int:
        if not 0 <= frame < self._total_pages:
            raise InvalidPhysicalAddress(frame * self.params.page_size)
        home = frame // self._pages_per_node
        # Fast path: a healthy machine has no failed/cutoff nodes.
        if not self._any_faults:
            return home
        state = self._node_state[home]
        if state == 0:
            return home
        if state == 1 or home in self._failed_nodes:
            raise BusError(
                f"read of frame {frame}: node {home} failed",
                addr=frame * self.params.page_size, node=home,
            )
        if reader_cpu is not None:
            reader_node = reader_cpu // self._cpus_per_node
            if reader_node != home:
                raise BusError(
                    f"read of frame {frame}: node {home} cutoff engaged",
                    addr=frame * self.params.page_size, node=home,
                )
        return home

    def _check_writable(self, frame: int, writer_cpu: Optional[int]) -> int:
        home = self._check_readable(frame, writer_cpu)
        if writer_cpu is not None:
            writer_node = writer_cpu // self._cpus_per_node
            if writer_node in self._failed_nodes:
                raise BusError(
                    f"write by cpu {writer_cpu}: its node has failed",
                    node=writer_node,
                )
            if self.firewall_enabled:
                self.firewalls[home].check_write(frame, writer_cpu)
        return home

    # -- data access -------------------------------------------------------
    #
    # ``cpu=None`` marks accesses by the simulation harness itself (e.g.
    # the post-run file comparison) which bypass permission checks but not
    # failure checks.

    def read_page(self, frame: int, cpu: Optional[int] = None) -> bytes:
        self._check_readable(frame, cpu)
        return self._pages.get(frame, self._zero)

    def write_page(self, frame: int, data: bytes, cpu: Optional[int] = None) -> None:
        if len(data) != self.params.page_size:
            raise ValueError(
                f"page write must be exactly {self.params.page_size} bytes"
            )
        self._check_writable(frame, cpu)
        if data == self._zero:
            self._pages.pop(frame, None)
        else:
            self._pages[frame] = bytes(data)

    def write_bytes(self, frame: int, offset: int, data: bytes,
                    cpu: Optional[int] = None) -> None:
        """Sub-page write (the granularity at which wild writes strike)."""
        if offset < 0 or offset + len(data) > self.params.page_size:
            raise ValueError("sub-page write out of bounds")
        self._check_writable(frame, cpu)
        page = bytearray(self._pages.get(frame, self._zero))
        page[offset:offset + len(data)] = data
        self._pages[frame] = bytes(page)

    def read_bytes(self, frame: int, offset: int, length: int,
                   cpu: Optional[int] = None) -> bytes:
        if offset < 0 or offset + length > self.params.page_size:
            raise ValueError("sub-page read out of bounds")
        self._check_readable(frame, cpu)
        return self._pages.get(frame, self._zero)[offset:offset + length]

    def zero_page(self, frame: int, cpu: Optional[int] = None) -> None:
        self._check_writable(frame, cpu)
        self._pages.pop(frame, None)

    # -- bulk data access --------------------------------------------------

    def read_pages(self, frames, cpu: Optional[int] = None) -> List[bytes]:
        """Read a batch of pages; equivalent to ``read_page`` per frame.

        On a healthy machine the per-frame fault checks collapse to one
        vectorized range check; under faults the scalar loop preserves
        the raise position of the sequential form.
        """
        frame_list = [int(f) for f in frames]
        if not frame_list:
            return []
        if self._any_faults:
            return [self.read_page(f, cpu) for f in frame_list]
        arr = np.asarray(frame_list, dtype=np.int64)
        if bool((arr < 0).any()) or bool((arr >= self._total_pages).any()):
            # Raise from the first offending frame, like the scalar loop.
            return [self.read_page(f, cpu) for f in frame_list]
        pages = self._pages
        zero = self._zero
        return [pages.get(f, zero) for f in frame_list]

    def write_pages(self, frames, datas, cpu: Optional[int] = None) -> None:
        """Write a batch of pages; equivalent to ``write_page`` per frame.

        The scalar loop's partial-completion semantics are preserved: a
        failing frame leaves every earlier write applied and raises at
        the same position.
        """
        frame_list = [int(f) for f in frames]
        if len(frame_list) != len(datas):
            raise ValueError("frames and datas must have the same length")
        page_size = self.params.page_size
        healthy = not self._any_faults
        if healthy and frame_list:
            arr = np.asarray(frame_list, dtype=np.int64)
            if bool((arr < 0).any()) or bool((arr >= self._total_pages).any()):
                healthy = False  # scalar path raises at the right index
        if not healthy:
            for frame, data in zip(frame_list, datas):
                self.write_page(frame, data, cpu)
            return
        pages = self._pages
        zero = self._zero
        firewall_checked = self.firewall_enabled and cpu is not None
        pages_per_node = self._pages_per_node
        firewalls = self.firewalls
        for frame, data in zip(frame_list, datas):
            if len(data) != page_size:
                raise ValueError(
                    f"page write must be exactly {page_size} bytes"
                )
            if firewall_checked:
                firewalls[frame // pages_per_node].check_write(frame, cpu)
            if data == zero:
                pages.pop(frame, None)
            else:
                pages[frame] = bytes(data)

    # -- firewall convenience ----------------------------------------------

    def firewall_for_frame(self, frame: int) -> NodeFirewall:
        return self.firewalls[self._home_node(frame)]

    def write_allowed(self, frame: int, cpu: int) -> bool:
        """Would a write succeed?  (No latency, no side effects.)"""
        home = self._home_node(frame)
        if home in self._failed_nodes:
            return False
        if not self.firewall_enabled:
            return True
        return self.firewalls[home].allows(frame, cpu)

    def frames_writable_by_node(self, writer_node: int) -> List[int]:
        """All frames (on live nodes) writable by CPUs of ``writer_node``.

        Used by tests and benchmarks to audit firewall state; the OS-level
        preemptive discard does *not* use this global view — it must work
        from each cell's own records (Section 4.2).
        """
        out: List[int] = []
        cpu0 = writer_node * self.params.cpus_per_node
        for node in range(self.params.num_nodes):
            if node == writer_node or node in self._failed_nodes:
                continue
            for frame in self.firewalls[node].remote_writable_frames():
                if self.firewalls[node].allows(frame, cpu0):
                    out.append(frame)
        return out
