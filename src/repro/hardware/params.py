"""Hardware latency and geometry parameters.

Values are taken from Section 7.2 of the paper wherever it states them;
the remainder (marked *derived*) are chosen so that composed operation
latencies land on the paper's measured figures (e.g. the 1.16 us careful
reference round trip and the 7.2 us null RPC).

All times are integer nanoseconds; all sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


@dataclass
class HardwareParams:
    """Tunable description of the simulated FLASH machine."""

    # -- geometry ----------------------------------------------------
    num_nodes: int = 4
    cpus_per_node: int = 1
    memory_per_node: int = 32 * 1024 * 1024  # 32 MB (Section 7.2)
    page_size: int = 4096                    # firewall granularity (4.2)
    cache_line_size: int = 128               # secondary cache line
    firewall_bits: int = 64                  # write-permission vector width

    # -- processor ---------------------------------------------------
    cpu_mhz: int = 200
    #: one instruction per cycle when not stalled (Section 7.2)
    ns_per_cycle: float = 5.0

    # -- memory hierarchy --------------------------------------------
    l1_size: int = 32 * 1024
    l1_assoc: int = 2
    l2_size: int = 1024 * 1024
    l2_assoc: int = 2
    l2_hit_ns: int = 50          # first-level miss that hits in L2
    mem_latency_ns: int = 700    # fixed FLASH average miss latency
    #: extra coherence-controller latency for a firewall permission check
    #: on a remote ownership request.  Derived: the paper measured a 4.4 to
    #: 6.3 percent increase in average remote *write* miss latency, i.e.
    #: about 31-44 ns on the 700 ns miss.
    firewall_check_ns: int = 40
    #: latency to flip firewall bits via uncached writes to the coherence
    #: controller (Section 7.2 models a status change as uncached writes).
    firewall_update_ns: int = 200
    #: extra cost when *revoking* write permission: the controller must
    #: ensure all pending valid writebacks have been delivered.  FLASH had
    #: not finalized this; we model a conservative network round trip.
    firewall_revoke_extra_ns: int = 1_400

    # -- interconnect ------------------------------------------------
    ipi_latency_ns: int = 700    # interprocessor interrupt delivery
    sips_extra_ns: int = 300     # SIPS data available IPI + 300 ns
    sips_payload: int = 128      # one cache line per SIPS message
    sips_queue_depth: int = 16   # short receive queues per node (derived)
    mesh_hop_ns: int = 50        # per-hop component of remote access (derived)

    # -- uncached / device access -------------------------------------
    uncached_access_ns: int = 250  # PIO to a device register (derived)

    # -- disk (HP 97560, from Kotz et al. model) -----------------------
    disk_rpm: int = 4002
    disk_sectors_per_track: int = 72
    disk_sector_size: int = 512
    disk_cylinders: int = 1962
    disk_tracks_per_cylinder: int = 19
    disk_seek_base_ns: int = 2_500_000    # short-seek constant ~2.5 ms
    disk_seek_per_cyl_ns: int = 8_000     # long-seek slope
    disk_head_switch_ns: int = 1_600_000
    disk_controller_overhead_ns: int = 1_100_000
    disk_transfer_ns_per_byte: float = 434.0 / 512 * 1000  # ~2.3 MB/s media rate
    dma_occupancy_ns_per_byte: float = 0.08  # memory controller occupancy

    # -- derived helpers ----------------------------------------------
    def cycles(self, n: float) -> int:
        """Latency of n CPU cycles in ns."""
        return int(round(n * self.ns_per_cycle))

    @property
    def total_memory(self) -> int:
        return self.num_nodes * self.memory_per_node

    @property
    def pages_per_node(self) -> int:
        return self.memory_per_node // self.page_size

    @property
    def total_pages(self) -> int:
        return self.num_nodes * self.pages_per_node

    @property
    def total_cpus(self) -> int:
        return self.num_nodes * self.cpus_per_node

    def node_of_frame(self, frame: int) -> int:
        """Home node of a physical page frame number."""
        if not 0 <= frame < self.total_pages:
            raise ValueError(f"frame {frame} out of range")
        return frame // self.pages_per_node

    def node_of_addr(self, addr: int) -> int:
        if not 0 <= addr < self.total_memory:
            raise ValueError(f"address {addr:#x} out of range")
        return addr // self.memory_per_node

    def frame_of_addr(self, addr: int) -> int:
        return addr // self.page_size

    def node_frame_range(self, node: int) -> range:
        base = node * self.pages_per_node
        return range(base, base + self.pages_per_node)

    def sips_latency_ns(self) -> int:
        """End-to-end SIPS delivery: IPI plus data-access penalty."""
        return self.ipi_latency_ns + self.sips_extra_ns

    def min_intercell_latency_ns(self) -> int:
        """The fastest any hardware operation crosses a cell boundary.

        This is the authoritative conservative-synchronization lookahead
        for the sharded engine (``sim/shard.py``): no intercell channel
        op — remote miss, SIPS delivery, or firewall flip — can take
        effect in another cell sooner than this, so a shard that has
        drained its inputs up to time T is safe to advance to T plus
        this bound.  Derived, never hard-coded: the minimum of the
        remote-miss latency, the end-to-end SIPS delivery, and the
        firewall status-change cost.
        """
        return min(self.mem_latency_ns, self.sips_latency_ns(),
                   self.firewall_update_ns)

    # -- validation ---------------------------------------------------
    def validate(self) -> "HardwareParams":
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.memory_per_node % self.page_size:
            raise ValueError("node memory must be page aligned")
        if self.page_size % self.cache_line_size:
            raise ValueError("page size must be a line multiple")
        if self.num_nodes > self.firewall_bits * self.cpus_per_node:
            # On machines above 64 processors each firewall bit covers a
            # group of processors (Section 4.2); we support that but the
            # default config never needs it.
            pass
        return self


DEFAULT_PARAMS = HardwareParams()
