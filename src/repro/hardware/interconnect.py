"""The mesh interconnect connecting FLASH nodes.

Nodes are laid out on a 2-D mesh and packets are dimension-order routed.
The paper's machine model fixes the second-level miss latency at the FLASH
*average* of 700 ns, so by default latency is distance-independent; a
hop-sensitive mode exists for NUMA-placement experiments.

The FLASH memory fault model "guarantees that the network remains fully
connected with high probability (i.e. the operating system need not work
around network partitions)" — node failures here remove the node's
endpoints but never partition the mesh, and :meth:`Interconnect.is_connected`
lets tests assert that invariant.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.hardware.params import HardwareParams


class Interconnect:
    """Mesh geometry, routing distance, and message latency."""

    def __init__(self, params: HardwareParams, hop_sensitive: bool = False):
        self.params = params
        self.hop_sensitive = hop_sensitive
        self.width = max(1, int(math.ceil(math.sqrt(params.num_nodes))))
        self._failed: set[int] = set()
        self.messages_sent = 0

    # -- geometry -------------------------------------------------------

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.params.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def hops(self, src: int, dst: int) -> int:
        """Dimension-order routing distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    # -- latency ----------------------------------------------------------

    def miss_latency_ns(self, src_node: int, home_node: int) -> int:
        """Latency of a cache miss serviced by ``home_node``'s memory."""
        base = self.params.mem_latency_ns
        if not self.hop_sensitive or src_node == home_node:
            return base
        return base + self.hops(src_node, home_node) * self.params.mesh_hop_ns

    def ipi_latency_ns(self, src_node: int, dst_node: int) -> int:
        base = self.params.ipi_latency_ns
        if not self.hop_sensitive or src_node == dst_node:
            return base
        return base + self.hops(src_node, dst_node) * self.params.mesh_hop_ns

    # -- failure / connectivity --------------------------------------------

    def fail_node(self, node: int) -> None:
        self._failed.add(node)

    def revive_node(self, node: int) -> None:
        self._failed.discard(node)

    def live_nodes(self) -> List[int]:
        return [n for n in range(self.params.num_nodes) if n not in self._failed]

    def is_connected(self) -> bool:
        """True if all live nodes can still reach each other.

        A failed node's *router* keeps forwarding in FLASH (the fault model
        rules out partitions), so the live set is connected whenever it is
        non-empty; modelled here with an explicit reachability check over
        the full mesh so the invariant is verifiable rather than assumed.
        """
        import networkx as nx

        g = nx.Graph()
        for node in range(self.params.num_nodes):
            g.add_node(node)
        for node in range(self.params.num_nodes):
            x, y = self.coords(node)
            for nx_, ny_ in ((x + 1, y), (x, y + 1)):
                if nx_ < self.width:
                    other = ny_ * self.width + nx_
                    if other < self.params.num_nodes:
                        g.add_edge(node, other)
        live = self.live_nodes()
        if len(live) <= 1:
            return True
        # Routers of failed nodes still forward traffic.
        return all(
            nx.has_path(g, live[0], other) for other in live[1:]
        )
