"""Directory-based cache coherence with firewall permission checks.

Each node's coherence controller (MAGIC, in FLASH) keeps directory state
for the memory homed on the node and checks the firewall "on each request
for cache line ownership (read misses do not count as ownership requests)
and on most cache line writebacks" (Section 4.2).

The model tracks per-line sharing state sparsely, only for lines the
simulation actually touches, using a simplified MESI protocol:

* a line is either *unowned* (memory holds the only copy), *shared* by a
  set of CPUs, or *owned exclusively* (dirty) by one CPU;
* a read by a CPU that already caches the line is a cache hit (one cycle);
  any other read is a miss costing the 700 ns FLASH average (fetching from
  a dirty remote owner also downgrades the owner to shared and charges the
  firewall check the owner's writeback passes);
* a write by the exclusive owner is a hit; any other write is an ownership
  request: the firewall is checked at the line's home, sharers are
  invalidated, and the full miss latency is charged — plus the firewall
  check latency when the check is enabled.

Capacity and conflict evictions are not modelled at line granularity;
workload-level cache behaviour enters through per-workload miss-rate
parameters (:mod:`repro.workloads`).  Line-level state exists to make the
microbenchmarks honest: the careful-reference clock read really does miss
every tick because the remote cell really did write the line.

On a node failure the directory tells us exactly which lines' only
up-to-date copy was cached on the failed node — the set the memory fault
model says may be lost.  The fault model also guarantees this set only
contains lines the failed node was *authorized to write* (firewall), which
a property test asserts.

Directory state is doubly indexed for the failure paths: per-node sets of
owned and shared lines make ``frames_with_dirty_lines_owned_by_node`` and
``drop_node_cache_state`` O(lines the node actually touched) instead of
O(every line in the directory).  Entries whose state empties out (no
owner, no sharers) are pruned so the directory never grows monotonically
across reintegration rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import PhysicalMemory
from repro.hardware.params import HardwareParams
from repro.sim.stats import Histogram


class LineState:
    """Directory entry for one 128-byte line."""

    __slots__ = ("owner", "sharers")

    def __init__(self, owner: Optional[int] = None,
                 sharers: Optional[Set[int]] = None):
        self.owner = owner               # CPU holding the line dirty
        self.sharers: Set[int] = sharers if sharers is not None else set()

    def cached_by(self, cpu: int) -> bool:
        return cpu == self.owner or cpu in self.sharers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LineState(owner={self.owner}, sharers={self.sharers})"


@dataclass(slots=True)
class CoherenceStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    remote_write_misses: int = 0
    remote_write_miss_ns_total: int = 0
    invalidations: int = 0
    firewall_checks: int = 0

    @property
    def avg_remote_write_miss_ns(self) -> float:
        if not self.remote_write_misses:
            return 0.0
        return self.remote_write_miss_ns_total / self.remote_write_misses


class CoherenceController:
    """The machine-wide coherence fabric (one logical controller).

    Physically each node has its own controller; because directory state
    is keyed by line and firewalls are per-node objects, one fabric object
    with per-home-node routing is behaviourally identical and simpler.
    """

    __slots__ = (
        "params", "memory", "interconnect", "_lines", "_owner_lines",
        "_sharer_lines", "_page_size", "_total_pages", "_total_bytes",
        "_bytes_per_node", "_line_size", "_lines_per_page",
        "_pages_per_node", "_cpus_per_node", "_hit_latency",
        "_firewall_check_ns", "_mem_latency_ns", "stats",
        "remote_write_hist",
    )

    def __init__(self, params: HardwareParams, memory: PhysicalMemory,
                 interconnect: Interconnect):
        self.params = params
        self.memory = memory
        self.interconnect = interconnect
        self._lines: Dict[int, LineState] = {}
        # Per-node failure-path indexes: which lines a node's CPUs own
        # dirty / share.  Maintained on every ownership change so the
        # node-halt scans are O(touched lines), not O(directory).
        self._owner_lines: list = [set() for _ in range(params.num_nodes)]
        self._sharer_lines: list = [set() for _ in range(params.num_nodes)]
        # Hot-path scalars (the dataclass properties recompute per call).
        self._page_size = params.page_size
        self._total_pages = params.total_pages
        self._total_bytes = params.total_pages * params.page_size
        self._bytes_per_node = params.pages_per_node * params.page_size
        self._line_size = params.cache_line_size
        self._lines_per_page = params.page_size // params.cache_line_size
        self._pages_per_node = params.pages_per_node
        self._cpus_per_node = params.cpus_per_node
        self._hit_latency = params.cycles(1)
        self._firewall_check_ns = params.firewall_check_ns
        self._mem_latency_ns = params.mem_latency_ns
        self.stats = CoherenceStats()
        #: latency distribution of remote ownership requests (the traffic
        #: the firewall check sits on); buckets span the sub-us regime.
        self.remote_write_hist = Histogram(
            "remote_write_miss_ns",
            [200, 500, 700, 1_000, 1_500, 2_000, 5_000, 10_000])

    # -- helpers ------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr // self._line_size

    def _node_of_cpu(self, cpu: int) -> int:
        return cpu // self._cpus_per_node

    def _state(self, line: int) -> LineState:
        st = self._lines.get(line)
        if st is None:
            st = LineState()
            self._lines[line] = st
        return st

    def _hit_ns(self) -> int:
        return self._hit_latency

    # -- the access protocol --------------------------------------------

    def read(self, cpu: int, addr: int) -> int:
        """Read one line; returns the access latency in ns.

        Raises :class:`BusError` if the home node has failed or is cut off
        (delegated to the memory fault model).
        """
        # Touch the fault model: a read of failed memory bus-errors.
        # Healthy machine + in-range address cannot raise, so the call
        # (and the frame division) is skipped entirely on the fast path.
        # During a fault window most accesses still go to healthy homes;
        # probing the per-node state table inline keeps those off the
        # slow path too.
        mem = self.memory
        if mem._any_faults or addr >= self._total_bytes or addr < 0:
            if (addr >= self._total_bytes or addr < 0 or
                    mem._node_state[addr // self._bytes_per_node]):
                mem._check_readable(addr // self._page_size, cpu)
        line = addr // self._line_size
        stats = self.stats
        lines = self._lines
        try:
            st = lines[line]
        except KeyError:
            st = LineState()
            lines[line] = st
        else:
            if cpu == st.owner or cpu in st.sharers:
                stats.read_hits += 1
                return self._hit_latency
        stats.read_misses += 1
        src_node = cpu // self._cpus_per_node
        ic = self.interconnect
        if ic.hop_sensitive:
            latency = ic.miss_latency_ns(src_node, addr // self._bytes_per_node)
        else:
            latency = self._mem_latency_ns
        owner = st.owner
        if owner is not None and owner != cpu:
            # Dirty remote intervention: owner is downgraded to shared.
            # A writeback from the owner's cache passes a firewall check
            # ("and on most cache line writebacks", Section 4.2).
            if mem.firewall_enabled:
                stats.firewall_checks += 1
                latency += self._firewall_check_ns
            owner_node = owner // self._cpus_per_node
            self._owner_lines[owner_node].discard(line)
            st.sharers.add(owner)
            self._sharer_lines[owner_node].add(line)
            st.owner = None
        st.sharers.add(cpu)
        self._sharer_lines[src_node].add(line)
        return latency

    def write(self, cpu: int, addr: int) -> int:
        """Gain ownership of one line; returns the access latency in ns.

        Performs the firewall permission check that FLASH does on each
        ownership request; a rejected write raises
        :class:`~repro.hardware.errors.FirewallViolation`.
        """
        frame = addr // self._page_size
        line = addr // self._line_size
        stats = self.stats
        lines = self._lines
        try:
            st = lines[line]
        except KeyError:
            st = LineState()
            lines[line] = st
        else:
            if st.owner == cpu:
                stats.write_hits += 1
                return self._hit_latency
        # Ownership request: fault-model checks (failure + firewall).
        # When neither the home nor the writer's node is in a fault
        # state, only the firewall can reject, so call it directly
        # instead of going through the memory wrapper.
        mem = self.memory
        home_node = frame // self._pages_per_node
        src_node = cpu // self._cpus_per_node
        if mem._any_faults or frame >= self._total_pages or frame < 0:
            if (frame >= self._total_pages or frame < 0 or
                    mem._node_state[home_node] or mem._node_state[src_node]):
                mem._check_writable(frame, cpu)
            elif mem.firewall_enabled:
                mem.firewalls[home_node].check_write(frame, cpu)
        elif mem.firewall_enabled:
            mem.firewalls[home_node].check_write(frame, cpu)
        stats.write_misses += 1
        ic = self.interconnect
        if ic.hop_sensitive:
            latency = ic.miss_latency_ns(src_node, home_node)
        else:
            latency = self._mem_latency_ns
        if mem.firewall_enabled:
            stats.firewall_checks += 1
            latency += self._firewall_check_ns
        if src_node != home_node:
            stats.remote_write_misses += 1
            stats.remote_write_miss_ns_total += latency
            self.remote_write_hist.record(latency)
        cpus_per_node = self._cpus_per_node
        old_owner = st.owner
        sharers = st.sharers
        invalidated = len(sharers) - (1 if cpu in sharers else 0)
        if old_owner is not None and old_owner != cpu and \
                old_owner not in sharers:
            invalidated += 1
        stats.invalidations += invalidated
        if sharers:
            sharer_index = self._sharer_lines
            for sharer in sharers:
                sharer_index[sharer // cpus_per_node].discard(line)
            sharers.clear()
        if old_owner is not None:
            self._owner_lines[old_owner // cpus_per_node].discard(line)
        st.owner = cpu
        self._owner_lines[src_node].add(line)
        return latency

    # -- failure interaction -----------------------------------------------

    def frames_with_dirty_lines_owned_by_node(self, node: int) -> Set[int]:
        """Frames whose only up-to-date copy sits in ``node``'s caches.

        These are the lines the memory fault model declares lost when the
        node fails.  By construction (the firewall is checked on every
        ownership request) every such frame was writable by the node.
        O(lines the node owns) via the per-node owner index.
        """
        owned = self._owner_lines[node]
        if not owned:
            return set()
        lines_per_page = self._lines_per_page
        return {line // lines_per_page for line in owned}

    def drop_node_cache_state(self, node: int) -> None:
        """Forget all cache state of a failed/rebooted node's CPUs.

        Entries left with no owner and no sharers are removed entirely,
        so repeated failure/reintegration rounds cannot grow ``_lines``.
        """
        lo = node * self._cpus_per_node
        hi = lo + self._cpus_per_node
        lines = self._lines
        owned, self._owner_lines[node] = self._owner_lines[node], set()
        for line in owned:
            st = lines.get(line)
            if st is None:
                continue
            st.owner = None
            if not st.sharers:
                del lines[line]
        shared, self._sharer_lines[node] = self._sharer_lines[node], set()
        for line in shared:
            st = lines.get(line)
            if st is None:
                continue
            st.sharers = {c for c in st.sharers if not lo <= c < hi}
            if st.owner is None and not st.sharers:
                del lines[line]

    def invalidate_frame(self, frame: int) -> None:
        """Invalidate every cached line of a frame (used by discard)."""
        self.invalidate_frames((frame,))

    def invalidate_frames(self, frames: Iterable[int]) -> None:
        """Batched :meth:`invalidate_frame` over many frames.

        One pass over the discard set with the per-line bookkeeping
        hoisted; invalidated entries are pruned from the directory.
        """
        lines_per_page = self._lines_per_page
        cpus_per_node = self._cpus_per_node
        lines = self._lines
        stats = self.stats
        owner_index = self._owner_lines
        sharer_index = self._sharer_lines
        for frame in frames:
            first = frame * lines_per_page
            for line in range(first, first + lines_per_page):
                st = lines.get(line)
                if st is None:
                    continue
                stats.invalidations += len(st.sharers)
                if st.owner is not None:
                    owner_index[st.owner // cpus_per_node].discard(line)
                for sharer in st.sharers:
                    sharer_index[sharer // cpus_per_node].discard(line)
                del lines[line]

    # -- introspection -----------------------------------------------------

    def directory_size(self) -> int:
        """Number of live directory entries (soak tests watch this)."""
        return len(self._lines)
