"""Directory-based cache coherence with firewall permission checks.

Each node's coherence controller (MAGIC, in FLASH) keeps directory state
for the memory homed on the node and checks the firewall "on each request
for cache line ownership (read misses do not count as ownership requests)
and on most cache line writebacks" (Section 4.2).

The model tracks per-line sharing state sparsely, only for lines the
simulation actually touches, using a simplified MESI protocol:

* a line is either *unowned* (memory holds the only copy), *shared* by a
  set of CPUs, or *owned exclusively* (dirty) by one CPU;
* a read by a CPU that already caches the line is a cache hit (one cycle);
  any other read is a miss costing the 700 ns FLASH average (fetching from
  a dirty remote owner also downgrades the owner to shared);
* a write by the exclusive owner is a hit; any other write is an ownership
  request: the firewall is checked at the line's home, sharers are
  invalidated, and the full miss latency is charged — plus the firewall
  check latency when the check is enabled.

Capacity and conflict evictions are not modelled at line granularity;
workload-level cache behaviour enters through per-workload miss-rate
parameters (:mod:`repro.workloads`).  Line-level state exists to make the
microbenchmarks honest: the careful-reference clock read really does miss
every tick because the remote cell really did write the line.

On a node failure the directory tells us exactly which lines' only
up-to-date copy was cached on the failed node — the set the memory fault
model says may be lost.  The fault model also guarantees this set only
contains lines the failed node was *authorized to write* (firewall), which
a property test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import PhysicalMemory
from repro.hardware.params import HardwareParams
from repro.sim.stats import Histogram


@dataclass
class LineState:
    """Directory entry for one 128-byte line."""

    owner: Optional[int] = None      # CPU holding the line dirty/exclusive
    sharers: Set[int] = field(default_factory=set)

    def cached_by(self, cpu: int) -> bool:
        return cpu == self.owner or cpu in self.sharers


@dataclass
class CoherenceStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    remote_write_misses: int = 0
    remote_write_miss_ns_total: int = 0
    invalidations: int = 0
    firewall_checks: int = 0

    @property
    def avg_remote_write_miss_ns(self) -> float:
        if not self.remote_write_misses:
            return 0.0
        return self.remote_write_miss_ns_total / self.remote_write_misses


class CoherenceController:
    """The machine-wide coherence fabric (one logical controller).

    Physically each node has its own controller; because directory state
    is keyed by line and firewalls are per-node objects, one fabric object
    with per-home-node routing is behaviourally identical and simpler.
    """

    def __init__(self, params: HardwareParams, memory: PhysicalMemory,
                 interconnect: Interconnect):
        self.params = params
        self.memory = memory
        self.interconnect = interconnect
        self._lines: Dict[int, LineState] = {}
        self.stats = CoherenceStats()
        #: latency distribution of remote ownership requests (the traffic
        #: the firewall check sits on); buckets span the sub-us regime.
        self.remote_write_hist = Histogram(
            "remote_write_miss_ns",
            [200, 500, 700, 1_000, 1_500, 2_000, 5_000, 10_000])

    # -- helpers ------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr // self.params.cache_line_size

    def _node_of_cpu(self, cpu: int) -> int:
        return cpu // self.params.cpus_per_node

    def _state(self, line: int) -> LineState:
        st = self._lines.get(line)
        if st is None:
            st = LineState()
            self._lines[line] = st
        return st

    def _hit_ns(self) -> int:
        return self.params.cycles(1)

    # -- the access protocol --------------------------------------------

    def read(self, cpu: int, addr: int) -> int:
        """Read one line; returns the access latency in ns.

        Raises :class:`BusError` if the home node has failed or is cut off
        (delegated to the memory fault model).
        """
        frame = self.params.frame_of_addr(addr)
        # Touch the fault model: a read of failed memory bus-errors.
        self.memory._check_readable(frame, cpu)
        line = self._line_of(addr)
        st = self._state(line)
        if st.cached_by(cpu):
            self.stats.read_hits += 1
            return self._hit_ns()
        self.stats.read_misses += 1
        src_node = self._node_of_cpu(cpu)
        home_node = self.params.node_of_addr(addr)
        latency = self.interconnect.miss_latency_ns(src_node, home_node)
        if st.owner is not None and st.owner != cpu:
            # Dirty remote intervention: owner is downgraded to shared.
            # A writeback from the owner's cache passes a firewall check
            # ("and on most cache line writebacks", Section 4.2).
            if self.memory.firewall_enabled:
                self.stats.firewall_checks += 1
                latency += self.params.firewall_check_ns
            st.sharers.add(st.owner)
            st.owner = None
        st.sharers.add(cpu)
        return latency

    def write(self, cpu: int, addr: int) -> int:
        """Gain ownership of one line; returns the access latency in ns.

        Performs the firewall permission check that FLASH does on each
        ownership request; a rejected write raises
        :class:`~repro.hardware.errors.FirewallViolation`.
        """
        frame = self.params.frame_of_addr(addr)
        line = self._line_of(addr)
        st = self._state(line)
        if st.owner == cpu:
            self.stats.write_hits += 1
            return self._hit_ns()
        # Ownership request: fault-model checks (failure + firewall).
        self.memory._check_writable(frame, cpu)
        self.stats.write_misses += 1
        src_node = self._node_of_cpu(cpu)
        home_node = self.params.node_of_addr(addr)
        latency = self.interconnect.miss_latency_ns(src_node, home_node)
        if self.memory.firewall_enabled:
            self.stats.firewall_checks += 1
            latency += self.params.firewall_check_ns
        if src_node != home_node:
            self.stats.remote_write_misses += 1
            self.stats.remote_write_miss_ns_total += latency
            self.remote_write_hist.record(latency)
        invalidated = {c for c in st.sharers if c != cpu}
        if st.owner is not None and st.owner != cpu:
            invalidated.add(st.owner)
        self.stats.invalidations += len(invalidated)
        st.sharers.clear()
        st.owner = cpu
        return latency

    # -- failure interaction -----------------------------------------------

    def frames_with_dirty_lines_owned_by_node(self, node: int) -> Set[int]:
        """Frames whose only up-to-date copy sits in ``node``'s caches.

        These are the lines the memory fault model declares lost when the
        node fails.  By construction (the firewall is checked on every
        ownership request) every such frame was writable by the node.
        """
        lo = node * self.params.cpus_per_node
        hi = lo + self.params.cpus_per_node
        frames: Set[int] = set()
        bytes_per_line = self.params.cache_line_size
        for line, st in self._lines.items():
            if st.owner is not None and lo <= st.owner < hi:
                frames.add((line * bytes_per_line) // self.params.page_size)
        return frames

    def drop_node_cache_state(self, node: int) -> None:
        """Forget all cache state of a failed/rebooted node's CPUs."""
        lo = node * self.params.cpus_per_node
        hi = lo + self.params.cpus_per_node
        for st in self._lines.values():
            if st.owner is not None and lo <= st.owner < hi:
                st.owner = None
            st.sharers = {c for c in st.sharers if not lo <= c < hi}

    def invalidate_frame(self, frame: int) -> None:
        """Invalidate every cached line of a frame (used by discard)."""
        page_size = self.params.page_size
        line_size = self.params.cache_line_size
        first = frame * page_size // line_size
        for line in range(first, first + page_size // line_size):
            st = self._lines.get(line)
            if st is not None:
                self.stats.invalidations += len(st.sharers)
                st.owner = None
                st.sharers.clear()
