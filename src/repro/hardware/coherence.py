"""Directory-based cache coherence with firewall permission checks.

Each node's coherence controller (MAGIC, in FLASH) keeps directory state
for the memory homed on the node and checks the firewall "on each request
for cache line ownership (read misses do not count as ownership requests)
and on most cache line writebacks" (Section 4.2).

The model tracks per-line sharing state sparsely, only for lines the
simulation actually touches, using a simplified MESI protocol:

* a line is either *unowned* (memory holds the only copy), *shared* by a
  set of CPUs, or *owned exclusively* (dirty) by one CPU;
* a read by a CPU that already caches the line is a cache hit (one cycle);
  any other read is a miss costing the 700 ns FLASH average (fetching from
  a dirty remote owner also downgrades the owner to shared and charges the
  firewall check the owner's writeback passes);
* a write by the exclusive owner is a hit; any other write is an ownership
  request: the firewall is checked at the line's home, sharers are
  invalidated, and the full miss latency is charged — plus the firewall
  check latency when the check is enabled.

Capacity and conflict evictions are not modelled at line granularity;
workload-level cache behaviour enters through per-workload miss-rate
parameters (:mod:`repro.workloads`).  Line-level state exists to make the
microbenchmarks honest: the careful-reference clock read really does miss
every tick because the remote cell really did write the line.

On a node failure the directory tells us exactly which lines' only
up-to-date copy was cached on the failed node — the set the memory fault
model says may be lost.  The fault model also guarantees this set only
contains lines the failed node was *authorized to write* (firewall), which
a property test asserts.

Directory state is doubly indexed for the failure paths: per-node sets of
owned and shared lines make ``frames_with_dirty_lines_owned_by_node`` and
``drop_node_cache_state`` O(lines the node actually touched) instead of
O(every line in the directory).  Entries whose state empties out (no
owner, no sharers) are pruned so the directory never grows monotonically
across reintegration rounds.

Batched access path
-------------------
:meth:`CoherenceController.access_batch` takes arrays of line indices and
read/write ops from one CPU and resolves the common case — healthy
machine, lines already cached with sufficient rights, firewall clear —
without the per-access Python round trip, falling back to the scalar
:meth:`read`/:meth:`write` path only for the residual lines.  Three tiers:

* large unique batches classify hits with **vectorized masks** against
  dense numpy mirrors of the directory's owner/sharer state (built
  lazily, maintained incrementally at every mutation site);
* small batches run a sequential loop with the hit checks inlined
  (byte-identical stats and latencies, just less interpreter overhead);
* :meth:`prepare_batch` / :meth:`access_prepared` additionally memoize a
  batch that resolved entirely as cache hits: per-node **mutation
  generation counters** prove the directory state the batch touched is
  unchanged, so an unchanged all-hit batch replays as one stats bump.

Every tier charges exactly the latencies the scalar path would, so event
counts, recovery records, and span exports are byte-identical whichever
path runs.  ``HIVE_BATCH=0`` in the environment forces the plain scalar
loop everywhere (the debugging escape hatch).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import PhysicalMemory
from repro.hardware.params import HardwareParams
from repro.sim.stats import Histogram

#: batches at least this large use the numpy mask classification; smaller
#: ones run the inlined sequential loop (numpy call overhead dominates
#: below a few dozen elements).
BATCH_VECTOR_MIN = 64


class LineState:
    """Directory entry for one 128-byte line."""

    __slots__ = ("owner", "sharers")

    def __init__(self, owner: Optional[int] = None,
                 sharers: Optional[Set[int]] = None):
        self.owner = owner               # CPU holding the line dirty
        self.sharers: Set[int] = sharers if sharers is not None else set()

    def cached_by(self, cpu: int) -> bool:
        return cpu == self.owner or cpu in self.sharers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LineState(owner={self.owner}, sharers={self.sharers})"


class PreparedBatch:
    """A validated (lines, ops) access pattern for repeated issue.

    Holds the batch in list form (no per-issue conversion cost) plus the
    set of home nodes its lines live on, and — when the last issue
    resolved entirely as cache hits — a memo of that outcome keyed by the
    home nodes' mutation generations.  The memo is sound because an
    all-hit batch has no side effects beyond hit counters, and any
    directory mutation on a home node bumps that node's generation.
    """

    __slots__ = ("lines", "ops", "home_nodes", "memo", "lines_arr",
                 "write_mask", "line_set", "memo_gen")

    def __init__(self, lines: List[int], ops: List[int],
                 home_nodes: Tuple[int, ...]):
        self.lines = lines
        self.ops = ops
        self.home_nodes = home_nodes
        #: (cpu, ((node, gen), ...), latency, read_hits, write_hits, n)
        self.memo: Optional[tuple] = None
        #: dense-mirror views for memo revalidation (see
        #: :meth:`CoherenceController._revalidate_memo`)
        self.lines_arr = np.asarray(lines, dtype=np.int64)
        self.write_mask = np.asarray(ops, dtype=bool)
        self.line_set = frozenset(lines)
        #: ``CoherenceController.mutation_gen`` when ``memo`` was built
        #: or last revalidated — the mutation-log scan starts there.
        self.memo_gen = 0


@dataclass(slots=True)
class CoherenceStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    remote_write_misses: int = 0
    remote_write_miss_ns_total: int = 0
    invalidations: int = 0
    firewall_checks: int = 0

    @property
    def avg_remote_write_miss_ns(self) -> float:
        if not self.remote_write_misses:
            return 0.0
        return self.remote_write_miss_ns_total / self.remote_write_misses


class CoherenceController:
    """The machine-wide coherence fabric (one logical controller).

    Physically each node has its own controller; because directory state
    is keyed by line and firewalls are per-node objects, one fabric object
    with per-home-node routing is behaviourally identical and simpler.
    """

    __slots__ = (
        "params", "memory", "interconnect", "_lines", "_owner_lines",
        "_sharer_lines", "_page_size", "_total_pages", "_total_bytes",
        "_bytes_per_node", "_line_size", "_lines_per_page",
        "_pages_per_node", "_cpus_per_node", "_hit_latency",
        "_firewall_check_ns", "_mem_latency_ns", "stats",
        "remote_write_hist", "batch_enabled", "_node_gen", "mutation_gen",
        "_mut_lines", "_mut_base",
        "_lines_per_node", "_total_lines", "_owner_arr", "_sharer_bits",
        "last_batch_completed", "tier_memo_hits", "tier_inline_batches",
        "tier_vector_batches", "tier_scalar_batches", "channels",
    )

    def __init__(self, params: HardwareParams, memory: PhysicalMemory,
                 interconnect: Interconnect):
        self.params = params
        self.memory = memory
        self.interconnect = interconnect
        self._lines: Dict[int, LineState] = {}
        # Per-node failure-path indexes: which lines a node's CPUs own
        # dirty / share.  Maintained on every ownership change so the
        # node-halt scans are O(touched lines), not O(directory).
        self._owner_lines: list = [set() for _ in range(params.num_nodes)]
        self._sharer_lines: list = [set() for _ in range(params.num_nodes)]
        # Hot-path scalars (the dataclass properties recompute per call).
        self._page_size = params.page_size
        self._total_pages = params.total_pages
        self._total_bytes = params.total_pages * params.page_size
        self._bytes_per_node = params.pages_per_node * params.page_size
        self._line_size = params.cache_line_size
        self._lines_per_page = params.page_size // params.cache_line_size
        self._pages_per_node = params.pages_per_node
        self._cpus_per_node = params.cpus_per_node
        self._hit_latency = params.cycles(1)
        self._firewall_check_ns = params.firewall_check_ns
        self._mem_latency_ns = params.mem_latency_ns
        self.stats = CoherenceStats()
        #: latency distribution of remote ownership requests (the traffic
        #: the firewall check sits on); buckets span the sub-us regime.
        self.remote_write_hist = Histogram(
            "remote_write_miss_ns",
            [200, 500, 700, 1_000, 1_500, 2_000, 5_000, 10_000])
        #: HIVE_BATCH=0 forces every batch API through the plain scalar
        #: loop (the debugging escape hatch; also settable per instance).
        self.batch_enabled = os.environ.get("HIVE_BATCH", "1") != "0"
        #: per-home-node directory mutation generations; any state change
        #: to a line homed on a node invalidates prepared-batch memos
        #: whose lines live there.
        self._node_gen: List[int] = [0] * params.num_nodes
        #: monotone summary of every ``_node_gen`` bump: while it (and
        #: the memory's fault generation) stands still, no valid batch
        #: memo can be invalidated — the shard/replay chains key their
        #: per-cycle peek caches on it.
        self.mutation_gen = 0
        #: the mutation log: entry ``g - _mut_base`` is the line mutated
        #: by generation bump ``g`` (-1 = every line, from
        #: :meth:`_bump_all_generations`).  Lets memo revalidation ask
        #: the exact question — "did any mutation since my build touch
        #: one of MY lines?" — in O(mutations since build) set probes.
        #: Trimmed from the front once it exceeds ~1M entries; memos
        #: older than ``_mut_base`` fall back to the dense-mirror check.
        self._mut_lines: List[int] = []
        self._mut_base = 0
        self._lines_per_node = self._bytes_per_node // self._line_size
        self._total_lines = self._total_bytes // self._line_size
        # Dense numpy mirrors of directory state for the vectorized
        # classification; built lazily by enable_batch_index() and then
        # maintained at every mutation site.  None until first needed.
        self._owner_arr: Optional[np.ndarray] = None
        self._sharer_bits: Optional[np.ndarray] = None
        #: accesses completed by the most recent batch call before it
        #: returned or raised (drivers use it to account partial batches).
        self.last_batch_completed = 0
        #: batch-tier attribution: which of the three HIVE_BATCH tiers
        #: (memo replay / inlined sequential / vectorized) resolved each
        #: batch, plus the HIVE_BATCH=0 scalar reference.  One increment
        #: per batch, so always-on costs ~1/batch-length per access.
        self.tier_memo_hits = 0
        self.tier_inline_batches = 0
        self.tier_vector_batches = 0
        self.tier_scalar_batches = 0
        #: optional intercell channel recorder (``sim/channels.py``).  A
        #: plain None slot like the provenance tracer: the hardware
        #: layer publishes cross-cell misses through it when attached
        #: and pays one attribute test per *miss* otherwise — hit paths
        #: never look at it (a hit never crosses a cell boundary).
        self.channels = None

    # -- helpers ------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr // self._line_size

    def _node_of_cpu(self, cpu: int) -> int:
        return cpu // self._cpus_per_node

    def _state(self, line: int) -> LineState:
        st = self._lines.get(line)
        if st is None:
            st = LineState()
            self._lines[line] = st
        return st

    def _hit_ns(self) -> int:
        return self._hit_latency

    # -- the access protocol --------------------------------------------

    def read(self, cpu: int, addr: int) -> int:
        """Read one line; returns the access latency in ns.

        Raises :class:`BusError` if the home node has failed or is cut off
        (delegated to the memory fault model).
        """
        # Touch the fault model: a read of failed memory bus-errors.
        # Healthy machine + in-range address cannot raise, so the call
        # (and the frame division) is skipped entirely on the fast path.
        # During a fault window most accesses still go to healthy homes;
        # probing the per-node state table inline keeps those off the
        # slow path too.
        mem = self.memory
        if mem._any_faults or addr >= self._total_bytes or addr < 0:
            if (addr >= self._total_bytes or addr < 0 or
                    mem._node_state[addr // self._bytes_per_node]):
                mem._check_readable(addr // self._page_size, cpu)
        line = addr // self._line_size
        stats = self.stats
        lines = self._lines
        try:
            st = lines[line]
        except KeyError:
            st = LineState()
            lines[line] = st
        else:
            if cpu == st.owner or cpu in st.sharers:
                stats.read_hits += 1
                return self._hit_latency
        stats.read_misses += 1
        src_node = cpu // self._cpus_per_node
        ic = self.interconnect
        if ic.hop_sensitive:
            latency = ic.miss_latency_ns(src_node, addr // self._bytes_per_node)
        else:
            latency = self._mem_latency_ns
        # A miss always mutates the directory entry (the CPU becomes a
        # sharer), so the home node's batch-memo generation advances.
        self._node_gen[line // self._lines_per_node] += 1
        self.mutation_gen += 1
        self._mut_lines.append(line)
        if len(self._mut_lines) > 1 << 20:
            self._trim_mut_log()
        mirror = self._sharer_bits
        owner = st.owner
        if owner is not None and owner != cpu:
            # Dirty remote intervention: owner is downgraded to shared.
            # A writeback from the owner's cache passes a firewall check
            # ("and on most cache line writebacks", Section 4.2).
            if mem.firewall_enabled:
                stats.firewall_checks += 1
                latency += self._firewall_check_ns
            owner_node = owner // self._cpus_per_node
            self._owner_lines[owner_node].discard(line)
            st.sharers.add(owner)
            self._sharer_lines[owner_node].add(line)
            st.owner = None
            if mirror is not None:
                self._owner_arr[line] = -1
                mirror[line] |= 1 << owner
        st.sharers.add(cpu)
        self._sharer_lines[src_node].add(line)
        if mirror is not None:
            mirror[line] |= 1 << cpu
        channels = self.channels
        if channels is not None:
            home_node = addr // self._bytes_per_node
            if home_node != src_node:
                channels.coherence_miss(src_node, home_node, False, latency)
        return latency

    def write(self, cpu: int, addr: int) -> int:
        """Gain ownership of one line; returns the access latency in ns.

        Performs the firewall permission check that FLASH does on each
        ownership request; a rejected write raises
        :class:`~repro.hardware.errors.FirewallViolation`.
        """
        frame = addr // self._page_size
        line = addr // self._line_size
        stats = self.stats
        lines = self._lines
        try:
            st = lines[line]
        except KeyError:
            st = LineState()
            lines[line] = st
        else:
            if st.owner == cpu:
                stats.write_hits += 1
                return self._hit_latency
        # Ownership request: fault-model checks (failure + firewall).
        # When neither the home nor the writer's node is in a fault
        # state, only the firewall can reject, so call it directly
        # instead of going through the memory wrapper.
        mem = self.memory
        home_node = frame // self._pages_per_node
        src_node = cpu // self._cpus_per_node
        if mem._any_faults or frame >= self._total_pages or frame < 0:
            if (frame >= self._total_pages or frame < 0 or
                    mem._node_state[home_node] or mem._node_state[src_node]):
                mem._check_writable(frame, cpu)
            elif mem.firewall_enabled:
                mem.firewalls[home_node].check_write(frame, cpu)
        elif mem.firewall_enabled:
            mem.firewalls[home_node].check_write(frame, cpu)
        stats.write_misses += 1
        ic = self.interconnect
        if ic.hop_sensitive:
            latency = ic.miss_latency_ns(src_node, home_node)
        else:
            latency = self._mem_latency_ns
        if mem.firewall_enabled:
            stats.firewall_checks += 1
            latency += self._firewall_check_ns
        if src_node != home_node:
            stats.remote_write_misses += 1
            stats.remote_write_miss_ns_total += latency
            self.remote_write_hist.record(latency)
            channels = self.channels
            if channels is not None:
                channels.coherence_miss(src_node, home_node, True, latency)
        cpus_per_node = self._cpus_per_node
        # Ownership changes hands: advance the home node's generation.
        self._node_gen[line // self._lines_per_node] += 1
        self.mutation_gen += 1
        self._mut_lines.append(line)
        if len(self._mut_lines) > 1 << 20:
            self._trim_mut_log()
        old_owner = st.owner
        sharers = st.sharers
        invalidated = len(sharers) - (1 if cpu in sharers else 0)
        if old_owner is not None and old_owner != cpu and \
                old_owner not in sharers:
            invalidated += 1
        stats.invalidations += invalidated
        if sharers:
            sharer_index = self._sharer_lines
            for sharer in sharers:
                sharer_index[sharer // cpus_per_node].discard(line)
            sharers.clear()
        if old_owner is not None:
            self._owner_lines[old_owner // cpus_per_node].discard(line)
        st.owner = cpu
        self._owner_lines[src_node].add(line)
        if self._sharer_bits is not None:
            self._sharer_bits[line] = 0
            self._owner_arr[line] = cpu
        return latency

    # -- the batched access path ---------------------------------------

    def _bump_all_generations(self) -> None:
        self._node_gen = [g + 1 for g in self._node_gen]
        self.mutation_gen += 1
        self._mut_lines.append(-1)
        if len(self._mut_lines) > 1 << 20:
            self._trim_mut_log()

    def _trim_mut_log(self) -> None:
        """Drop the older half of the mutation log (memory bound);
        memos built before the new base use the dense mirrors instead."""
        log = self._mut_lines
        half = len(log) // 2
        self._mut_lines = log[half:]
        self._mut_base += half

    def memo_gen_key(self, home_nodes) -> tuple:
        """Generation fingerprint over ``home_nodes``.

        A memo whose lines all live on these nodes cannot change
        validity while the fingerprint stands still: every directory
        mutation bumps the home node of the mutated line.  Lets callers
        scope staleness checks to the nodes they touch instead of the
        machine-global ``mutation_gen`` (which kernel traffic on other
        nodes churns constantly).
        """
        gens = self._node_gen
        return tuple(gens[n] for n in home_nodes)

    def enable_batch_index(self) -> bool:
        """Build the dense owner/sharer mirrors from the sparse directory.

        Returns False (and leaves the mirrors off) on machines wider than
        64 CPUs, where a uint64 sharer bitmask cannot name every CPU —
        those fall back to the sequential batch loop.
        """
        if self._owner_arr is not None:
            return True
        if self.params.total_cpus > 64:
            return False
        owner = np.full(self._total_lines, -1, dtype=np.int64)
        sharer = np.zeros(self._total_lines, dtype=np.uint64)
        for line, st in self._lines.items():
            if st.owner is not None:
                owner[line] = st.owner
            bits = 0
            for c in st.sharers:
                bits |= 1 << c
            sharer[line] = bits
        self._owner_arr = owner
        self._sharer_bits = sharer
        return True

    def verify_batch_index(self) -> List[str]:
        """Cross-check the dense mirrors against the sparse directory.

        Returns a list of human-readable mismatches (empty means the
        incremental maintenance is consistent); used by the golden tests.
        """
        if self._owner_arr is None:
            return []
        problems: List[str] = []
        owner = self._owner_arr
        sharer = self._sharer_bits
        seen = set()
        for line, st in self._lines.items():
            seen.add(line)
            want_owner = -1 if st.owner is None else st.owner
            if int(owner[line]) != want_owner:
                problems.append(
                    f"line {line}: mirror owner {int(owner[line])} != "
                    f"directory {want_owner}")
            bits = 0
            for c in st.sharers:
                bits |= 1 << c
            if int(sharer[line]) != bits:
                problems.append(
                    f"line {line}: mirror sharers {int(sharer[line]):#x} "
                    f"!= directory {bits:#x}")
        stale_owner = np.nonzero(owner != -1)[0]
        stale_share = np.nonzero(sharer != 0)[0]
        for line in set(stale_owner.tolist() + stale_share.tolist()):
            if line not in seen:
                problems.append(f"line {line}: mirror entry with no "
                                f"directory entry")
        return problems

    def tier_snapshot(self) -> Dict[str, int]:
        """Batch-tier attribution counters (see obs/profile.py)."""
        return {
            "memo_hits": self.tier_memo_hits,
            "inline_batches": self.tier_inline_batches,
            "vector_batches": self.tier_vector_batches,
            "scalar_batches": self.tier_scalar_batches,
        }

    def prepare_batch(self, lines: Sequence[int],
                      ops: Sequence[int]) -> PreparedBatch:
        """Validate an access pattern once for repeated issue.

        ``lines`` are global cache-line indices (``addr // line_size``)
        and ``ops`` are 0 for read / nonzero for write, one per line.
        """
        line_list = [int(x) for x in lines]
        op_list = [1 if o else 0 for o in ops]
        if len(line_list) != len(op_list):
            raise ValueError("lines and ops must have the same length")
        total = self._total_lines
        for line in line_list:
            if not 0 <= line < total:
                raise ValueError(f"line {line} out of range")
        per_node = self._lines_per_node
        homes = tuple(sorted({line // per_node for line in line_list}))
        return PreparedBatch(line_list, op_list, homes)

    def _revalidate_memo(self, cpu: int, prepared: PreparedBatch) -> bool:
        """Recheck a generation-stale all-hit memo against the dense
        directory mirrors; True means the memo was re-keyed to the
        current generations and may replay as-is.

        The per-node generations over-approximate invalidation: any
        miss on a home node drops every memo keyed there, even when
        none of *this* batch's lines changed hands.  Two exact checks,
        cheapest first: the mutation log answers "did any mutation
        since this memo's build touch one of MY lines?" in a handful of
        set probes; on overlap (or a trimmed log) the dense mirrors
        settle it — if every read line is still cached by ``cpu`` and
        every write line still owned exclusively, the batch still
        resolves all-hits with the same latency and hit counts, so only
        the memo's generation key needs refreshing.  Never attempted
        while a home node is in fault state (failures must force
        re-execution), and a refresh is not a directory mutation
        (``mutation_gen`` does not move).
        """
        mem = self.memory
        if mem._any_faults:
            state = mem._node_state
            for node in prepared.home_nodes:
                if state[node]:
                    return False
        start = prepared.memo_gen
        end = self.mutation_gen
        base = self._mut_base
        valid = False
        if start >= base and end - start <= 512:
            log = self._mut_lines
            lset = prepared.line_set
            valid = True
            for idx in range(start - base, end - base):
                mutated = log[idx]
                if mutated < 0 or mutated in lset:
                    valid = False
                    break
        if not valid:
            if self._owner_arr is None and not self.enable_batch_index():
                return False
            lines = prepared.lines_arr
            owns = self._owner_arr[lines] == cpu
            if not owns.all():
                cached = owns | (((self._sharer_bits[lines]
                                   >> np.uint64(cpu))
                                  & np.uint64(1)).astype(bool))
                if not bool(np.all(np.where(prepared.write_mask, owns,
                                            cached))):
                    return False
        memo = prepared.memo
        gens = self._node_gen
        prepared.memo = (
            cpu, tuple((n, gens[n]) for n in prepared.home_nodes),
            memo[2], memo[3], memo[4], memo[5])
        prepared.memo_gen = end
        return True

    def access_prepared(self, cpu: int, prepared: PreparedBatch) -> int:
        """Issue a prepared batch; returns the summed access latency.

        Identical to issuing each access through :meth:`read`/
        :meth:`write` in order (same stats, same latency, same exception
        at the same position — ``last_batch_completed`` reports progress
        when one raises).  When the batch last resolved entirely as
        cache hits and no directory mutation has touched its home nodes
        since, the memoized outcome replays in O(1).  The memo is only
        recorded — and only replays — while every home node the batch
        touches is in fault state 0, so a node failure or cutoff between
        issues always forces re-execution.
        """
        if not self.batch_enabled:
            return self._batch_seq(cpu, prepared.lines, prepared.ops)
        memo = prepared.memo
        if memo is not None and memo[0] == cpu:
            mem = self.memory
            pairs = memo[1]
            if len(pairs) == 1:
                # Single home node (the common bench shape: one cell's
                # frames live on one node) — skip the loop machinery.
                node, gen = pairs[0]
                fresh = (self._node_gen[node] == gen
                         and not (mem._any_faults and mem._node_state[node]))
            else:
                faulty = mem._any_faults
                gens = self._node_gen
                state = mem._node_state
                fresh = True
                for node, gen in pairs:
                    if gens[node] != gen or (faulty and state[node]):
                        fresh = False
                        break
            if not fresh:
                # Generation-stale: the exact line-level recheck may
                # rescue the memo (node generations over-approximate).
                fresh = self._revalidate_memo(cpu, prepared)
            if fresh:
                self.tier_memo_hits += 1
                stats = self.stats
                stats.read_hits += memo[3]
                stats.write_hits += memo[4]
                self.last_batch_completed = memo[5]
                return memo[2]
        mem = self.memory
        faulty = mem._any_faults
        latency, all_hits, n_rh, n_wh = self._batch_inline(
            cpu, prepared.lines, prepared.ops)
        if all_hits and not (faulty and any(
                mem._node_state[n] for n in prepared.home_nodes)):
            gens = self._node_gen
            prepared.memo = (
                cpu, tuple((n, gens[n]) for n in prepared.home_nodes),
                latency, n_rh, n_wh, len(prepared.lines))
            prepared.memo_gen = self.mutation_gen
        else:
            prepared.memo = None
        return latency

    def peek_memo(self, cpu: int, prepared: PreparedBatch) -> Optional[tuple]:
        """Would :meth:`access_prepared` replay from the memo right now?

        Returns the memo's ``(latency, read_hits, write_hits)`` when the
        batch would resolve as a pure memo replay for ``cpu`` at this
        instant, else None.  No state is touched — this is the shard
        engine's validity probe: a chain of wakeups may only be replayed
        arithmetically (:meth:`replay_memo`) while every batch in the
        chain passes this check, and nothing can invalidate a memo
        between engine events (every directory or fault-state mutation
        happens inside one).
        """
        if not self.batch_enabled:
            return None
        memo = prepared.memo
        if memo is None or memo[0] != cpu:
            return None
        mem = self.memory
        gens = self._node_gen
        faulty = mem._any_faults
        state = mem._node_state
        for node, gen in memo[1]:
            if gens[node] != gen or (faulty and state[node]):
                if self._revalidate_memo(cpu, prepared):
                    return (memo[2], memo[3], memo[4])
                return None
        return (memo[2], memo[3], memo[4])

    def replay_memo(self, prepared: PreparedBatch, count: int) -> None:
        """Apply ``count`` memo replays of a batch in one step.

        Byte-equivalent to calling :meth:`access_prepared` ``count``
        times while :meth:`peek_memo` holds: the same stats cells move
        by the same amounts (``count`` memo-tier hits, ``count`` x the
        memoized hit counts) and ``last_batch_completed`` lands on the
        batch length exactly as each individual replay would leave it.
        """
        memo = prepared.memo
        self.tier_memo_hits += count
        stats = self.stats
        stats.read_hits += memo[3] * count
        stats.write_hits += memo[4] * count
        self.last_batch_completed = memo[5]

    def replay_memo_cycle(self, batches: Sequence[PreparedBatch],
                          counts: Sequence[int]) -> None:
        """Replay a whole cycle's memos at once (``counts[i]`` replays
        of ``batches[i]``).

        Byte-equivalent to calling :meth:`replay_memo` per batch — the
        same stats cells move by the same totals — with one stats
        update instead of one per batch (the replay engine's segment
        commit calls this once per park).
        """
        hits = rh = wh = 0
        last = None
        for prepared, count in zip(batches, counts):
            if not count:
                continue
            memo = prepared.memo
            hits += count
            rh += memo[3] * count
            wh += memo[4] * count
            last = memo[5]
        if last is None:
            return
        self.tier_memo_hits += hits
        stats = self.stats
        stats.read_hits += rh
        stats.write_hits += wh
        self.last_batch_completed = last

    def access_batch(self, cpu: int, lines, ops) -> int:
        """Batched :meth:`read`/:meth:`write`: arrays in, total ns out.

        Equivalent to the sequential scalar loop — same stats deltas,
        same summed latency, and (for the sequential/inline tiers) the
        same exception at the same batch position.  Large batches of
        distinct lines on a healthy machine classify cache hits with
        vectorized masks against the dense directory mirrors and take
        the scalar path only for the residual (miss) lines; a firewall
        peek first proves no write will be rejected, so a batch that
        would fault replays sequentially with exact scalar ordering.
        """
        arr_lines = np.asarray(lines, dtype=np.int64).ravel()
        arr_ops = np.asarray(ops, dtype=np.int64).ravel()
        if arr_lines.size != arr_ops.size:
            raise ValueError("lines and ops must have the same length")
        n = int(arr_lines.size)
        self.last_batch_completed = 0
        if n == 0:
            return 0
        mem = self.memory
        if not self.batch_enabled:
            return self._batch_seq(cpu, arr_lines.tolist(),
                                   arr_ops.tolist())
        if arr_lines.min() < 0 or arr_lines.max() >= self._total_lines:
            # Out-of-range lines must raise at the exact batch position
            # the scalar loop would; only the reference loop guarantees
            # that without assuming anything about the fault model.
            return self._batch_seq(cpu, arr_lines.tolist(),
                                   arr_ops.tolist())
        if (mem._any_faults or n < BATCH_VECTOR_MIN
                or self.interconnect.hop_sensitive
                or self.params.total_cpus > 64
                or np.unique(arr_lines).size != n):
            # Fault windows and repeated lines need sequential ordering
            # (state probes / intra-batch interaction); small batches
            # aren't worth the numpy round-trip.
            latency, _all_hits, _rh, _wh = self._batch_inline(
                cpu, arr_lines.tolist(), arr_ops.tolist())
            return latency
        if not self.enable_batch_index():
            latency, _all_hits, _rh, _wh = self._batch_inline(
                cpu, arr_lines.tolist(), arr_ops.tolist())
            return latency
        owner = self._owner_arr[arr_lines]
        sharer = self._sharer_bits[arr_lines]
        is_write = arr_ops != 0
        owns = owner == cpu
        cached = owns | (((sharer >> np.uint64(cpu))
                          & np.uint64(1)).astype(bool))
        read_hit = ~is_write & cached
        write_hit = is_write & owns
        residual = ~(read_hit | write_hit)
        if mem.firewall_enabled and bool((is_write & residual).any()):
            # Side-effect-free firewall peek over the write misses: if
            # any would be rejected, replay the whole batch sequentially
            # so counters and the raise position match the scalar path
            # exactly (nothing has been mutated or counted yet).
            wm_lines = arr_lines[is_write & residual]
            frames = (wm_lines // self._lines_per_page).tolist()
            firewalls = mem.firewalls
            pages_per_node = self._pages_per_node
            for frame in frames:
                if not firewalls[frame // pages_per_node].peek_allows(
                        frame, cpu):
                    latency, _all_hits, _rh, _wh = self._batch_inline(
                        cpu, arr_lines.tolist(), arr_ops.tolist())
                    return latency
        self.tier_vector_batches += 1
        n_rh = int(read_hit.sum())
        n_wh = int(write_hit.sum())
        stats = self.stats
        stats.read_hits += n_rh
        stats.write_hits += n_wh
        latency = (n_rh + n_wh) * self._hit_latency
        if bool(residual.any()):
            read_f = self.read
            write_f = self.write
            line_size = self._line_size
            for line, op in zip(arr_lines[residual].tolist(),
                                arr_ops[residual].tolist()):
                addr = line * line_size
                latency += write_f(cpu, addr) if op else read_f(cpu, addr)
        self.last_batch_completed = n
        return latency

    def _batch_seq(self, cpu: int, lines: Sequence[int],
                   ops: Sequence[int]) -> int:
        """Reference tier: the plain scalar loop (HIVE_BATCH=0 path)."""
        self.tier_scalar_batches += 1
        read_f = self.read
        write_f = self.write
        line_size = self._line_size
        latency = 0
        done = 0
        try:
            for line, op in zip(lines, ops):
                addr = line * line_size
                latency += write_f(cpu, addr) if op else read_f(cpu, addr)
                done += 1
        finally:
            self.last_batch_completed = done
        return latency

    def _batch_inline(self, cpu: int, lines: Sequence[int],
                      ops: Sequence[int]):
        """Sequential loop with the scalar hit checks inlined.

        Lines must be in range (callers validate).  A write hit is valid
        unconditionally (the scalar :meth:`write` checks ownership before
        the fault model); a read hit is valid whenever the line's home
        node is in fault state 0 (the scalar :meth:`read` consults the
        fault model first only for non-zero homes).  Everything else —
        misses, faulted homes — goes through the scalar methods, so
        ordering, raise positions, and stats match exactly.
        Returns ``(latency, all_hits, read_hits, write_hits)``.
        """
        directory = self._lines
        get = directory.get
        hit_ns = self._hit_latency
        read_f = self.read
        write_f = self.write
        line_size = self._line_size
        faulty = self.memory._any_faults
        node_state = self.memory._node_state
        lines_per_node = self._lines_per_node
        self.tier_inline_batches += 1
        n_rh = 0
        n_wh = 0
        latency = 0
        all_hits = True
        done = 0
        stats = self.stats
        try:
            for line, op in zip(lines, ops):
                st = get(line)
                if st is not None:
                    if op:
                        if st.owner == cpu:
                            n_wh += 1
                            latency += hit_ns
                            done += 1
                            continue
                    elif (cpu == st.owner or cpu in st.sharers) and not (
                            faulty and node_state[line // lines_per_node]):
                        n_rh += 1
                        latency += hit_ns
                        done += 1
                        continue
                all_hits = False
                addr = line * line_size
                latency += write_f(cpu, addr) if op else read_f(cpu, addr)
                done += 1
        finally:
            # Hits observed before an exception really happened; flush
            # them so counters match the scalar loop at the raise point.
            stats.read_hits += n_rh
            stats.write_hits += n_wh
            self.last_batch_completed = done
        return latency, all_hits, n_rh, n_wh

    # -- failure interaction -----------------------------------------------

    def frames_with_dirty_lines_owned_by_node(self, node: int) -> Set[int]:
        """Frames whose only up-to-date copy sits in ``node``'s caches.

        These are the lines the memory fault model declares lost when the
        node fails.  By construction (the firewall is checked on every
        ownership request) every such frame was writable by the node.
        O(lines the node owns) via the per-node owner index.
        """
        owned = self._owner_lines[node]
        if not owned:
            return set()
        lines_per_page = self._lines_per_page
        return {line // lines_per_page for line in owned}

    def drop_node_cache_state(self, node: int) -> None:
        """Forget all cache state of a failed/rebooted node's CPUs.

        Entries left with no owner and no sharers are removed entirely,
        so repeated failure/reintegration rounds cannot grow ``_lines``.
        """
        lo = node * self._cpus_per_node
        hi = lo + self._cpus_per_node
        # Failure/reintegration touches lines homed anywhere: advance
        # every node's generation (rare event, coarse bump is fine).
        self._bump_all_generations()
        mirror = self._sharer_bits
        lines = self._lines
        owned, self._owner_lines[node] = self._owner_lines[node], set()
        for line in owned:
            st = lines.get(line)
            if st is None:
                continue
            st.owner = None
            if mirror is not None:
                self._owner_arr[line] = -1
            if not st.sharers:
                del lines[line]
        shared, self._sharer_lines[node] = self._sharer_lines[node], set()
        if mirror is not None and shared:
            # Clear the failed node's CPUs out of the sharer bitmasks.
            keep_mask = (2 ** 64 - 1) ^ sum(1 << c for c in range(lo, hi))
            for line in shared:
                mirror[line] &= keep_mask
        for line in shared:
            st = lines.get(line)
            if st is None:
                continue
            st.sharers = {c for c in st.sharers if not lo <= c < hi}
            if st.owner is None and not st.sharers:
                del lines[line]

    def invalidate_frame(self, frame: int) -> None:
        """Invalidate every cached line of a frame (used by discard)."""
        self.invalidate_frames((frame,))

    def invalidate_frames(self, frames: Iterable[int]) -> None:
        """Batched :meth:`invalidate_frame` over many frames.

        One pass over the discard set with the per-line bookkeeping
        hoisted; invalidated entries are pruned from the directory.
        """
        lines_per_page = self._lines_per_page
        cpus_per_node = self._cpus_per_node
        lines = self._lines
        stats = self.stats
        owner_index = self._owner_lines
        sharer_index = self._sharer_lines
        mirror = self._sharer_bits
        self._bump_all_generations()
        for frame in frames:
            first = frame * lines_per_page
            for line in range(first, first + lines_per_page):
                st = lines.get(line)
                if st is None:
                    continue
                stats.invalidations += len(st.sharers)
                if st.owner is not None:
                    owner_index[st.owner // cpus_per_node].discard(line)
                for sharer in st.sharers:
                    sharer_index[sharer // cpus_per_node].discard(line)
                del lines[line]
                if mirror is not None:
                    mirror[line] = 0
                    self._owner_arr[line] = -1

    # -- introspection -----------------------------------------------------

    def directory_size(self) -> int:
        """Number of live directory entries (soak tests watch this)."""
        return len(self._lines)
