"""Model of the Stanford FLASH multiprocessor (substrate for Hive).

FLASH (Kuskin et al., ISCA 1994) is a CC-NUMA machine: nodes each hold a
processor with two-level caches, a slice of main memory, local I/O devices,
and a coherence controller (MAGIC), connected by a mesh network.  Hive's
reliance on the hardware is narrow and explicit — the *memory fault model* —
and that is exactly what this package implements:

* per-page **firewall** write-permission bit-vectors checked by the
  coherence controller on ownership requests and writebacks
  (:mod:`repro.hardware.firewall`);
* **bus errors** instead of hangs when accessing failed nodes or firewall-
  protected pages (:mod:`repro.hardware.memory`);
* the **SIPS** low-latency message-send primitive
  (:mod:`repro.hardware.sips`);
* a **memory cutoff** that a panicking cell uses to stop exporting
  potentially corrupt data, and a **remap region** giving each cell private
  trap vectors (:mod:`repro.hardware.node`, Table 8.1 of the paper);
* **fail-stop fault injection** at node granularity
  (:mod:`repro.hardware.faults`).

Latency constants follow Section 7.2 of the paper (200 MHz R4000-class
CPUs, 50 ns second-level hit, 700 ns remote miss, 700 ns IPI, SIPS =
IPI + 300 ns, HP 97560 disks).
"""

from repro.hardware.errors import (
    BusError,
    FirewallViolation,
    HardwareError,
    SipsQueueFull,
)
from repro.hardware.machine import Machine, MachineConfig
from repro.hardware.params import HardwareParams

__all__ = [
    "BusError",
    "FirewallViolation",
    "HardwareError",
    "HardwareParams",
    "Machine",
    "MachineConfig",
    "SipsQueueFull",
]
