"""The FLASH firewall: per-page write-permission bit-vectors.

Section 4.2 of the paper: "FLASH provides a separate firewall for each 4 KB
of memory, specified as a 64-bit vector where each bit grants write
permission to a processor. ... A write request to a page for which the
corresponding bit is not set fails with a bus error.  Only the local
processor can change the firewall bits for the memory of its node."

The firewall state for a node's memory lives in that node's coherence
controller, so it shares the fate of the node: when a node fails its
firewall state is unreachable, which is why preemptive discard cannot rely
on reading it after a failure (Section 4.2, "only one cell knows the
precise firewall status of that page").

This module also implements the two *rejected* design alternatives from
Section 4.2 — a single global-write bit per page, and a single processor
id per page — so the ablation benchmark can quantify why the bit-vector
was chosen.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.hardware.errors import FirewallViolation
from repro.hardware.params import HardwareParams


class NodeFirewall:
    """Firewall bit-vectors for the pages homed on one node.

    One instance per node, owned by that node's coherence controller.
    Permission vectors default to *local-only*: at reset, each page is
    writable by the processors of its home node and nobody else.
    """

    __slots__ = (
        "params", "node_id", "frames", "_cpu_group", "_local_mask",
        "_default_mask", "_vectors", "_remote_writable", "checks",
        "violations", "updates", "__dict__",
    )

    def __init__(self, params: HardwareParams, node_id: int):
        self.params = params
        self.node_id = node_id
        self.frames = params.node_frame_range(node_id)
        # CPU -> firewall bit is ``cpu // _cpu_group`` (Section 4.2's
        # grouping on machines wider than the vector).
        total, bits = params.total_cpus, params.firewall_bits
        self._cpu_group = 1 if total <= bits else (total + bits - 1) // bits
        self._local_mask = self._mask_for_node(node_id)
        #: reset value for pages with no explicit vector.  Starts as
        #: local-node-only; the owning kernel widens it at boot to cover
        #: every processor of its cell (all of a cell's CPUs may write
        #: the cell's own memory — the firewall defends *cell* borders).
        self._default_mask = self._local_mask
        # Sparse map frame -> bit vector; missing entries hold the
        # default.  Kept sparse because almost all pages are never
        # shared outside the cell.
        self._vectors: Dict[int, int] = {}
        # Index of frames whose vector reaches beyond the default mask,
        # in ``_vectors`` insertion order (a dict used as an ordered
        # set).  Maintained incrementally by ``_update`` so
        # ``remote_writable_frames`` is O(result), not O(#vectors).
        self._remote_writable: Dict[int, None] = {}
        self.checks = 0
        self.violations = 0
        self.updates = 0

    def set_default_mask_for_nodes(self, nodes, requester_node: int) -> None:
        """Boot-time configuration by the owning kernel: every processor
        of the given nodes (the cell) may write this node's pages."""
        if requester_node != self.node_id:
            raise PermissionError(
                "only the local processor configures its firewall")
        mask = self._local_mask
        for node in nodes:
            mask |= self._mask_for_node(node)
        self._default_mask = mask
        # The default defines what counts as "remote": rebuild the index
        # (boot-time only; the vector map is normally empty here).
        self._remote_writable = {
            frame: None for frame, vec in self._vectors.items()
            if vec & ~mask
        }

    # -- bit arithmetic ------------------------------------------------

    def _bit_for_cpu(self, cpu: int) -> int:
        # On machines larger than the vector width, each bit covers a
        # group of processors (Section 4.2).
        return cpu // self._cpu_group

    def _mask_for_node(self, node: int) -> int:
        mask = 0
        for local in range(self.params.cpus_per_node):
            cpu = node * self.params.cpus_per_node + local
            mask |= 1 << self._bit_for_cpu(cpu)
        return mask

    # -- queries --------------------------------------------------------

    def _check_frame(self, frame: int) -> None:
        if frame not in self.frames:
            raise ValueError(
                f"frame {frame} is not homed on node {self.node_id}"
            )

    def vector(self, frame: int) -> int:
        self._check_frame(frame)
        return self._vectors.get(frame, self._default_mask)

    def allows(self, frame: int, writer_cpu: int) -> bool:
        """Permission check performed on each ownership request."""
        self.checks += 1
        if frame not in self.frames:
            raise ValueError(
                f"frame {frame} is not homed on node {self.node_id}"
            )
        vec = self._vectors.get(frame, self._default_mask)
        return bool(vec & (1 << (writer_cpu // self._cpu_group)))

    def peek_allows(self, frame: int, writer_cpu: int) -> bool:
        """Side-effect-free :meth:`allows`: no counter bump, no range
        guard.  The batched access path uses it to prove that no write
        in a batch can be rejected *before* mutating any state, so a
        batch that would fault replays through the scalar path with
        counters and raise position identical to unbatched execution.
        """
        vec = self._vectors.get(frame, self._default_mask)
        return bool(vec & (1 << (writer_cpu // self._cpu_group)))

    def check_write(self, frame: int, writer_cpu: int) -> None:
        """Raise :class:`FirewallViolation` if the write is not permitted."""
        if not self.allows(frame, writer_cpu):
            self.violations += 1
            raise FirewallViolation(frame, writer_cpu)

    def remote_writable_frames(self) -> List[int]:
        """Frames whose vector grants write access beyond the owning cell.

        O(result): read straight off the incrementally-maintained index
        (same order as the old full scan of ``_vectors``).
        """
        return list(self._remote_writable)

    # -- updates (local processor only) ----------------------------------

    def _update(self, frame: int, requester_node: int, new_vector: int) -> None:
        if requester_node != self.node_id:
            raise PermissionError(
                "only the local processor can change firewall bits "
                f"(node {requester_node} tried to update node {self.node_id})"
            )
        self._check_frame(frame)
        self.updates += 1
        if new_vector == self._default_mask:
            self._vectors.pop(frame, None)
            self._remote_writable.pop(frame, None)
        else:
            self._vectors[frame] = new_vector
            if new_vector & ~self._default_mask:
                if frame not in self._remote_writable:
                    self._remote_writable[frame] = None
            else:
                self._remote_writable.pop(frame, None)

    def grant_node(self, frame: int, requester_node: int, grantee_node: int) -> None:
        """Grant write permission to every processor of ``grantee_node``.

        Hive's management policy grants access "to all processors of a cell
        as a group" so the cell can reschedule freely (Section 4.2); cells
        are node-aligned, so node-granularity grants compose into cell
        grants at the OS layer.
        """
        vec = self.vector(frame) | self._mask_for_node(grantee_node)
        self._update(frame, requester_node, vec)

    def revoke_node(self, frame: int, requester_node: int, revokee_node: int) -> None:
        vec = self.vector(frame) & ~self._mask_for_node(revokee_node)
        vec |= self._default_mask  # the owning cell always retains access
        self._update(frame, requester_node, vec)

    def revoke_all_remote(self, frame: int, requester_node: int) -> None:
        self._update(frame, requester_node, self._default_mask)

    # -- bulk operations ---------------------------------------------------

    def _check_frames_bulk(self, frames: np.ndarray) -> None:
        lo, hi = self.frames.start, self.frames.stop
        if frames.size and not bool(((frames >= lo) & (frames < hi)).all()):
            bad = int(frames[(frames < lo) | (frames >= hi)][0])
            raise ValueError(
                f"frame {bad} is not homed on node {self.node_id}"
            )

    def bulk_grant_node(self, frames: Iterable[int], requester_node: int,
                        grantee_node: int) -> None:
        """Grant a node write access on a whole batch of frames at once.

        Equivalent to ``grant_node`` per frame but with a single
        vectorized range check and one index pass.
        """
        if requester_node != self.node_id:
            raise PermissionError(
                "only the local processor can change firewall bits "
                f"(node {requester_node} tried to update node {self.node_id})"
            )
        arr = np.fromiter(frames, dtype=np.int64)
        self._check_frames_bulk(arr)
        mask = self._mask_for_node(grantee_node)
        default = self._default_mask
        vectors = self._vectors
        remote = self._remote_writable
        not_default = ~default
        for frame in arr.tolist():
            vec = vectors.get(frame, default) | mask
            if vec == default:
                vectors.pop(frame, None)
                remote.pop(frame, None)
                continue
            vectors[frame] = vec
            if vec & not_default:
                if frame not in remote:
                    remote[frame] = None
            else:
                remote.pop(frame, None)
        self.updates += int(arr.size)

    def bulk_revoke_all_remote(self, frames: Iterable[int],
                               requester_node: int) -> None:
        """Reset a whole batch of frames to the default vector at once."""
        if requester_node != self.node_id:
            raise PermissionError(
                "only the local processor can change firewall bits "
                f"(node {requester_node} tried to update node {self.node_id})"
            )
        arr = np.fromiter(frames, dtype=np.int64)
        self._check_frames_bulk(arr)
        vectors = self._vectors
        remote = self._remote_writable
        for frame in arr.tolist():
            vectors.pop(frame, None)
            remote.pop(frame, None)
        self.updates += int(arr.size)

    def reset(self) -> None:
        """Return every page to the default vector (used on node reboot);
        the default itself returns to local-only until a kernel boots."""
        self._vectors.clear()
        self._remote_writable.clear()
        self._default_mask = self._local_mask


class SingleBitFirewall(NodeFirewall):
    """Rejected alternative: one *global write* bit per page.

    "A single bit per page, granting global write access, would provide no
    fault containment for processes that use any remote memory"
    (Section 4.2).  Granting any remote node makes the page writable by
    *everyone*; the ablation benchmark measures the blast radius this
    causes under preemptive discard.
    """

    def grant_node(self, frame: int, requester_node: int, grantee_node: int) -> None:
        if grantee_node == self.node_id:
            return
        all_mask = (1 << self.params.firewall_bits) - 1
        self._update(frame, requester_node, all_mask)

    def revoke_node(self, frame: int, requester_node: int, revokee_node: int) -> None:
        # With one bit there is no per-node revocation: permission returns
        # to local-only wholesale.
        self._update(frame, requester_node, self._local_mask)


class SingleProcessorFirewall(NodeFirewall):
    """Rejected alternative: a single processor id per page.

    "A byte or halfword per page, naming a processor with write access,
    would prevent the scheduler in each cell from balancing the load on
    its processors" (Section 4.2).  We model it as: a grant names exactly
    one remote *processor*; a second grant overwrites the first.  The
    ablation benchmark counts the forced firewall updates this creates
    when a cell reschedules a writing process onto another CPU.
    """

    def grant_cpu(self, frame: int, requester_node: int, grantee_cpu: int) -> None:
        vec = self._local_mask | (1 << self._bit_for_cpu(grantee_cpu))
        self._update(frame, requester_node, vec)

    def grant_node(self, frame: int, requester_node: int, grantee_node: int) -> None:
        # Node-wide grants are impossible; grant the node's first CPU and
        # let the OS discover the restriction.
        first_cpu = grantee_node * self.params.cpus_per_node
        self.grant_cpu(frame, requester_node, first_cpu)
