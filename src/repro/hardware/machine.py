"""The assembled machine: nodes, memory, coherence, interconnect, SIPS.

This is the single object kernels interact with.  It also carries the
machine-level fault operations (node halt, memory-range failure, revival
after diagnostics) whose semantics come from the FLASH memory fault model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.hardware.coherence import CoherenceController
from repro.hardware.firewall import NodeFirewall
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import PhysicalMemory
from repro.hardware.node import Node
from repro.hardware.params import HardwareParams
from repro.hardware.sips import SipsFabric
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass
class MachineConfig:
    """Everything needed to build a machine."""

    params: HardwareParams = None
    seed: int = 1995
    firewall_enabled: bool = True
    firewall_factory: type = NodeFirewall
    hop_sensitive_network: bool = False

    def __post_init__(self):
        if self.params is None:
            self.params = HardwareParams()
        self.params.validate()


class Machine:
    """A simulated FLASH multiprocessor."""

    def __init__(self, sim: Simulator, config: Optional[MachineConfig] = None):
        self.sim = sim
        self.config = config or MachineConfig()
        self.params = self.config.params
        self.rng = RandomStreams(self.config.seed)
        self.interconnect = Interconnect(
            self.params, hop_sensitive=self.config.hop_sensitive_network
        )
        self.memory = PhysicalMemory(
            self.params,
            firewall_factory=self.config.firewall_factory,
            firewall_enabled=self.config.firewall_enabled,
        )
        self.coherence = CoherenceController(
            self.params, self.memory, self.interconnect
        )
        self.sips = SipsFabric(self.sim, self.params, self.interconnect)
        self.nodes: List[Node] = [
            Node(self.params, n, sim=sim, rng=self.rng)
            for n in range(self.params.num_nodes)
        ]
        #: frames whose only valid copy died in a failed node's cache, as
        #: reported by the fault model at each failure (for audit/tests).
        self.lost_frames_log: List[Set[int]] = []
        #: optional intercell channel recorder (``sim/channels.py``);
        #: ``attach_channels`` sets it, kernel-layer publishers (the
        #: firewall manager) check it against None.
        self.channels = None

    # -- lookups --------------------------------------------------------

    def node_of_cpu(self, cpu: int) -> Node:
        return self.nodes[cpu // self.params.cpus_per_node]

    def cpu(self, cpu_id: int):
        return self.node_of_cpu(cpu_id).cpus[cpu_id % self.params.cpus_per_node]

    def live_node_ids(self) -> List[int]:
        return [n.node_id for n in self.nodes if not n.halted]

    # -- fault operations -------------------------------------------------

    def halt_node(self, node_id: int) -> Set[int]:
        """Fail-stop a node: processors halt and its memory slice fails.

        Returns the set of frames whose only up-to-date copy was cached on
        the node — the data the memory fault model says is lost.  Per the
        fault model, that set only contains frames the node was authorized
        to write.
        """
        node = self.nodes[node_id]
        lost = self.coherence.frames_with_dirty_lines_owned_by_node(node_id)
        node.halt()
        node.memory_failed = True
        self.memory.fail_node(node_id)
        self.sips.fail_node(node_id)
        self.interconnect.fail_node(node_id)
        self.coherence.drop_node_cache_state(node_id)
        self.lost_frames_log.append(lost)
        return lost

    def halt_processor_only(self, node_id: int) -> None:
        """Halt a node's processors but leave its memory serviceable.

        "Clock monitoring detects hardware failures that halt processors
        but not entire nodes" (Section 4.3) — this is that fault.
        """
        node = self.nodes[node_id]
        node.halt()
        self.sips.fail_node(node_id)

    def fail_memory_range(self, node_id: int) -> Set[int]:
        """Fail a node's memory while its processors keep running.

        Subsequent accesses to the range raise bus errors; the owning
        cell's kernel will panic when it touches its own memory.
        """
        lost = self.coherence.frames_with_dirty_lines_owned_by_node(node_id)
        self.nodes[node_id].memory_failed = True
        self.memory.fail_node(node_id)
        self.lost_frames_log.append(lost)
        return lost

    def engage_cutoff(self, node_id: int) -> None:
        """Memory cutoff: stop exporting this node's memory (cell panic)."""
        self.memory.engage_cutoff(node_id)

    def revive_node(self, node_id: int) -> None:
        """Reintegrate a node after hardware diagnostics pass."""
        node = self.nodes[node_id]
        node.revive()
        self.memory.revive_node(node_id)
        self.sips.revive_node(node_id)
        self.interconnect.revive_node(node_id)
        self.coherence.drop_node_cache_state(node_id)

    def run_diagnostics(self, node_id: int) -> bool:
        """Recovery-master hardware diagnostics on a failed node's hardware.

        Models the check as: the node's memory and router respond and the
        mesh is still connected.  Always true for the fail-stop faults we
        inject (the paper automatically reboots when diagnostics succeed).
        """
        return self.interconnect.is_connected()
