"""Hardware-level exception types (the memory fault model's error surface).

The FLASH memory fault model guarantees that accesses to failed memory or
firewall-protected pages terminate with a *bus error* rather than stalling
the processor indefinitely.  In this reproduction a bus error is a Python
exception raised synchronously at the access site; kernel code either
captures it (inside a careful-reference section) or escalates it to a cell
panic, mirroring Section 4.1 of the paper.
"""

from __future__ import annotations


class HardwareError(Exception):
    """Base class for all simulated hardware errors."""


class BusError(HardwareError):
    """An access terminated with a bus error.

    Raised when reading or writing the memory of a failed node, when a
    write violates the firewall, when a node's memory cutoff is engaged,
    or on uncached access to a remote cell's I/O devices.
    """

    def __init__(self, message: str, addr: int | None = None,
                 node: int | None = None):
        super().__init__(message)
        self.addr = addr
        self.node = node


class FirewallViolation(BusError):
    """A write was rejected by the firewall permission check.

    Subclasses :class:`BusError` because that is how the hardware reports
    it to the issuing processor (Section 4.2: "A write request to a page
    for which the corresponding bit is not set fails with a bus error").
    """

    def __init__(self, frame: int, writer_cpu: int):
        super().__init__(
            f"firewall rejected write to frame {frame} by cpu {writer_cpu}",
            addr=None,
        )
        self.frame = frame
        self.writer_cpu = writer_cpu


class SipsQueueFull(HardwareError):
    """A SIPS send found the destination receive queue full.

    The sender sees hardware flow control and must retry; the message is
    never silently dropped.
    """

    def __init__(self, dst_node: int, kind: str):
        super().__init__(f"SIPS {kind} queue full on node {dst_node}")
        self.dst_node = dst_node
        self.kind = kind


class NodeHalted(HardwareError):
    """An operation was attempted on a halted (fail-stopped) processor."""

    def __init__(self, node: int):
        super().__init__(f"node {node} is halted")
        self.node = node


class InvalidPhysicalAddress(HardwareError):
    """An access referenced an address outside the physical address space."""

    def __init__(self, addr: int):
        super().__init__(f"invalid physical address {addr:#x}")
        self.addr = addr
