"""RPC round-trip microbenchmark: round-trips/sec of the intercell path.

The throughput bench (:mod:`repro.bench.throughput`) drives the firewall
and coherence hot paths but performs zero RPC; this harness exercises the
other hot path the PR5 fast path targets — the full client/server RPC
round trip over SIPS (stub charges, pending registration, send, service
dispatch, reply completion, deadline cancellation).

Each cell runs a fixed number of client coroutines that call its
neighbour cell in a deterministic mix of interrupt-level pings, queued
pings, and oversize (by-reference) pings.  Everything simulated is
seed-deterministic; only wall clock varies.  ``run_rpc_bench`` can force
the fast path on or off (overriding ``HIVE_RPC_FAST``) so the CLI can
verify that both paths produce byte-identical RPC-semantic counters —
the same check PR4 applies to the batched coherence path.

``events_processed`` is deliberately *not* compared between fast and
slow: the fast path legitimately dispatches fewer engine events per
round trip (that is the point); what must not change is every simulated
RPC outcome — counts, latencies, sends, retries, and the finish time.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.hive import HiveSystem, boot_hive
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.sim.snapshot import SystemImage, snapshot_enabled

#: simulated quantities that must be identical between the fast and slow
#: RPC paths (and across repeats) for one (config, seed)
RPC_DETERMINISTIC_KEYS = (
    "round_trips", "sim_now_ns", "calls", "send_retries", "timeouts",
    "spin_timeouts", "queued", "queued_fallback", "served_interrupt",
    "served_queued", "latency_n", "latency_total_ns", "sips_sends",
    "flow_control_rejections",
)

#: per-subsystem counters summed across cells into the result row
_RPC_COUNTER_KEYS = ("calls", "send_retries", "timeouts", "spin_timeouts",
                     "queued", "queued_fallback", "served_interrupt",
                     "served_queued")


@dataclass(frozen=True)
class RpcBenchConfig:
    """One machine size for the fixed RPC scenario."""

    name: str
    num_nodes: int
    num_cells: int
    #: concurrent client coroutines per cell
    clients_per_cell: int
    #: round trips each client performs
    calls_per_client: int
    #: every Nth call goes through the queued service class
    queued_every: int = 5
    #: every Nth call sends oversize (by-reference) arguments
    oversize_every: int = 7


RPC_CONFIGS: Dict[str, RpcBenchConfig] = {
    "small": RpcBenchConfig(
        name="small", num_nodes=2, num_cells=2,
        clients_per_cell=2, calls_per_client=300),
    "medium": RpcBenchConfig(
        name="medium", num_nodes=4, num_cells=4,
        clients_per_cell=2, calls_per_client=500),
    "large": RpcBenchConfig(
        name="large", num_nodes=8, num_cells=8,
        clients_per_cell=2, calls_per_client=800),
}


def _client(cell, dst: int, cfg: RpcBenchConfig, counters: dict):
    """One client coroutine: a deterministic mix of round trips."""
    rpc = cell.rpc
    q_every = cfg.queued_every
    o_every = cfg.oversize_every
    for i in range(cfg.calls_per_client):
        if q_every and i % q_every == q_every - 1:
            yield from rpc.call(dst, "ping_queued", {})
        elif o_every and i % o_every == o_every - 1:
            yield from rpc.call(dst, "ping", {}, arg_bytes=512)
        else:
            yield from rpc.call(dst, "ping", {})
        counters["round_trips"] += 1
    return None


def boot_rpc_system(config: str, seed: int = 1995,
                    wheel: Optional[bool] = None) -> HiveSystem:
    """Boot the RPC scenario's machine (module-level, image-bootable)."""
    cfg = RPC_CONFIGS[config]
    params = HardwareParams(num_nodes=cfg.num_nodes)
    sim = Simulator(crash_on_process_error=False, wheel=wheel)
    return boot_hive(sim, num_cells=cfg.num_cells,
                     machine_config=MachineConfig(params=params,
                                                  seed=seed))


def run_rpc_bench(config: str, seed: int = 1995,
                  fast: Optional[bool] = None,
                  wheel: Optional[bool] = None,
                  system: Optional[HiveSystem] = None,
                  fork_wall_s: Optional[float] = None) -> dict:
    """Run the RPC scenario at one machine size; returns the result row.

    ``fast`` overrides the RPC fast path (None keeps the
    ``HIVE_RPC_FAST`` environment default); ``wheel`` likewise for the
    engine timer wheel.  The simulated counters are identical either
    way — only wall clock changes.  ``system`` runs against an
    already-booted (snapshot-forked) system — ``boot_wall_s`` is then 0
    and ``fork_wall_s`` records the fork cost the caller measured.
    """
    cfg = RPC_CONFIGS[config]
    if system is None:
        boot_wall0 = time.perf_counter()
        system = boot_rpc_system(config, seed=seed, wheel=wheel)
        boot_wall = time.perf_counter() - boot_wall0
    else:
        boot_wall = 0.0
    sim = system.sim
    params = system.machine.params
    registry = system.registry
    cells = [registry.cell_object(c) for c in range(cfg.num_cells)]
    if fast is not None:
        for cell in cells:
            cell.rpc.fast_enabled = fast
    counters = {"round_trips": 0}
    procs = []
    total_calls = 0
    for c, cell in enumerate(cells):
        dst = (c + 1) % cfg.num_cells
        for k in range(cfg.clients_per_cell):
            procs.append(sim.process(_client(cell, dst, cfg, counters),
                                     name=f"rpcbench{c}.{k}"))
            total_calls += cfg.calls_per_client
    done = sim.all_of(procs)
    # Bench deadline: every round trip crosses a cell boundary at least
    # twice, so no call can finish faster than twice the minimum
    # intercell latency — derive the give-up horizon from that hardware
    # floor instead of an ad-hoc constant.  1000x floor per call is far
    # beyond any real schedule (observed means are ~100x the floor).
    latency_floor_ns = 2 * params.min_intercell_latency_ns()
    deadline_ns = total_calls * latency_floor_ns * 1000
    # As in the throughput bench: cyclic GC cannot affect simulated
    # counters, so keep it out of the measured window.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        sim.run_until_event(done, deadline=sim.now + deadline_ns)
        wall = time.perf_counter() - wall0
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    if not done.triggered:
        raise RuntimeError(f"rpc bench {config!r} did not finish "
                           f"({counters['round_trips']}/{total_calls})")
    row = {
        "config": cfg.name,
        "nodes": cfg.num_nodes,
        "cells": cfg.num_cells,
        "seed": seed,
        "clients": cfg.num_cells * cfg.clients_per_cell,
        "boot_wall_s": round(boot_wall, 4),
        "fork_wall_s": round(fork_wall_s, 4) if fork_wall_s else 0.0,
        "wall_s": round(wall, 4),
        "round_trips": counters["round_trips"],
        "round_trips_per_sec": round(counters["round_trips"] / wall, 1),
        "sim_now_ns": sim.now,
        "sips_sends": system.machine.sips.sends,
        "flow_control_rejections":
            system.machine.sips.flow_control_rejections,
    }
    agg = {key: 0 for key in _RPC_COUNTER_KEYS}
    latency_n = 0
    latency_total = 0
    for cell in cells:
        m = cell.rpc.metrics
        for key in _RPC_COUNTER_KEYS:
            agg[key] += m.counter(key).value
        hist = m.histogram("latency_ns")
        latency_n += hist.total
        latency_total += hist.sum
    row.update(agg)
    row["latency_n"] = latency_n
    row["latency_total_ns"] = latency_total
    row["mean_latency_ns"] = (round(latency_total / latency_n, 1)
                              if latency_n else 0.0)
    row["latency_floor_ns"] = latency_floor_ns
    if latency_n and row["mean_latency_ns"] < latency_floor_ns:
        # A round trip beat the hardware: the RPC path (or a params
        # change) broke the latency model.
        raise RuntimeError(
            f"rpc bench {config!r}: mean latency "
            f"{row['mean_latency_ns']}ns under the intercell hardware "
            f"floor {latency_floor_ns}ns")
    return row


#: snapshot images for the RPC scenario, one per (config, wheel).
_RPC_IMAGES: Dict[tuple, SystemImage] = {}


def _forked_rpc_bench(system: HiveSystem, config: str,
                      kwargs: dict) -> dict:
    """Child-side RPC bench run (module-level: crosses the image pipe)."""
    return run_rpc_bench(config, system=system, **kwargs)


def run_rpc_bench_forked(config: str, seed: int = 1995,
                         fast: Optional[bool] = None,
                         wheel: Optional[bool] = None) -> dict:
    """``run_rpc_bench`` against a snapshot fork instead of a fresh boot.

    Same byte-identical counters; ``boot_wall_s`` becomes the image's
    one-time boot and ``fork_wall_s`` the per-run fork.  Falls back to
    a fresh boot per run under ``HIVE_SNAPSHOT=0``.
    """
    kwargs = dict(seed=seed, fast=fast)
    if not snapshot_enabled():
        row = run_rpc_bench(config, wheel=wheel, **kwargs)
        row["fork_wall_s"] = row["boot_wall_s"]
        row["snapshot"] = "boot"
        return row
    key = (config, wheel)
    image = _RPC_IMAGES.get(key)
    if image is None or image.closed:
        image = SystemImage(boot_rpc_system, config, 1995, wheel,
                            name=f"rpcbench-{config}")
        _RPC_IMAGES[key] = image
    row = image.run(_forked_rpc_bench, config, kwargs, seed=seed)
    row["boot_wall_s"] = round(image.boot_wall_s, 4)
    row["fork_wall_s"] = round(image.fork_wall_s_last, 4)
    row["snapshot"] = "fork"
    return row


def run_rpc_suite(configs: Optional[List[str]] = None,
                  seed: int = 1995, repeats: int = 1,
                  fast: Optional[bool] = None,
                  wheel: Optional[bool] = None,
                  snapshot: bool = False) -> Dict[str, dict]:
    """Run the RPC scenario at the requested sizes, best-of-``repeats``.

    Repeats must agree on every :data:`RPC_DETERMINISTIC_KEYS` entry
    (verified, not assumed); the fastest repeat is the headline row.
    ``snapshot`` forks each repeat from a per-config snapshot image.
    """
    names = list(configs) if configs else list(RPC_CONFIGS)
    results: Dict[str, dict] = {}
    for name in names:
        best = None
        walls: List[float] = []
        for _ in range(max(1, repeats)):
            runner = run_rpc_bench_forked if snapshot else run_rpc_bench
            row = runner(name, seed=seed, fast=fast, wheel=wheel)
            walls.append(row["wall_s"])
            if best is None:
                best = row
                continue
            for key in RPC_DETERMINISTIC_KEYS:
                if row[key] != best[key]:
                    raise RuntimeError(
                        f"non-deterministic rpc repeat for {name!r}: "
                        f"{key} {row[key]} != {best[key]}")
            if row["wall_s"] < best["wall_s"]:
                best = row
        best["repeats"] = max(1, repeats)
        best["wall_s_min"] = round(min(walls), 4)
        best["wall_s_max"] = round(max(walls), 4)
        best["wall_s_mean"] = round(sum(walls) / len(walls), 4)
        results[name] = best
    return results


def compare_rpc_rows(fast_row: dict, slow_row: dict) -> List[str]:
    """Keys on which the fast and slow paths disagree (empty = match)."""
    return [key for key in RPC_DETERMINISTIC_KEYS
            if fast_row[key] != slow_row[key]]
