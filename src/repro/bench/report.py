"""Paper-vs-measured report rendering for the benchmark harness, plus
the campaign observatory report (``repro report``).

The campaign report renders the merged fault-injection campaign payload
(availability ledger, hot-path tier counters, containment table) and the
committed ``BENCH_pr*.json`` trajectory into markdown or JSON.  Every
figure in it derives from deterministic simulation counters — wall-clock
rates never appear — so a same-seed campaign renders byte-identically.
"""

from __future__ import annotations

import glob
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

Number = Union[int, float]


@dataclass
class ComparisonRow:
    label: str
    paper: Optional[Number]
    measured: Optional[Number]
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if not self.paper or not isinstance(self.measured, (int, float)):
            return None
        return self.measured / self.paper


@dataclass
class ComparisonTable:
    """A table of paper-reported vs measured values, printable as text."""

    title: str
    rows: List[ComparisonRow] = field(default_factory=list)

    def add(self, label: str, paper: Optional[Number],
            measured: Optional[Number], unit: str = "") -> None:
        self.rows.append(ComparisonRow(label, paper, measured, unit))

    @staticmethod
    def _fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, str):
            return value
        if isinstance(value, float):
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:.2f}".rstrip("0").rstrip(".")
        return f"{value:,}"

    def render(self) -> str:
        label_w = max([len(r.label) for r in self.rows] + [len("metric")])
        lines = [self.title, "=" * len(self.title)]
        header = (f"{'metric'.ljust(label_w)}  {'paper':>12}  "
                  f"{'measured':>12}  {'ratio':>6}  unit")
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
            lines.append(
                f"{row.label.ljust(label_w)}  {self._fmt(row.paper):>12}  "
                f"{self._fmt(row.measured):>12}  {ratio:>6}  {row.unit}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


# ---------------------------------------------------------------------------
# campaign observatory report
# ---------------------------------------------------------------------------

#: events/s drop (vs the previous committed bench file) that fails
#: ``repro report --check``.
REGRESSION_THRESHOLD = 0.30

_BENCH_RE = re.compile(r"^BENCH_pr(\d+)\.json$")


def _ms(ns: Number) -> str:
    return f"{ns / 1e6:.3f}"


def _pct(value: Number) -> str:
    return f"{value * 100:.2f}%"


def load_bench_trajectory(root: str = ".") -> List[Dict[str, Any]]:
    """All committed ``BENCH_pr<N>.json`` files under ``root``, sorted by
    PR number (oldest first).  Unreadable files are skipped."""
    entries = []
    for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
        match = _BENCH_RE.match(os.path.basename(path))
        if not match:
            continue
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        entries.append({"pr": int(match.group(1)),
                        "file": os.path.basename(path),
                        "payload": payload})
    entries.sort(key=lambda e: e["pr"])
    return entries


def trajectory_rows(trajectory: List[Dict[str, Any]],
                    config: str = "large") -> List[Dict[str, Any]]:
    """events/s per committed bench file for one config (None when the
    file predates that config or has no throughput section)."""
    rows = []
    for entry in trajectory:
        results = entry["payload"].get("results") or {}
        row = results.get(config)
        eps = row.get("events_per_sec") if isinstance(row, dict) else None
        # Prefer the uncontended single-process rate when the campaign
        # recorded one — pool contention makes shard rates pessimistic.
        single = (entry["payload"].get("single_process") or {}).get(config)
        if isinstance(single, dict):
            eps = single.get("events_per_sec", eps)
        cal = (entry["payload"].get("calibration") or {}).get("score")
        if not (isinstance(cal, (int, float)) and cal > 0):
            cal = None
        rows.append({"pr": entry["pr"], "file": entry["file"],
                     "events_per_sec": eps, "calibration": cal})
    return rows


def trajectory_gaps(trajectory: List[Dict[str, Any]]) -> List[int]:
    """PR numbers missing from the committed bench trajectory.

    A PR that lands without a ``BENCH_pr<N>.json`` (docs-only, or a
    bench-neutral change) leaves a hole; the report annotates it so a
    delta between non-adjacent files is never mistaken for a
    single-PR change.
    """
    present = sorted({e["pr"] for e in trajectory})
    if len(present) < 2:
        return []
    return [pr for pr in range(present[0] + 1, present[-1])
            if pr not in present]


def regression_delta(trajectory: List[Dict[str, Any]],
                     config: str = "large") -> Optional[Dict[str, Any]]:
    """Fractional events/s change between the two newest bench files
    that report the config; None when fewer than two do.

    Each file was written by whatever machine ran that PR, so a raw
    events/s ratio conflates code speed with host speed.  When both
    files carry the host-calibration anchor (``machine_calibration`` in
    :mod:`repro.bench.throughput`), ``delta`` is computed on the
    calibration-normalized rates (host term cancelled) and
    ``calibrated`` is True; otherwise ``delta`` is the raw ratio and
    ``calibrated`` is False — the gate then cannot distinguish a slower
    host from slower code and should not hard-fail.  ``raw_delta`` is
    always the unnormalized ratio.

    ``adjacent`` is False when PRs are missing between the two files
    compared (the delta then spans more than one PR of work).
    """
    rows = [r for r in trajectory_rows(trajectory, config)
            if isinstance(r["events_per_sec"], (int, float))
            and r["events_per_sec"] > 0]
    if len(rows) < 2:
        return None
    prev, cur = rows[-2], rows[-1]
    raw = ((cur["events_per_sec"] - prev["events_per_sec"])
           / prev["events_per_sec"])
    calibrated = (prev["calibration"] is not None
                  and cur["calibration"] is not None)
    if calibrated:
        prev_norm = prev["events_per_sec"] / prev["calibration"]
        cur_norm = cur["events_per_sec"] / cur["calibration"]
        delta = (cur_norm - prev_norm) / prev_norm
    else:
        delta = raw
    # The two newest usable files are adjacent in the usable list, so
    # every PR number strictly between them has no usable bench data.
    missing = list(range(prev["pr"] + 1, cur["pr"]))
    return {"config": config, "baseline": prev, "current": cur,
            "delta": delta, "raw_delta": raw, "calibrated": calibrated,
            "adjacent": not missing, "missing_prs": missing}


def trajectory_gate_warning(trajectory: List[Dict[str, Any]],
                            config: str = "large") -> Optional[str]:
    """Why the regression gate cannot run, or None when it can.

    ``repro report --check`` degrades gracefully in two situations:
    a fresh checkout (zero or one committed ``BENCH_pr*.json``), and a
    comparison where either file predates the host-calibration anchor
    (raw events/s across different machines are not comparable).  The
    gate is skipped with this warning rather than failing or crashing.
    """
    reg = regression_delta(trajectory, config)
    if reg is not None:
        if reg["calibrated"]:
            return None
        uncal = [r["file"] for r in (reg["baseline"], reg["current"])
                 if r["calibration"] is None]
        return (f"regression gate skipped: no host-calibration anchor "
                f"in {', '.join(uncal)} — raw events/s across "
                f"different machines are not comparable (raw delta "
                f"{reg['raw_delta'] * 100:+.1f}%)")
    usable = len([r for r in trajectory_rows(trajectory, config)
                  if isinstance(r["events_per_sec"], (int, float))
                  and r["events_per_sec"] > 0])
    return (f"regression gate skipped: {usable} usable BENCH_pr*.json "
            f"file(s) report {config!r} events/s (need 2)")


def _availability_lines(avail: Dict[str, Any]) -> List[str]:
    lines = ["## Availability", ""]
    lines.append("| cell | up (ms) | suspended (ms) | dead (ms) | "
                 "availability | faults |")
    lines.append("|---:|---:|---:|---:|---:|---:|")
    for cid in sorted(avail["cells"], key=int):
        row = avail["cells"][cid]
        lines.append(
            f"| {cid} | {_ms(row['up_ns'])} | {_ms(row['suspended_ns'])} "
            f"| {_ms(row['dead_ns'])} | {_pct(row['availability'])} "
            f"| {row['faults']} |")
    lines.append("")
    lines.append(f"Faults injected: {avail['faults_injected']}; rounds "
                 f"recovered: {avail['rounds_recovered']}; horizon "
                 f"{_ms(avail['horizon_ns'])} ms simulated (summed over "
                 f"trials).")
    lines.append("")
    lines.append("| latency | n | p50 (ms) | p95 (ms) | p99 (ms) | "
                 "max (ms) |")
    lines.append("|---|---:|---:|---:|---:|---:|")
    for label, key in (("recovery round", "recovery_latency_ns"),
                       ("detection", "detection_latency_ns")):
        snap = avail[key]
        lines.append(
            f"| {label} | {snap['n']} | {_ms(snap['p50'])} "
            f"| {_ms(snap['p95'])} | {_ms(snap['p99'])} "
            f"| {_ms(snap['max'])} |")
    work = avail["work_lost"]
    lines.append("")
    lines.append("Work lost per fault: "
                 f"{work['per_fault_discarded_pages']:.1f} pages "
                 f"discarded, {work['per_fault_killed_processes']:.1f} "
                 f"processes killed "
                 f"(totals: {work['discarded_pages']} pages, "
                 f"{work['killed_processes']} killed, "
                 f"{work['surviving_processes']} survived, "
                 f"{work['files_lost']} files lost).")
    return lines


def _tiers_lines(tiers: Dict[str, Any]) -> List[str]:
    lines = ["## Hot-path tiers", ""]
    coh = tiers.get("coherence")
    if coh:
        lines.append(
            f"- coherence batches: {coh['batches_total']} "
            f"(memo {_pct(coh['memo_hit_rate'])}, "
            f"inline {_pct(coh['inline_rate'])}, "
            f"vectorized {_pct(coh['vector_rate'])}, "
            f"scalar {_pct(coh['scalar_rate'])})")
    rpc = tiers.get("rpc")
    if rpc:
        lines.append(
            f"- RPC dispatches: {rpc['calls_total']} "
            f"(fast path {_pct(rpc['fast_rate'])}, "
            f"slow path {rpc['slow_path']} calls)")
    eng = tiers.get("engine")
    if eng:
        lines.append(
            f"- engine dispatches: {eng['dispatches_total']} "
            f"(same-instant {_pct(eng['nowq_rate'])}, "
            f"heap {_pct(eng['heap_rate'])}, "
            f"inline timer {_pct(eng['inline_rate'])}; "
            f"wheel-routed {eng['wheel_routed']})")
    else:
        lines.append("- engine dispatches: not profiled "
                     "(set HIVE_PROFILE=1 to attribute engine time)")
    rep = tiers.get("replay")
    if rep:
        lines.append(
            f"- trace replay: {rep['replayed_from_trace']} wakeups from "
            f"trace ({_pct(rep['trace_hit_rate'])} hit rate), "
            f"{rep['fallback_wakeups']} live fallbacks, "
            f"{rep['desyncs']} desyncs / {rep['resyncs']} resyncs "
            f"over {rep['chains']} chains")
    return lines


def _replay_lines(replay: Dict[str, Any]) -> List[str]:
    """The recorded-vs-replayed divergence table for replay campaigns."""
    lines = ["## Trace replay (fault-seed sweep)", ""]
    lines.append("| scenario | base fault seed | trace rows | trial | "
                 "identical prefix | divergence (ms) |")
    lines.append("|---|---:|---:|---:|---:|---:|")
    for scenario in sorted(replay):
        row = replay[scenario]
        for trial in row.get("trials", []):
            div = trial.get("divergence_ns")
            div_ms = f"{div / 1e6:.1f}" if div is not None else "none"
            lines.append(
                f"| {scenario} | {row['base_fault_seed']} "
                f"| {row['trace_rows']} | f{trial['fault_seed']} "
                f"| {trial['identical_prefix']} | {div_ms} |")
    return lines


def _scenario_lines(scenarios: Dict[str, Any]) -> List[str]:
    lines = ["## Containment (Table 7.4)", ""]
    lines.append("| scenario | workload | contained | detection avg/max "
                 "(ms) | paper avg/max (ms) |")
    lines.append("|---|---|---:|---:|---:|")
    for name in sorted(scenarios):
        row = scenarios[name]
        if row["detection_avg_ms"] is None:
            detect = "n/a"
        else:
            detect = (f"{row['detection_avg_ms']:.1f} / "
                      f"{row['detection_max_ms']:.1f}")
        lines.append(
            f"| {name} | {row['workload']} "
            f"| {row['contained']}/{row['trials']} | {detect} "
            f"| {row['paper_avg_ms']} / {row['paper_max_ms']} |")
    return lines


def _audit_lines(audit: Dict[str, Any]) -> List[str]:
    summary = audit.get("summary", {})
    verdicts = summary.get("by_verdict", {})
    lines = ["## Containment audit", ""]
    lines.append(
        f"- verdict: **{audit.get('verdict', '?')}** over "
        f"{summary.get('trials', 0)} trial(s), "
        f"{summary.get('faults', 0)} fault(s)")
    lines.append(
        f"- tainted interactions: {verdicts.get('blocked', 0)} blocked "
        f"(near misses), {verdicts.get('discarded', 0)} discarded by "
        f"recovery, {verdicts.get('absorbed', 0)} absorbed")
    defenses = summary.get("by_defense", {})
    if defenses:
        parts = [f"{name} {defenses[name]}" for name in sorted(defenses)]
        lines.append(f"- defenses that fired: {', '.join(parts)}")
    breaches = sorted(label for label, report in
                      audit.get("trials", {}).items()
                      if report.get("verdict") == "breach")
    if breaches:
        lines.append(f"- **breached trials**: {', '.join(breaches)}")
    return lines


def _trajectory_lines(trajectory: List[Dict[str, Any]],
                      config: str = "large") -> List[str]:
    lines = [f"## Throughput trajectory ({config} config)", ""]
    rows = trajectory_rows(trajectory, config)
    if not rows:
        lines.append("No committed BENCH_pr*.json files found.")
        return lines
    lines.append("| bench file | events/s | delta |")
    lines.append("|---|---:|---:|")
    prev = None
    for row in rows:
        eps = row["events_per_sec"]
        if not isinstance(eps, (int, float)):
            lines.append(f"| {row['file']} | - | - |")
            continue
        delta = "-"
        if prev:
            delta = f"{(eps - prev) / prev * 100:+.1f}%"
        lines.append(f"| {row['file']} | {eps:,.0f} | {delta} |")
        prev = eps
    gaps = trajectory_gaps(trajectory)
    if gaps:
        lines.append("")
        lines.append(
            "Trajectory gaps: no bench file for PR(s) "
            f"{', '.join(str(pr) for pr in gaps)} — deltas spanning a "
            "gap cover more than one PR of work.")
    reg = regression_delta(trajectory, config)
    if reg is not None:
        lines.append("")
        span = ("" if reg["adjacent"] else
                f", spanning missing PR(s) "
                f"{', '.join(str(pr) for pr in reg['missing_prs'])}")
        if reg["calibrated"]:
            verdict = ("REGRESSION"
                       if reg["delta"] < -REGRESSION_THRESHOLD else "ok")
            lines.append(
                f"Latest vs previous: {reg['delta'] * 100:+.1f}% "
                f"host-normalized (raw {reg['raw_delta'] * 100:+.1f}%) "
                f"({reg['baseline']['file']} -> {reg['current']['file']}"
                f"{span}): {verdict} "
                f"(threshold -{REGRESSION_THRESHOLD * 100:.0f}%).")
        else:
            lines.append(
                f"Latest vs previous: raw {reg['raw_delta'] * 100:+.1f}% "
                f"({reg['baseline']['file']} -> {reg['current']['file']}"
                f"{span}): UNVERIFIABLE — not both files carry the "
                f"host-calibration anchor, so host speed cannot be "
                f"cancelled; the regression gate is skipped.")
    return lines


def _snapshot_lines(payload: Dict[str, Any]) -> List[str]:
    """Boot-amortization section from a bench payload's snapshot
    equivalence run (``repro bench --compare-snapshot``)."""
    lines = ["## Snapshot-fork amortization", ""]
    compare = payload.get("snapshot_compare") or {}
    results = compare.get("results") or {}
    if results:
        match = "MATCH" if compare.get("counters_match") else "MISMATCH"
        lines.append(f"Forked vs fresh-boot counters: **{match}**.")
        lines.append("")
        lines.append("| config | boot (s) | fork (ms) | amortization | "
                     "mode |")
        lines.append("|---|---:|---:|---:|---|")
        for name in sorted(results):
            row = results[name]
            lines.append(
                f"| {name} | {row['boot_wall_s']:.3f} "
                f"| {row['fork_wall_s'] * 1000:.1f} "
                f"| {row['amortization_x']}x | {row['mode']} |")
    campaign = payload.get("snapshot_campaign") or {}
    if campaign:
        lines.append("")
        lines.append(
            f"Campaign per-trial setup ({campaign.get('mode', '?')}): "
            f"{campaign.get('setup_wall_s_mean', 0) * 1000:.1f} ms vs "
            f"boot {campaign.get('boot_wall_s_mean', 0) * 1000:.1f} ms "
            f"— {campaign.get('amortization_x', 0)}x over "
            f"{campaign.get('trials', 0)} trial(s).")
    return lines


def _sessions_lines(sessions: Dict[str, Any]) -> List[str]:
    """Session-traffic section from a bench payload's ``sessions`` row
    (``repro bench --sessions`` / ``repro sessions --out``)."""
    lines = ["## Session traffic (open loop)", ""]
    lines.append(
        f"- {sessions.get('sessions', 0):,} sessions generated at "
        f"{sessions.get('sessions_per_sec', 0):,.0f} sessions/s wall "
        f"({sessions.get('cells', '?')} cells x "
        f"{sessions.get('servers_per_cell', '?')} servers, seed "
        f"{sessions.get('seed', '?')})")
    lines.append(
        f"- latency p50 {sessions.get('latency_p50_ms', 0):.3f} ms / "
        f"p99 {sessions.get('latency_p99_ms', 0):.3f} ms / mean "
        f"{sessions.get('latency_mean_ms', 0):.3f} ms")
    lines.append(
        f"- {sessions.get('completed', 0):,} completed, "
        f"{sessions.get('lost', 0):,} lost over "
        f"{sessions.get('faults', 0)} fault(s) -> "
        f"{sessions.get('sessions_lost_per_fault', 0)} lost/fault")
    by_type = sessions.get("by_type") or {}
    if by_type:
        parts = [f"{name} {by_type[name]:,}" for name in sorted(by_type)]
        lines.append(f"- mix: {', '.join(parts)}")
    if sessions.get("probes_launched"):
        lines.append(
            f"- kernel probe sessions: "
            f"{sessions.get('probes_completed', 0)}/"
            f"{sessions.get('probes_launched', 0)} completed")
    return lines


def render_campaign_report(payload: Dict[str, Any],
                           trajectory: Optional[List[Dict[str, Any]]]
                           = None) -> str:
    """The campaign observatory report as markdown.

    Only deterministic counters appear, so same-seed campaigns render
    byte-identically.
    """
    lines = ["# Campaign report", ""]
    scenarios = payload.get("scenarios")
    if scenarios:
        lines += _scenario_lines(scenarios)
        lines.append("")
    avail = payload.get("availability")
    if avail:
        lines += _availability_lines(avail)
        lines.append("")
    audit = payload.get("audit")
    if audit:
        lines += _audit_lines(audit)
        lines.append("")
    tiers = payload.get("tiers")
    if tiers:
        lines += _tiers_lines(tiers)
        lines.append("")
    replay = payload.get("replay")
    if replay:
        lines += _replay_lines(replay)
        lines.append("")
    if trajectory is not None:
        lines += _trajectory_lines(trajectory)
        lines.append("")
        if trajectory:
            newest = trajectory[-1]["payload"]
            if (newest.get("snapshot_compare")
                    or newest.get("snapshot_campaign")):
                lines += _snapshot_lines(newest)
                lines.append("")
            if newest.get("sessions"):
                lines += _sessions_lines(newest["sessions"])
                lines.append("")
    failures = payload.get("failures")
    if failures:
        lines.append(f"**{len(failures)} trial(s) FAILED** — see the "
                     "campaign output for tracebacks.")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def campaign_report_json(payload: Dict[str, Any],
                         trajectory: Optional[List[Dict[str, Any]]]
                         = None) -> Dict[str, Any]:
    """The same report as a JSON-safe dict (serialize with
    ``sort_keys=True`` for byte-stable output)."""
    out: Dict[str, Any] = {}
    for key in ("scenarios", "availability", "audit", "tiers",
                "replay", "failures"):
        if payload.get(key):
            out[key] = payload[key]
    if trajectory is not None:
        out["trajectory"] = trajectory_rows(trajectory)
        out["trajectory_gaps"] = trajectory_gaps(trajectory)
        reg = regression_delta(trajectory)
        if reg is not None:
            out["regression"] = reg
    return out


def check_campaign_report(payload: Dict[str, Any],
                          trajectory: Optional[List[Dict[str, Any]]]
                          = None,
                          threshold: float = REGRESSION_THRESHOLD,
                          ) -> List[str]:
    """Problems that should fail ``repro report --check`` (empty list
    means healthy): missing availability percentiles, uncontained or
    failed trials, and a >threshold events/s drop between the two
    newest committed bench files."""
    problems: List[str] = []
    avail = payload.get("availability")
    if not avail:
        problems.append("campaign payload has no availability section")
    else:
        lat = avail.get("recovery_latency_ns") or {}
        for key in ("p50", "p95", "p99"):
            if not isinstance(lat.get(key), (int, float)):
                problems.append(f"recovery latency {key} missing")
        if avail.get("faults_injected", 0) > 0 and lat.get("n", 0) == 0:
            problems.append("faults injected but no recovery rounds "
                            "recorded a latency")
    for failure in payload.get("failures", []):
        problems.append(f"trial {failure.get('scenario')!r} seed "
                        f"{failure.get('seed')} failed")
    for name in sorted(payload.get("scenarios") or {}):
        row = payload["scenarios"][name]
        # .get() so a hand-edited/legacy --from-json payload degrades
        # to a report problem instead of a KeyError crash.
        contained = row.get("contained", 0)
        trials = row.get("trials", 0)
        if contained != trials:
            problems.append(
                f"{name}: only {contained}/{trials} trials contained")
    audit = payload.get("audit")
    if audit:
        absorbed = (audit.get("summary", {}).get("by_verdict", {})
                    .get("absorbed", 0))
        if absorbed or audit.get("verdict") == "breach":
            problems.append(
                f"containment audit verdict "
                f"{audit.get('verdict')!r}: {absorbed} tainted "
                f"interaction(s) absorbed by healthy cells")
    if trajectory:
        reg = regression_delta(trajectory)
        # An uncalibrated comparison (either file predates the host-
        # calibration anchor) cannot tell a slower host from slower
        # code, so it warns (trajectory_gate_warning) instead of
        # failing here.
        if (reg is not None and reg["calibrated"]
                and reg["delta"] < -threshold):
            problems.append(
                f"events/s regression {reg['delta'] * 100:+.1f}% "
                f"(host-normalized) from {reg['baseline']['file']} to "
                f"{reg['current']['file']} "
                f"(threshold -{threshold * 100:.0f}%)")
        # Newest bench file's snapshot/sessions sections (older files
        # without them are a no-op, not a failure).
        newest = trajectory[-1]["payload"]
        compare = newest.get("snapshot_compare")
        if compare and not compare.get("counters_match"):
            problems.append(
                f"{trajectory[-1]['file']}: snapshot-forked counters "
                f"diverge from fresh-boot counters")
        sessions = newest.get("sessions")
        if sessions:
            for key in ("latency_p50_ms", "latency_p99_ms",
                        "sessions_per_sec"):
                if not isinstance(sessions.get(key), (int, float)):
                    problems.append(
                        f"{trajectory[-1]['file']}: sessions section "
                        f"missing {key}")
    return problems
