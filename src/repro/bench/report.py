"""Paper-vs-measured report rendering for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

Number = Union[int, float]


@dataclass
class ComparisonRow:
    label: str
    paper: Optional[Number]
    measured: Optional[Number]
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if not self.paper or not isinstance(self.measured, (int, float)):
            return None
        return self.measured / self.paper


@dataclass
class ComparisonTable:
    """A table of paper-reported vs measured values, printable as text."""

    title: str
    rows: List[ComparisonRow] = field(default_factory=list)

    def add(self, label: str, paper: Optional[Number],
            measured: Optional[Number], unit: str = "") -> None:
        self.rows.append(ComparisonRow(label, paper, measured, unit))

    @staticmethod
    def _fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, str):
            return value
        if isinstance(value, float):
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:.2f}".rstrip("0").rstrip(".")
        return f"{value:,}"

    def render(self) -> str:
        label_w = max([len(r.label) for r in self.rows] + [len("metric")])
        lines = [self.title, "=" * len(self.title)]
        header = (f"{'metric'.ljust(label_w)}  {'paper':>12}  "
                  f"{'measured':>12}  {'ratio':>6}  unit")
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
            lines.append(
                f"{row.label.ljust(label_w)}  {self._fmt(row.paper):>12}  "
                f"{self._fmt(row.measured):>12}  {ratio:>6}  {row.unit}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()
