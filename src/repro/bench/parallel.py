"""Process-parallel campaign runner for benchmarks and fault injection.

The paper's evaluation sweeps many machine sizes and many fault
scenarios (Tables 7.2-7.4); each cell of such a sweep is an isolated,
seed-deterministic simulation, so the sweep parallelizes perfectly
across processes.  This module shards ``(config, seed, repeat)`` /
``(scenario, seed)`` cells over a ``multiprocessing`` pool and merges
the per-shard JSON payloads into one report.

Design rules:

* every worker is a module-level function taking one picklable tuple,
  so the pool works under both ``fork`` and ``spawn`` start methods;
* a worker never raises — it returns an ``{"status": "error"}`` shard
  carrying the traceback, so one crashed cell doesn't kill the sweep
  and the merged report can say exactly which cell failed;
* the merger *verifies* determinism: repeats of the same cell must
  agree on every simulated counter, and two shards claiming the same
  cell are an error, not a silent overwrite.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.faultexp import (
    PAPER_TABLE_7_4,
    FaultExperimentRunner,
    FaultTrialResult,
    ScenarioSummary,
    boot_faultexp_system,
)
from repro.bench.throughput import (
    BENCH_SCHEMA,
    CONFIGS,
    run_throughput,
    run_throughput_forked,
)
from repro.obs.availability import merge_availability
from repro.obs.profile import merge_tier_snapshots
from repro.obs.provenance import merge_audits
from repro.sim.snapshot import SystemImage, snapshot_enabled


class CampaignError(RuntimeError):
    """A campaign produced shards that cannot be merged coherently."""


#: simulated counters that must be identical across repeats of one cell
DETERMINISTIC_KEYS = ("events", "accesses", "driver_accesses",
                      "discarded_pages", "writable_page_samples", "samples")


def _heartbeat(done: int, total: int, label: str, sim_ms: float,
               events: int, wall_s: float, extra: str = "") -> None:
    """One campaign progress line on stderr (``--progress`` runs)."""
    rate = events / wall_s if wall_s > 0 else 0.0
    sys.stderr.write(
        f"[campaign] shard {done}/{total} {label}: "
        f"sim-time {sim_ms:.0f} ms, {rate:,.0f} events/s{extra}\n")
    sys.stderr.flush()


def _run_shards(shards, worker, procs: int, on_shard=None) -> list:
    """Run the shard list, serially or on a pool.

    Completed shards stream through ``on_shard`` (the heartbeat hook) in
    completion order; the returned list is NOT order-stable under a
    pool — callers must sort by shard key before merging, or the merged
    payload would depend on scheduling.
    """
    if procs <= 1:
        raw = []
        for i, shard in enumerate(shards):
            result = worker(shard)
            raw.append(result)
            if on_shard is not None:
                on_shard(i + 1, result)
        return raw
    raw = []
    with _pool_context().Pool(processes=procs) as pool:
        for i, result in enumerate(
                pool.imap_unordered(worker, shards, chunksize=1)):
            raw.append(result)
            if on_shard is not None:
                on_shard(i + 1, result)
    return raw


def _pool_context():
    """Prefer ``fork`` (no re-import cost); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _effective_workers(requested: int) -> int:
    """Cap the pool at the machine's core count.

    Each shard is a CPU-bound single-threaded simulation, so running
    more of them than there are cores only adds contention: every
    shard's wall clock (and thus its reported events/sec) inflates
    while the campaign finishes no sooner.  ``--parallel 8`` on a
    2-core box therefore behaves like ``make -j``: up to 8, bounded
    by the hardware.
    """
    return max(1, min(requested, os.cpu_count() or requested))


def _warn_cpu_cap(workers: int, procs: int) -> bool:
    """True (and one stderr line) when the pool was capped by the host.

    A capped pool is not an error — the campaign still completes — but
    per-shard wall clocks are measured under a smaller pool than asked
    for, so the payload records it instead of shrinking silently.
    """
    capped = procs < workers
    if capped:
        sys.stderr.write(
            f"[campaign] warning: --parallel {workers} capped to "
            f"{procs} worker{'s' if procs != 1 else ''} "
            f"({os.cpu_count()} CPUs on this host)\n")
        sys.stderr.flush()
    return capped


# -- throughput bench campaign ---------------------------------------------


def _bench_shard_worker(shard: Tuple[str, int, int, Optional[bool],
                                     bool]) -> dict:
    """One (config, seed, repeat) cell; runs in a pool worker process."""
    config, seed, repeat, batch, snapshot = shard
    try:
        if snapshot:
            # One image per (config, seed) per worker process; repeats
            # fork from it instead of re-booting.
            row = run_throughput_forked(config, seed=seed, batch=batch)
        else:
            row = run_throughput(config, seed=seed, batch=batch)
        return {"status": "ok", "config": config, "seed": seed,
                "repeat": repeat, "row": row}
    except Exception:
        return {"status": "error", "config": config, "seed": seed,
                "repeat": repeat, "error": traceback.format_exc()}


def merge_bench_shards(shards: Sequence[dict], seed: int,
                       repeats: int) -> dict:
    """Merge bench shard payloads into one ``run_suite``-shaped report.

    Raises :class:`CampaignError` for an empty shard list, for two
    shards claiming the same ``(config, repeat)`` cell, and for repeats
    of one config that disagree on a simulated counter (determinism
    violation).  Failed shards are reported under ``"failures"`` rather
    than raising, so a sweep with one crashed cell still yields the
    other cells' results plus a diagnosis.
    """
    if not shards:
        raise CampaignError("no shards to merge (empty campaign)")
    seen: set = set()
    by_config: Dict[str, List[dict]] = {}
    failures: List[dict] = []
    for shard in shards:
        key = (shard["config"], shard["repeat"])
        if key in seen:
            raise CampaignError(
                f"overlapping shards for cell {key!r}: each "
                f"(config, repeat) must be produced exactly once")
        seen.add(key)
        if shard["status"] != "ok":
            failures.append({"config": shard["config"],
                             "seed": shard["seed"],
                             "repeat": shard["repeat"],
                             "error": shard.get("error", "unknown")})
            continue
        by_config.setdefault(shard["config"], []).append(shard)
    results = {}
    for config, cells in by_config.items():
        cells.sort(key=lambda s: s["repeat"])
        best = None
        walls: List[float] = []
        for cell in cells:
            row = cell["row"]
            walls.append(row["wall_s"])
            if best is None:
                best = row
                continue
            for key in DETERMINISTIC_KEYS:
                if row[key] != best[key]:
                    raise CampaignError(
                        f"non-deterministic repeats for {config!r}: "
                        f"{key} {row[key]} != {best[key]} "
                        f"(repeat {cell['repeat']})")
            if row["wall_s"] < best["wall_s"]:
                best = row
        best["repeats"] = repeats
        best["wall_s_min"] = round(min(walls), 4)
        best["wall_s_max"] = round(max(walls), 4)
        best["wall_s_mean"] = round(sum(walls) / len(walls), 4)
        results[config] = best
    payload = {"schema": BENCH_SCHEMA, "seed": seed, "results": results}
    if failures:
        payload["failures"] = failures
    return payload


def run_bench_campaign(configs: Optional[List[str]] = None,
                       seed: int = 1995, repeats: int = 1,
                       workers: int = 2,
                       batch: Optional[bool] = None,
                       progress: bool = False,
                       snapshot: bool = False) -> dict:
    """Shard the throughput suite across a process pool and merge.

    Returns the merged ``run_suite``-shaped payload plus a
    ``"parallel"`` section recording the pool size, the campaign wall
    clock, and the summed per-shard wall clock (the serial-equivalent
    cost the pool amortized).  ``progress`` prints one heartbeat line
    per completed shard on stderr (the CLI turns it on; library callers
    and tests stay silent).
    """
    names = list(configs) if configs else list(CONFIGS)
    repeats = max(1, repeats)
    shards = [(name, seed, r, batch, snapshot)
              for name in names for r in range(repeats)]
    # Longest shards first so the big config doesn't trail the pool.
    shards.sort(key=lambda s: CONFIGS[s[0]].num_nodes
                * CONFIGS[s[0]].duration_ms, reverse=True)
    procs = _effective_workers(workers)
    cpu_capped = _warn_cpu_cap(workers, procs)

    def on_shard(done: int, shard: dict) -> None:
        if shard["status"] != "ok":
            _heartbeat(done, len(shards),
                       f"{shard['config']} repeat {shard['repeat']}",
                       0.0, 0, 0.0, "  FAILED")
            return
        row = shard["row"]
        _heartbeat(done, len(shards),
                   f"{shard['config']} repeat {shard['repeat']}",
                   row["sim_ms"], row["events"], row["wall_s"])

    wall0 = time.perf_counter()
    raw = _run_shards(shards, _bench_shard_worker, procs,
                      on_shard=on_shard if progress else None)
    campaign_wall = time.perf_counter() - wall0
    # Completion order is scheduling-dependent; restore the shard-key
    # order so every derived payload is byte-stable for a given seed.
    raw.sort(key=lambda s: (s["config"], s["repeat"]))
    payload = merge_bench_shards(raw, seed=seed, repeats=repeats)
    # Per-shard setup cost: a fresh boot, or (forked shards) the fork
    # wall — the amortization --snapshot buys shows up right here.
    shard_walls = [s["row"]["wall_s"]
                   + (s["row"].get("fork_wall_s", 0.0)
                      if s["row"].get("snapshot") == "fork"
                      else s["row"]["boot_wall_s"])
                   for s in raw if s["status"] == "ok"]
    payload["parallel"] = {
        "workers": workers,
        "effective_workers": procs,
        "shards": len(shards),
        "campaign_wall_s": round(campaign_wall, 4),
        "shard_wall_s_total": round(sum(shard_walls), 4),
        "cpu_count": os.cpu_count(),
        "cpu_capped": cpu_capped,
    }
    return payload


# -- fault-injection campaign ----------------------------------------------


#: per-worker-process snapshot images, one per agreement protocol; a
#: campaign forks every trial from its worker's image instead of booting.
_WORKER_IMAGES: Dict[str, SystemImage] = {}


def _faultexp_image(agreement: str) -> SystemImage:
    image = _WORKER_IMAGES.get(agreement)
    if image is None or image.closed:
        image = SystemImage(boot_faultexp_system, agreement, 0,
                            name=f"campaign-{agreement}")
        _WORKER_IMAGES[agreement] = image
    return image


def _trial_payload(system, scenario: str, seed: int,
                   fault_seed: Optional[int], agreement: str,
                   telemetry_dir: Optional[str], capture: bool) -> dict:
    """Attach observers, run one trial on a booted system, collect.

    Module-level so it can cross a :class:`SystemImage` request pipe:
    the same body serves fresh-boot shards (called in-process) and
    snapshot shards (called inside the forked child, where the
    observer attachment must happen — a fork inherits the *unobserved*
    image, so attaching here is what keeps telemetry from silently
    depending on a fresh boot).
    """
    from repro.obs import (attach_flight_recorder, attach_provenance,
                           availability_report, maybe_attach_watchdog,
                           tier_snapshot)

    recorder = attach_flight_recorder(system)
    # Provenance hooks are inert until a fault fires, so every
    # campaign trial carries a containment audit for free.
    tracer = attach_provenance(system)
    watchdog = maybe_attach_watchdog(system)

    wall0 = time.perf_counter()
    runner = FaultExperimentRunner(agreement=agreement)
    trial = runner.run_trial_on(system, scenario, seed,
                                fault_seed=fault_seed)
    wall_s = time.perf_counter() - wall0
    out: dict = {"status": "ok", "scenario": scenario, "seed": seed,
                 "fault_seed": fault_seed, "trial": trial.to_dict()}
    out["availability"] = availability_report(recorder, system)
    out["tiers"] = tier_snapshot(system)
    out["audit"] = tracer.audit_report()
    if watchdog is not None:
        out["watchdog"] = watchdog.report()
    out["heartbeat"] = {"sim_ms": system.sim.now / 1e6,
                        "events": system.sim.events_processed,
                        "wall_s": round(wall_s, 4)}
    if capture:
        from repro.sim.oplog import oplog_from_recorder
        out["oplog"] = oplog_from_recorder(recorder.events).to_jsonable()
    if telemetry_dir:
        from repro.obs import write_telemetry
        shard_dir = os.path.join(
            telemetry_dir,
            f"{scenario}-{seed}" if fault_seed is None
            else f"{scenario}-{seed}-f{fault_seed}")
        write_telemetry(shard_dir, recorder, system)
        out["telemetry_dir"] = shard_dir
    return out


def _inject_shard_worker(
        shard: Tuple[str, int, Optional[int], str, Optional[str],
                     bool, bool]) -> dict:
    """One (scenario, seed, fault_seed) trial; runs in a pool worker.

    Every trial records a flight recorder (the spans are deterministic
    and the recording cost is noise next to the trial itself) and ships
    its availability ledger and tier counters back as JSON-safe dicts,
    so the merged campaign report carries recovery-latency percentiles
    and per-cell availability even when no telemetry dir was requested.
    ``capture`` additionally ships the trial's columnar event stream
    (replay campaigns diff every trial against trial 0 at merge time).
    ``snapshot`` forks the trial's system from the worker's image
    instead of booting (falling back to a boot per trial when
    ``HIVE_SNAPSHOT=0``); the golden contract keeps either path
    byte-identical, and ``out["setup"]`` records which was paid.
    """
    (scenario, seed, fault_seed, agreement, telemetry_dir, capture,
     snapshot) = shard
    try:
        if snapshot and snapshot_enabled():
            image = _faultexp_image(agreement)
            out = image.run(_trial_payload, scenario, seed, fault_seed,
                            agreement, telemetry_dir, capture, seed=seed)
            out["setup"] = {"mode": "fork",
                            "setup_wall_s": image.fork_wall_s_last,
                            "boot_wall_s": image.boot_wall_s}
        else:
            wall0 = time.perf_counter()
            system = boot_faultexp_system(agreement, seed)
            boot_wall = time.perf_counter() - wall0
            out = _trial_payload(system, scenario, seed, fault_seed,
                                 agreement, telemetry_dir, capture)
            out["setup"] = {"mode": "boot",
                            "setup_wall_s": boot_wall,
                            "boot_wall_s": boot_wall}
        return out
    except Exception:
        return {"status": "error", "scenario": scenario, "seed": seed,
                "fault_seed": fault_seed,
                "error": traceback.format_exc()}


def merge_inject_shards(shards: Sequence[dict]) -> dict:
    """Merge trial shards into the ``inject`` scenario report shape."""
    if not shards:
        raise CampaignError("no shards to merge (empty campaign)")
    seen: set = set()
    summaries: Dict[str, ScenarioSummary] = {}
    telemetry_dirs: List[str] = []
    failures: List[dict] = []
    avail_labels: List[str] = []
    avail_reports: List[dict] = []
    tier_snaps: List[dict] = []
    audit_labels: List[str] = []
    audit_reports: List[dict] = []
    watchdogs: Dict[str, dict] = {}
    oplogs: Dict[str, list] = {}
    for shard in shards:
        key = (shard["scenario"], shard["seed"], shard.get("fault_seed"))
        if key in seen:
            raise CampaignError(
                f"overlapping shards for trial {key!r}: each "
                f"(scenario, seed, fault_seed) must be produced "
                f"exactly once")
        seen.add(key)
        if shard["status"] != "ok":
            failure = {"scenario": shard["scenario"],
                       "seed": shard["seed"],
                       "error": shard.get("error", "unknown")}
            if shard.get("fault_seed") is not None:
                failure["fault_seed"] = shard["fault_seed"]
            failures.append(failure)
            continue
        summary = summaries.setdefault(
            shard["scenario"], ScenarioSummary(scenario=shard["scenario"]))
        summary.trials.append(FaultTrialResult.from_dict(shard["trial"]))
        fseed = shard.get("fault_seed")
        label = (f"{shard['scenario']}-{shard['seed']}" if fseed is None
                 else f"{shard['scenario']}-{shard['seed']}-f{fseed}")
        if shard.get("availability"):
            avail_labels.append(label)
            avail_reports.append(shard["availability"])
        if shard.get("tiers"):
            tier_snaps.append(shard["tiers"])
        if shard.get("audit"):
            audit_labels.append(label)
            audit_reports.append(shard["audit"])
        if shard.get("watchdog"):
            watchdogs[label] = shard["watchdog"]
        if shard.get("telemetry_dir"):
            telemetry_dirs.append(shard["telemetry_dir"])
        if shard.get("oplog") is not None:
            oplogs.setdefault(shard["scenario"], []).append(
                (shard.get("fault_seed"), shard["oplog"]))
    for summary in summaries.values():
        summary.trials.sort(
            key=lambda t: (t.seed,
                           t.seed if t.fault_seed is None else t.fault_seed))
    scenarios = {}
    for scenario, summary in summaries.items():
        workload, _n, avg, mx = PAPER_TABLE_7_4[scenario]
        have_latencies = bool(summary.latencies_ms)
        scenarios[scenario] = {
            "workload": workload,
            "trials": len(summary.trials),
            "contained": summary.contained_count,
            "detection_avg_ms": (summary.avg_latency_ms
                                 if have_latencies else None),
            "detection_max_ms": (summary.max_latency_ms
                                 if have_latencies else None),
            "paper_avg_ms": avg,
            "paper_max_ms": mx,
            "latencies_ms": summary.latencies_ms,
        }
    payload: dict = {"scenarios": scenarios, "summaries": summaries}
    if avail_reports:
        # Shards arrive pre-sorted by (scenario, seed) from the campaign
        # runner; the zip keeps labels aligned either way.
        order = sorted(range(len(avail_labels)),
                       key=lambda i: avail_labels[i])
        payload["availability"] = merge_availability(
            [avail_reports[i] for i in order],
            labels=[avail_labels[i] for i in order])
    if tier_snaps:
        payload["tiers"] = merge_tier_snapshots(tier_snaps)
    if audit_reports:
        payload["audit"] = merge_audits(audit_reports, audit_labels)
    if watchdogs:
        payload["watchdog"] = watchdogs
    if telemetry_dirs:
        payload["telemetry_dirs"] = sorted(telemetry_dirs)
    if oplogs:
        payload["replay"] = _merge_replay_streams(oplogs)
    if failures:
        payload["failures"] = failures
    return payload


def _merge_replay_streams(oplogs: Dict[str, list]) -> dict:
    """Diff each scenario's trial streams against its trial 0.

    ``oplogs`` maps scenario -> [(fault_seed, jsonable OpLog), ...].
    Trial 0 is the stream with the smallest fault seed (the campaign
    records it first); every other trial executes the same traffic, so
    its divergence point localizes exactly where the moved fault
    schedule pushed the run off the recorded timeline.
    """
    from repro.sim.oplog import OpLog, divergence_point

    out: Dict[str, dict] = {}
    for scenario, entries in sorted(oplogs.items()):
        entries = sorted(entries, key=lambda e: (e[0] is not None, e[0]))
        base_seed, base_json = entries[0]
        base = OpLog.from_jsonable(base_json)
        trials = []
        for fault_seed, log_json in entries[1:]:
            div = divergence_point(base, OpLog.from_jsonable(log_json))
            div["fault_seed"] = fault_seed
            trials.append(div)
        out[scenario] = {
            "base_fault_seed": base_seed,
            "trace_rows": len(base),
            "trials": trials,
        }
    return out


def run_inject_campaign(scenarios: List[str], trials: int,
                        seed_base: int = 1995, workers: int = 2,
                        agreement: str = "oracle",
                        telemetry_dir: Optional[str] = None,
                        progress: bool = False,
                        replay: bool = False,
                        snapshot: bool = False) -> dict:
    """Shard Table 7.4 trials across a process pool and merge.

    Each trial is one shard — the slowest scenario (sw_cow_tree) runs
    minutes-long trials, so trial granularity keeps the pool busy.
    ``progress`` prints one heartbeat line per completed trial.

    ``replay`` switches the sweep to record-once form: every trial of
    a scenario runs the *same* workload seed and only the fault seed
    moves, each shard ships its columnar event stream, and the merged
    payload's ``"replay"`` section diffs trials 1..N against trial 0
    (identical-prefix length, divergence time).  Composes with any
    worker count — the streams are diffed at merge time, so no shard
    depends on another's output.

    ``snapshot`` forks each trial's system from a per-worker
    :class:`SystemImage` instead of booting it fresh — the campaign
    amortizes boot entirely, and the merged payload's ``"snapshot"``
    section records per-trial setup wall vs the fresh-boot wall it
    replaced (``amortization_x``).  Counters stay byte-identical
    either way (the snapshot golden contract).
    """
    if replay:
        shards = [(scenario, seed_base, seed_base + i, agreement,
                   telemetry_dir, True, snapshot)
                  for scenario in scenarios for i in range(trials)]
    else:
        shards = [(scenario, seed_base + i, None, agreement,
                   telemetry_dir, False, snapshot)
                  for scenario in scenarios for i in range(trials)]
    # The historically slowest scenarios first (paper latency order).
    slow = {s: PAPER_TABLE_7_4[s][2] for s in PAPER_TABLE_7_4}
    shards.sort(key=lambda s: slow.get(s[0], 0), reverse=True)
    procs = _effective_workers(workers)
    cpu_capped = _warn_cpu_cap(workers, procs)

    def on_shard(done: int, shard: dict) -> None:
        label = f"{shard['scenario']} seed {shard['seed']}"
        if shard["status"] != "ok":
            _heartbeat(done, len(shards), label, 0.0, 0, 0.0, "  FAILED")
            return
        hb = shard.get("heartbeat")
        extra = ("  contained" if shard["trial"].get("contained")
                 else "  NOT contained")
        if hb is None:
            _heartbeat(done, len(shards), label, 0.0, 0, 0.0, extra)
        else:
            _heartbeat(done, len(shards), label, hb["sim_ms"],
                       hb["events"], hb["wall_s"], extra)

    wall0 = time.perf_counter()
    raw = _run_shards(shards, _inject_shard_worker, procs,
                      on_shard=on_shard if progress else None)
    campaign_wall = time.perf_counter() - wall0
    # Pool completion order is scheduling-dependent; sort by shard key
    # so the merged payload is byte-stable for a given seed base.
    raw.sort(key=lambda s: (s["scenario"], s["seed"],
                            s.get("fault_seed") or -1))
    payload = merge_inject_shards(raw)
    setups = [s["setup"] for s in raw
              if s.get("status") == "ok" and s.get("setup")]
    if setups:
        setup_walls = [s["setup_wall_s"] for s in setups]
        boot_walls = [s["boot_wall_s"] for s in setups]
        mean_setup = sum(setup_walls) / len(setup_walls)
        mean_boot = sum(boot_walls) / len(boot_walls)
        payload["snapshot"] = {
            "requested": snapshot,
            "mode": ("fork" if any(s["mode"] == "fork" for s in setups)
                     else "boot"),
            "trials": len(setups),
            "setup_wall_s_mean": round(mean_setup, 6),
            "setup_wall_s_max": round(max(setup_walls), 6),
            "boot_wall_s_mean": round(mean_boot, 6),
            "amortization_x": (round(mean_boot / mean_setup, 2)
                               if mean_setup > 0 else None),
        }
    payload["parallel"] = {
        "workers": workers,
        "effective_workers": procs,
        "shards": len(shards),
        "campaign_wall_s": round(campaign_wall, 4),
        "cpu_count": os.cpu_count(),
        "cpu_capped": cpu_capped,
    }
    return payload
