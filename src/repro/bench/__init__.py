"""Experiment harness: drives the paper's evaluation (Section 7).

``faultexp`` runs the Table 7.4 fault-injection experiments end to end
(inject, measure latency until last cell enters recovery, containment and
output-corruption checks); ``report`` renders paper-vs-measured tables.
"""

from repro.bench.faultexp import FaultExperimentRunner, FaultTrialResult
from repro.bench.report import ComparisonTable

__all__ = ["ComparisonTable", "FaultExperimentRunner", "FaultTrialResult"]
