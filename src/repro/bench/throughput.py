"""Throughput benchmark harness: sim-events/sec and memory-accesses/sec.

The containment benchmarks measure *simulated* latencies; this harness
measures how fast the simulator itself runs, so that machine sizes like
the ones the related fault-containment work evaluates (hundreds of nodes,
millions of pages) stay within reach.  It runs one fixed, fully
deterministic fault-injection scenario at three machine configurations:

* every cell exports a block of page frames writable to its neighbour
  cell (the paper's group-grant policy, driven through the real
  ``FirewallManager`` grant path);
* every cell runs a coherence *traffic driver* that performs real
  line-granularity reads and ownership requests against the frames its
  neighbour granted it — each one a firewall-checked access through
  ``CoherenceController``;
* every cell samples ``remotely_writable_pages()`` on the paper's 20 ms
  cadence (the Section 4.2 measurement);
* a node of the victim cell fail-stops at a fixed simulated time, which
  drives detection, agreement, and the preemptive-discard recovery scan
  over everything granted to the victim.

Wall-clock time is split at the injection point so the recovery phase is
timed separately (``recovery_wall_ms``).  All simulated results (event
counts, access counts, discard counts) are byte-deterministic for a
given seed; only the wall-clock figures vary run to run.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional

from repro.core.hive import HiveSystem, boot_hive
from repro.hardware.errors import BusError, FirewallViolation
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import NS_PER_MS, HardwareParams
from repro.obs.profile import tier_snapshot
from repro.sim.channels import attach_channels
from repro.sim.engine import Simulator
from repro.sim.shard import ShardEngine, plan_shards, shards_from_env

BENCH_SCHEMA = "hive-throughput/v1"

#: simulated counters that must match byte-for-byte between a sharded
#: run and the sequential engine (the HIVE_SHARDS determinism contract).
#: ``tiers`` covers the per-tier coherence attribution (hits, misses,
#: memo replays) and ``channels`` the intercell channel fingerprint.
SHARD_EQUIV_KEYS = (
    "events", "accesses", "driver_accesses", "discarded_pages",
    "writable_page_samples", "samples", "recovery_detected", "sim_ms",
    "tiers", "channels",
)


@dataclass(frozen=True)
class ThroughputConfig:
    """One machine size for the fixed scenario."""

    name: str
    num_nodes: int
    num_cells: int
    cpus_per_node: int
    #: frames each cell grants writable to its neighbour cell
    shared_frames_per_cell: int
    #: coherence accesses issued per driver wakeup
    ops_per_wakeup: int
    #: simulated pacing gap between driver wakeups
    wakeup_gap_ns: int
    inject_ms: int
    recovery_window_ms: int
    duration_ms: int
    sample_interval_ms: int = 20


CONFIGS: Dict[str, ThroughputConfig] = {
    "small": ThroughputConfig(
        name="small", num_nodes=4, num_cells=4, cpus_per_node=1,
        shared_frames_per_cell=32, ops_per_wakeup=16,
        wakeup_gap_ns=50_000, inject_ms=120, recovery_window_ms=200,
        duration_ms=400),
    "medium": ThroughputConfig(
        name="medium", num_nodes=8, num_cells=4, cpus_per_node=1,
        shared_frames_per_cell=64, ops_per_wakeup=16,
        wakeup_gap_ns=40_000, inject_ms=150, recovery_window_ms=200,
        duration_ms=500),
    "large": ThroughputConfig(
        name="large", num_nodes=16, num_cells=16, cpus_per_node=1,
        shared_frames_per_cell=128, ops_per_wakeup=16,
        wakeup_gap_ns=30_000, inject_ms=200, recovery_window_ms=250,
        duration_ms=600),
}


def _exporter(sim: Simulator, cell, client_cell: int, nframes: int,
              frames_out: List[int], ready):
    """Allocate ``nframes`` local frames and grant them writable to the
    neighbour cell through the real firewall-management policy path."""
    pfs = [cell.pfdats.alloc_frame() for _ in range(nframes)]
    for pf in pfs:
        yield from cell.firewall_mgr.grant_write(pf, client_cell)
        frames_out.append(pf.frame)
    ready.succeed(frames_out)
    return None


def _traffic(sim: Simulator, system: HiveSystem, cell_id: int, cpu: int,
             ready, cfg: ThroughputConfig, stop_ns: int, counters: dict,
             lane=None):
    """Issue real coherence reads/ownership requests against the frames
    the neighbour granted.  Stops when its cell dies or loses access.

    Under the sharded engine (``lane`` set) the driver registers itself
    as a shard chain: wakeups whose accesses are provably memo replays
    collapse into one park (``ShardedChain.credit``), and even real
    accesses park through the chain so the coordinator owns the clock.
    The sequential path (``lane is None``) is byte-for-byte the code
    that ran before sharding existed.
    """
    frames = yield ready
    machine = system.machine
    coh = machine.coherence
    line = machine.params.cache_line_size
    page = machine.params.page_size
    lines_per_page = page // line
    registry = system.registry
    # The access *sequence* is identical to the original per-access form
    # (frame index advances by one and the line offset by two per op);
    # each wakeup's ops now issue as one prepared batch.  The access
    # counter ``i`` advances by ``ops`` per wakeup and every term of the
    # pattern depends on ``i`` only through ``i mod lcm(nframes,
    # lines_per_page, 2)`` (the 2 covers the read/write parity), so the
    # whole run cycles through a short list of patterns prepared once up
    # front; an unchanged all-hit wakeup then replays from the batch
    # memo without re-walking the directory.
    nframes = len(frames)
    ops = cfg.ops_per_wakeup
    gap = cfg.wakeup_gap_ns
    access_prepared = coh.access_prepared
    timeout = sim.timeout
    # Inlined registry.is_live(cell_id): the registry's cell object for
    # an id is fixed at registration, so the per-wakeup liveness check
    # reduces to the dead-set test plus the cell's own alive flag.
    cell_obj = registry.cells[cell_id]
    dead_cells = registry._dead
    modulus = nframes * lines_per_page // gcd(nframes, lines_per_page)
    if modulus % 2:
        modulus *= 2
    period = modulus // gcd(ops, modulus)
    cycle = []
    for t in range(period):
        base = (t * ops) % modulus
        line_ids = [frames[(base + k) % nframes] * lines_per_page
                    + ((base + 2 * k) % lines_per_page)
                    for k in range(ops)]
        op_list = [(base + 2 * k) & 1 for k in range(ops)]
        cycle.append(coh.prepare_batch(line_ids, op_list))
    chain = (lane.register_chain(coh, cpu, cycle, gap)
             if lane is not None else None)
    j = 0
    while sim.now < stop_ns:
        if cell_id in dead_cells or not cell_obj.alive:
            return None
        if chain is not None:
            k, sleep_ns, j2 = chain.credit(j, stop_ns)
            if k:
                counters["accesses"] += ops * k
                j = j2
                yield chain.park(sleep_ns, k)
                continue
        try:
            lat = access_prepared(cpu, cycle[j])
        except (BusError, FirewallViolation):
            # The granter (or this cell's own node) died: the grant was
            # revoked by preemptive discard.  The driver retires.  The
            # ops that completed before the raise still count.
            counters["accesses"] += coh.last_batch_completed
            return None
        counters["accesses"] += ops
        j += 1
        if j == period:
            j = 0
        if chain is not None:
            yield chain.park(lat + gap, 1)
        else:
            yield timeout(lat + gap)
    return None


def _sampler(sim: Simulator, cell, interval_ns: int, stop_ns: int,
             counters: dict):
    """The Section 4.2 measurement: sample remotely-writable pages."""
    while sim.now < stop_ns:
        if not cell.alive:
            return None
        counters["samples"] += 1
        counters["writable_page_samples"] += \
            cell.firewall_mgr.remotely_writable_pages()
        yield sim.timeout(interval_ns)
    return None


def run_throughput(config: str, seed: int = 1995,
                   batch: Optional[bool] = None,
                   wheel: Optional[bool] = None,
                   shards: Optional[int] = None,
                   channels: Optional[bool] = None) -> dict:
    """Run the fixed scenario at one machine size; returns the result row.

    ``batch`` overrides the coherence controller's batched access path
    (None keeps the ``HIVE_BATCH`` environment default); ``wheel``
    likewise overrides the engine timer wheel (``HIVE_WHEEL``);
    ``shards`` the cell-sharded engine (``HIVE_SHARDS``, 0 = the
    sequential engine).  The simulated counters are identical either
    way — only wall clock changes.  ``channels`` forces the intercell
    channel recorder on for a sequential run (it is always attached
    under sharding), so a sequential baseline exposes the same channel
    fingerprint a sharded run is compared against.
    """
    cfg = CONFIGS[config]
    params = HardwareParams(num_nodes=cfg.num_nodes,
                            cpus_per_node=cfg.cpus_per_node)
    sim = Simulator(crash_on_process_error=False, wheel=wheel)
    boot_wall0 = time.perf_counter()
    system = boot_hive(sim, num_cells=cfg.num_cells,
                       machine_config=MachineConfig(params=params,
                                                    seed=seed))
    boot_wall = time.perf_counter() - boot_wall0
    if batch is not None:
        system.machine.coherence.batch_enabled = batch
    if shards is None:
        shards = shards_from_env()
    registry = system.registry
    victim = cfg.num_cells - 1
    stop_ns = cfg.duration_ms * NS_PER_MS
    inject_ns = cfg.inject_ms * NS_PER_MS
    counters = {"accesses": 0, "samples": 0, "writable_page_samples": 0}

    lookahead = params.min_intercell_latency_ns()
    engine = None
    chan = None
    if shards > 0 or channels:
        chan = attach_channels(system.machine, registry, lookahead,
                               sim=sim)
    if shards > 0:
        groups = plan_shards(list(registry.cells), shards)
        engine = ShardEngine(sim, groups, lookahead, channels=chan)

    for c in range(cfg.num_cells):
        cell = registry.cell_object(c)
        client = (c + 1) % cfg.num_cells
        frames: List[int] = []
        ready = sim.event(f"grants{c}")
        sim.process(_exporter(sim, cell, client, cfg.shared_frames_per_cell,
                              frames, ready), name=f"exporter{c}")
        client_cell = registry.cell_object(client)
        cpu = client_cell.cpu_ids[0]
        lane = engine.lane_of(client) if engine is not None else None
        sim.process(_traffic(sim, system, client, cpu, ready, cfg,
                             stop_ns, counters, lane=lane),
                    name=f"traffic{client}")
        sim.process(_sampler(sim, cell, cfg.sample_interval_ms * NS_PER_MS,
                             stop_ns, counters), name=f"sampler{c}")

    system.injector.inject_at(inject_ns, FaultInjector.NODE_FAILURE,
                              registry.first_node_of(victim),
                              trigger="throughput-bench")

    run = engine.run if engine is not None else sim.run
    # Cyclic GC passes contribute ~8% of wall on the large config and
    # cannot affect any simulated counter; suspend collection for the
    # measured window (the cycles it would have reclaimed are collected
    # right after).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        run(until=inject_ns)
        wall_inject = time.perf_counter()
        run(until=inject_ns + cfg.recovery_window_ms * NS_PER_MS)
        wall_recovered = time.perf_counter()
        run(until=stop_ns)
        wall_end = time.perf_counter()
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()

    stats = system.machine.coherence.stats
    coh_accesses = (stats.read_hits + stats.read_misses
                    + stats.write_hits + stats.write_misses)
    records = [r for r in system.coordinator.records
               if victim in r.dead_cells]
    discarded = sum(r.discarded_pages for r in records)
    wall_s = wall_end - wall0
    events = sim.events_processed
    row = {
        "config": cfg.name,
        "nodes": cfg.num_nodes,
        "cells": cfg.num_cells,
        "cpus_per_node": cfg.cpus_per_node,
        "seed": seed,
        "sim_ms": stop_ns / NS_PER_MS,
        "boot_wall_s": round(boot_wall, 4),
        "wall_s": round(wall_s, 4),
        "recovery_wall_ms": round((wall_recovered - wall_inject) * 1e3, 3),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
        "accesses": coh_accesses,
        "accesses_per_sec": round(coh_accesses / wall_s, 1),
        "driver_accesses": counters["accesses"],
        "writable_page_samples": counters["writable_page_samples"],
        "samples": counters["samples"],
        "recovery_detected": bool(records),
        "discarded_pages": discarded,
        "shards": shards,
        # Hot-path tier attribution (seed-deterministic counts; the
        # engine section is non-null only under HIVE_PROFILE=1).
        "tiers": tier_snapshot(system),
    }
    if chan is not None:
        row["channels"] = chan.snapshot()
    if engine is not None:
        row["shard"] = engine.snapshot()
    return row


def compare_shards(config: str, shards: int, seed: int = 1995,
                   batch: Optional[bool] = None,
                   wheel: Optional[bool] = None) -> dict:
    """The HIVE_SHARDS equivalence gate for one config.

    Runs the scenario sequentially (with the channel recorder attached,
    so the channel fingerprint exists on both sides) and sharded, and
    diffs every key in :data:`SHARD_EQUIV_KEYS`.  Returns a dict with
    ``match`` plus the per-key mismatches (empty when equivalent).
    """
    seq = run_throughput(config, seed=seed, batch=batch, wheel=wheel,
                         shards=0, channels=True)
    shd = run_throughput(config, seed=seed, batch=batch, wheel=wheel,
                         shards=shards)
    mismatches = {}
    for key in SHARD_EQUIV_KEYS:
        if seq.get(key) != shd.get(key):
            mismatches[key] = {"sequential": seq.get(key),
                               "sharded": shd.get(key)}
    return {
        "config": config,
        "shards": shards,
        "match": not mismatches,
        "mismatches": mismatches,
        "sequential_events_per_sec": seq["events_per_sec"],
        "sharded_events_per_sec": shd["events_per_sec"],
        "replayed_wakeups": shd.get("shard", {}).get("replayed_wakeups", 0),
    }


def run_suite(configs: Optional[List[str]] = None,
              seed: int = 1995, repeats: int = 1,
              batch: Optional[bool] = None,
              wheel: Optional[bool] = None,
              shards: Optional[int] = None) -> dict:
    """Run the scenario at the requested sizes; returns the bench payload.

    With ``repeats > 1`` each config runs that many times and the
    fastest run is kept as the headline row (timeit-style best-of:
    external load only ever slows a run down, so the minimum wall time
    is the least noisy estimate) — but the per-repeat wall-clock spread
    is surfaced too (``wall_s_min``/``wall_s_max``/``wall_s_mean``), so
    a regression can't hide behind one lucky repeat.  All simulated
    counters are seed-deterministic and identical across repeats (this
    is verified, not assumed); only the wall-clock figures differ.
    """
    names = list(configs) if configs else list(CONFIGS)
    results = {}
    for name in names:
        best = None
        walls: List[float] = []
        for _ in range(max(1, repeats)):
            row = run_throughput(name, seed=seed, batch=batch, wheel=wheel,
                                 shards=shards)
            walls.append(row["wall_s"])
            if best is None:
                best = row
            else:
                for key in ("events", "accesses", "driver_accesses",
                            "discarded_pages", "writable_page_samples"):
                    if row[key] != best[key]:
                        raise RuntimeError(
                            f"non-deterministic repeat for {name!r}: "
                            f"{key} {row[key]} != {best[key]}")
                if row["wall_s"] < best["wall_s"]:
                    best = row
        best["repeats"] = max(1, repeats)
        best["wall_s_min"] = round(min(walls), 4)
        best["wall_s_max"] = round(max(walls), 4)
        best["wall_s_mean"] = round(sum(walls) / len(walls), 4)
        results[name] = best
    return {"schema": BENCH_SCHEMA, "seed": seed, "results": results}


def _calibration_workload() -> int:
    """Fixed pure-Python work resembling the simulator hot paths
    (dict stores/loads plus integer arithmetic in a tight loop)."""
    d = {i: i for i in range(1024)}
    acc = 0
    for i in range(200_000):
        d[i & 1023] = i
        acc += d[(i * 7) & 1023]
    return acc


def machine_calibration(repeats: int = 10) -> dict:
    """Host-speed anchor stamped into every bench file.

    Committed ``BENCH_pr<N>.json`` files come from whichever machine ran
    that PR, so a raw events/s ratio between two files conflates code
    speed with host speed.  The score is the best-of-``repeats`` rate of
    a fixed pure-Python workload; dividing a file's events/s by its own
    score cancels the host term, which is what lets ``repro report
    --check`` gate on cross-PR regressions between different machines.
    Best-of matches the bench's own best-of-N wall-clock convention:
    both numerator and denominator are peak rates, so transient
    scheduler steal drops out of the ratio.  Residual host noise on a
    shared box is ~10%, well inside the 30% gate threshold.
    """
    best = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        _calibration_workload()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"score": round(200_000 / best, 1),
            "workload": "dict-loop-200k",
            "repeats": max(1, repeats)}


def write_bench_file(path: str, payload: dict) -> None:
    payload.setdefault("calibration", machine_calibration())
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench_file(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    validate_payload(payload)
    return payload


def validate_payload(payload: dict) -> None:
    """Schema check used by the CI bench-smoke job."""
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"bad schema: {payload.get('schema')!r}")
    results = payload.get("results")
    if not isinstance(results, dict) or not results:
        raise ValueError("results missing or empty")
    for name, row in results.items():
        for key in ("config", "events_per_sec", "accesses_per_sec",
                    "recovery_wall_ms", "events", "accesses"):
            if key not in row:
                raise ValueError(f"result {name!r} missing {key!r}")
        if row["events"] <= 0 or row["accesses"] <= 0:
            raise ValueError(f"result {name!r} has empty counters")
